#!/usr/bin/env python3
"""The paper's motivating scenario: optimizing queries on a university web site.

The introduction of the paper uses paths like::

    CS-Department DB-group Ullman Classes cs345
    CS-Department Courses cs345

and the local constraint that both lead to the same page.  This example builds
such a site (with generated faculty and course names), verifies the structural
constraints, and shows the optimizer replacing the long "through the research
group" navigation by the short catalog lookup — then quantifies the savings in
visited pairs and in distributed protocol messages.

Run it with ``python examples/website_optimization.py``.
"""

from repro.optimize import plan_and_evaluate
from repro.constraints import satisfies_all
from repro.regex import to_string
from repro.workloads import cs_department_site


def main() -> None:
    workload = cs_department_site(group_count=2, faculty_per_group=2, courses_per_faculty=2)
    site, root = workload.instance, workload.root

    print(f"site: {len(site)} pages, {site.edge_count()} links")
    print(f"constraints known at {root!r}: {len(workload.constraints)}")
    print(f"all constraints hold: {satisfies_all(site, root, workload.constraints)}")

    faculty = workload.faculty_names[0]
    course = workload.course_ids[0]
    long_query = f"CS-Department DB-group {faculty} Classes {course}"
    print(f"\nuser query:\n  {long_query}")

    report = plan_and_evaluate(
        long_query,
        root,
        site,
        workload.constraints,
        measure_distributed=True,
    )

    print("\noptimizer outcome:")
    print(f"  rewritten to : {to_string(report.rewrite.best)}")
    print(f"  static cost  : {report.rewrite.original_cost:.1f} -> {report.rewrite.best_cost:.1f}")
    print(f"  answers      : {sorted(map(str, report.answers))}")
    print("\nevaluation cost (original -> optimized):")
    print(f"  visited (object, state) pairs : {report.original_visited_pairs} -> {report.optimized_visited_pairs}")
    print(f"  protocol messages             : {report.original_messages} -> {report.optimized_messages}")

    print("\ncandidates considered:")
    for candidate in report.rewrite.candidates:
        print(f"  - {candidate}")


if __name__ == "__main__":
    main()
