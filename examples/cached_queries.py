#!/usr/bin/env python3
"""Cached queries, mirror sites, and recursion elimination (Section 3.2).

Three optimizations from the paper, end to end:

* **Example 3 (cached query).**  The site caches the answers of ``(a b)*``
  under the label ``l``; the constraint ``l = (a b)*`` then lets the recursive
  query ``a (b a)* c`` be answered as ``l a c`` through the cache.
* **Example 2 / Theorem 4.10 (recursion elimination).**  Under the word
  equality ``l l = l`` the query ``l*`` is *bounded*: it is equivalent to the
  non-recursive ``ε + l``, which is guaranteed to terminate even on an
  infinite Web.
* **Mirror sites.**  A mirrored section satisfies ``main = mirror`` and the
  optimizer may route queries through either name.

Run it with ``python examples/cached_queries.py``.
"""

from repro.constraints import ConstraintSet, decide_boundedness, word_equality
from repro.graph import Instance, mirror_site_graph
from repro.optimize import CostModel, QueryCache, install_mirror, rewrite_query
from repro.query import answer_set
from repro.regex import to_string


def cached_query_example() -> None:
    print("== Example 3: answering a recursive query through a cache ==")
    site = Instance(
        [("o", "a", "x"), ("x", "b", "o"), ("x", "c", "report"), ("o", "d", "misc")]
    )
    cache = QueryCache("o")
    site, entry = cache.install(site, "(a b)*", "l")
    print(f"cached: {cache.describe()}")

    constraints = cache.constraints()
    model = CostModel().with_cached(cache.labels())
    outcome = rewrite_query("a (b a)* c", constraints, model)
    print(f"query    : a (b a)* c")
    print(f"rewritten: {to_string(outcome.best)}   (cost {outcome.original_cost:.1f} -> {outcome.best_cost:.1f})")
    same = answer_set("a (b a)* c", "o", site) == answer_set(outcome.best, "o", site)
    print(f"answers unchanged on the cached site: {same}")


def boundedness_example() -> None:
    print("\n== Example 2 / Theorem 4.10: recursion elimination ==")
    constraints = ConstraintSet([word_equality("l l", "l")])
    result = decide_boundedness(constraints, "l*")
    print(f"constraints        : {constraints}")
    print(f"query              : l*")
    print(f"bounded            : {result.bounded}")
    print(f"equivalent query   : {to_string(result.equivalent_query)}")
    print(f"answer classes     : {[' '.join(w) or 'ε' for w in result.answer_class_words]}")
    print(f"K-sphere           : radius {result.sphere_radius}, {result.sphere_size} classes")


def mirror_example() -> None:
    print("\n== Mirror sites ==")
    site, root = mirror_site_graph(section_count=2, pages_per_section=2)
    site, constraints = install_mirror(site, root, "main", "mirror")
    outcome = rewrite_query("main section0 page1", constraints,
                            CostModel().with_cached({"mirror"}))
    print(f"constraint : main = mirror")
    print(f"query      : main section0 page1")
    print(f"rewritten  : {to_string(outcome.best)}")
    print(f"answers    : {sorted(answer_set(outcome.best, root, site))}")


def main() -> None:
    cached_query_example()
    boundedness_example()
    mirror_example()


if __name__ == "__main__":
    main()
