#!/usr/bin/env python3
"""The distributed evaluation scenario of Section 3.1 (Figures 2 and 3).

The example first replays the paper's own run — the query ``a b*`` asked by
node ``d`` at node ``o1`` on the four-node graph of Figure 2 — printing the
full message trace in the style of Figure 3 (every subquery, answer, ack and
done in delivery order, ending with the termination-detecting done at ``d``).

It then runs the same protocol on a larger Web-like graph and on a lazily
generated *infinite* graph, showing that a query whose relevant portion is
finite still terminates while an exhaustive query is caught by the message
budget — the paper's infinite-Web story made concrete.

Run it with ``python examples/distributed_crawl.py``.
"""

from repro.distributed import format_trace, run_distributed_query, trace_summary
from repro.exceptions import DistributedProtocolError
from repro.graph import figure2_graph, infinite_binary_web, web_like_graph
from repro.query import answer_set


def figure3_replay() -> None:
    print("== Figure 2/3: the paper's own run ==")
    instance, source = figure2_graph()
    result = run_distributed_query("a b*", source, instance, asker="d")
    print(format_trace(result.trace))
    print(f"\nanswers received at d: {sorted(result.answers)}")
    print(f"termination detected : {result.terminated}")
    print(f"message counts       : {result.message_counts()}")
    print(f"matches centralized  : {result.answers == answer_set('a b*', source, instance)}")


def larger_site() -> None:
    print("\n== A 150-page Web-like site ==")
    instance, source = web_like_graph(150, ["a", "b", "c"], seed=8)
    query = "a (b + c)* a"
    result = run_distributed_query(query, source, instance, asker="crawler")
    summary = trace_summary(result.trace)
    print(f"query          : {query}")
    print(f"answers        : {len(result.answers)}")
    print(f"sites contacted: {len(result.sites_contacted)} of {len(instance)}")
    print(f"messages       : {summary['messages_total']} {summary['by_kind']}")


def infinite_web() -> None:
    print("\n== The infinite Web (lazy instance) ==")
    lazy, root = infinite_binary_web()
    bounded_query = "a b a"
    result = run_distributed_query(bounded_query, root, lazy, asker="crawler")
    print(f"bounded query {bounded_query!r}: answers={sorted(result.answers)}, "
          f"terminated={result.terminated}")

    exhaustive_query = "(a + b)* a"
    try:
        run_distributed_query(exhaustive_query, root, lazy, asker="crawler", max_messages=2000)
    except DistributedProtocolError as error:
        print(f"exhaustive query {exhaustive_query!r}: {error}")


def main() -> None:
    figure3_replay()
    larger_site()
    infinite_web()


if __name__ == "__main__":
    main()
