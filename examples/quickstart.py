#!/usr/bin/env python3
"""Quickstart: regular path queries, constraints, and implication in 5 minutes.

This walks through the library's core workflow on a tiny Web-like graph:

1. build a semistructured instance (a labeled graph);
2. evaluate regular path queries from a source object;
3. state path constraints and check that the site satisfies them;
4. ask the implication question that drives query optimization;
5. let the optimizer rewrite a query using the constraints.

Run it with ``python examples/quickstart.py``.
"""

from repro import Instance, answer_set
from repro.constraints import (
    ConstraintSet,
    decide_implication,
    path_equality,
    word_equality,
)
from repro.optimize import rewrite_query
from repro.query import evaluate
from repro.regex import to_string


def build_site() -> tuple[Instance, str]:
    """A small personal site: home page, notes, and a cached index of notes."""
    site = Instance()
    site.add_edge("home", "about", "about_page")
    site.add_edge("home", "notes", "notes_index")
    site.add_edge("notes_index", "entry", "note_1")
    site.add_edge("notes_index", "entry", "note_2")
    site.add_edge("note_1", "next", "note_2")
    site.add_edge("note_2", "next", "note_3")
    site.add_edge("notes_index", "entry", "note_3")
    # A cached shortcut: "recent" points directly at every note reachable by
    # notes entry next*  (the site maintains this index).
    for note in ("note_1", "note_2", "note_3"):
        site.add_edge("home", "recent", note)
    return site, "home"


def main() -> None:
    site, home = build_site()

    print("== 1. Path query evaluation ==")
    query = "notes entry next*"
    result = evaluate(query, home, site)
    print(f"{query!r} from {home!r} -> {sorted(result.answers)}")
    print(f"   visited (object, state) pairs: {result.visited_pairs}")

    print("\n== 2. Path constraints holding at this site ==")
    constraints = ConstraintSet(
        [
            # The cached index is exactly the recursive notes traversal.
            path_equality("notes entry next*", "recent"),
            # Two ways to reach note_2 coincide.
            word_equality("notes entry next", "notes entry"),
        ]
    )
    from repro.constraints import satisfies_all

    print(f"constraints: {constraints}")
    print(f"site satisfies them: {satisfies_all(site, home, constraints)}")

    print("\n== 3. Implication: may the optimizer substitute queries? ==")
    question = path_equality("notes entry next* ", "recent")
    verdict = decide_implication(constraints, question)
    print(f"E |= {question} ?  -> {verdict.verdict.value} (via {verdict.method})")

    print("\n== 4. Constraint-aware rewriting ==")
    outcome = rewrite_query("notes entry next*", constraints)
    print(f"original : {to_string(outcome.original)}  (cost {outcome.original_cost:.1f})")
    print(f"rewritten: {to_string(outcome.best)}  (cost {outcome.best_cost:.1f})")
    print(f"answers unchanged: "
          f"{answer_set(outcome.best, home, site) == answer_set(outcome.original, home, site)}")


if __name__ == "__main__":
    main()
