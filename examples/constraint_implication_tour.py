#!/usr/bin/env python3
"""A tour of the implication problem (Section 4): PTIME, PSPACE and beyond.

The central technical contribution of the paper is the implication problem
for path constraints.  This example walks through its three regimes:

1. **word constraints / word conclusion** — decided in PTIME by the prefix
   rewrite system (with an explicit derivation printed as the explanation);
2. **word constraints / path conclusion** — decided in PSPACE via the
   ``RewriteTo`` automaton and an inclusion test (with a counterexample word
   and a concrete counterexample *instance* when refuted);
3. **general path constraints** — attacked by the tiered bounded procedure
   (sound prover + counterexample search), reporting which tier settled each
   question.

Run it with ``python examples/constraint_implication_tour.py``.
"""

from repro.constraints import (
    ConstraintSet,
    decide_implication,
    explain_word_inclusion,
    implies_path_inclusion,
    implies_word_inclusion,
    counterexample_instance_for_word_refutation,
    path_equality,
    path_inclusion,
    word_inclusion,
)

from repro.regex import parse


def ptime_regime() -> None:
    print("== 1. Word constraints, word conclusions (PTIME) ==")
    constraints = ConstraintSet(
        [word_inclusion("u1", "u2"), word_inclusion("u2 u3", "u4")]
    )
    print(f"E = {constraints}")
    for lhs, rhs in [("u1 u3 u5", "u4 u5"), ("u4 u5", "u1 u3 u5")]:
        lhs_word, rhs_word = tuple(lhs.split()), tuple(rhs.split())
        implied = implies_word_inclusion(constraints, lhs_word, rhs_word)
        print(f"E |= {lhs} <= {rhs} ?  {implied}")
        if implied:
            derivation = explain_word_inclusion(constraints, lhs_word, rhs_word)
            for step in derivation:
                print(f"      {' '.join(step.before)}  --[{step.rule}]-->  {' '.join(step.after)}")


def pspace_regime() -> None:
    print("\n== 2. Word constraints, path conclusions (PSPACE) ==")
    constraints = ConstraintSet([word_inclusion("l l", "l")])
    print(f"E = {constraints}")
    positive = implies_path_inclusion(constraints, "l*", "l + %")
    print(f"E |= l* <= l + ε ?  {positive.implied}")

    negative = implies_path_inclusion(constraints, "l + %", "l l")
    print(f"E |= l + ε <= l l ?  {negative.implied}")
    witness_word = negative.counterexample_word
    print(f"   refuting word: {' '.join(witness_word) or 'ε'}")
    instance, source = counterexample_instance_for_word_refutation(
        constraints, witness_word, parse("l l").alphabet()
    )

    def vertex_name(oid) -> str:
        return "o_" + ("".join(oid[1:]) or "ε")

    print(f"   counterexample instance (source {vertex_name(source)}):")
    for edge_source, label, destination in instance.edges():
        print(f"      {vertex_name(edge_source)} --{label}--> {vertex_name(destination)}")


def general_regime() -> None:
    print("\n== 3. General path constraints (bounded tiered procedure) ==")
    cases = [
        (
            ConstraintSet([path_equality("l", "(a b)*")]),
            path_equality("a (b a)* c", "l a c"),
        ),
        (
            ConstraintSet([path_inclusion("(a b)* a", "m"), path_inclusion("m", "n")]),
            path_inclusion("(a b)* a c", "n c"),
        ),
        (
            ConstraintSet([path_inclusion("a", "b")]),
            path_inclusion("b", "a"),
        ),
    ]
    for constraints, conclusion in cases:
        result = decide_implication(constraints, conclusion)
        print(f"E = {constraints}")
        print(f"   {conclusion} ?  {result.verdict.value}  (via {result.method})")
        if result.counterexample is not None:
            instance, source = result.counterexample
            print(f"   counterexample with {len(instance)} objects, source {source}")


def main() -> None:
    ptime_regime()
    pspace_regime()
    general_regime()


if __name__ == "__main__":
    main()
