"""Legacy setup script.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that the package can be installed in environments without the
``wheel`` package / network access (``pip install -e . --no-use-pep517`` or
plain ``python setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Regular Path Queries with Constraints' "
        "(Abiteboul & Vianu, PODS 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The library itself is stdlib-only; numpy is a strictly optional
    # accelerator (the engine's executor/codec dispatchers fall back to the
    # pure-Python paths without it).  CI installs both matrix arms from
    # these extras instead of ad-hoc pip lines.
    extras_require={
        "numpy": ["numpy>=1.24"],
        "test": ["pytest>=7", "hypothesis>=6"],
    },
)
