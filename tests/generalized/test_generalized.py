"""Tests for general path queries, label classes and the μ translation (§2.4)."""

import pytest

from repro.generalized import (
    GeneralPathQuery,
    LabelPattern,
    PatternSyntaxError,
    build_classification,
    classify_labels,
    content_label,
    content_pattern,
    evaluate_general_query,
    evaluate_general_query_directly,
    example21_expected_class_labels,
    example21_instance,
    example21_query,
    general_query,
    literal_pattern,
    pattern_symbol,
    translate_instance,
    translate_query,
)
from repro.graph import Instance
from repro.query import answer_set
from repro.regex.ast import concat, star, union


class TestPatterns:
    def test_full_label_matching(self):
        pattern = LabelPattern("a*b")
        assert pattern.matches("b")
        assert pattern.matches("aaab")
        assert not pattern.matches("ba")
        assert not pattern.matches("abx")

    def test_grep_style_pattern_from_the_paper(self):
        pattern = LabelPattern("[sS]ections?")
        assert pattern.matches("section")
        assert pattern.matches("Sections")
        assert not pattern.matches("paragraph")

    def test_literal_pattern_escapes(self):
        pattern = literal_pattern("a.b*")
        assert pattern.matches("a.b*")
        assert not pattern.matches("axbb")

    def test_invalid_pattern_raises(self):
        with pytest.raises(PatternSyntaxError):
            LabelPattern("[unclosed").matches("x")

    def test_content_pattern(self):
        pattern = content_pattern("SGML")
        assert pattern.matches(content_label("all about SGML parsing"))
        assert not pattern.matches(content_label("nothing relevant"))


class TestLabelClassification:
    def test_example21_has_six_classes(self):
        query = example21_query()
        labels = [member for members in example21_expected_class_labels().values() for member in members]
        classification = classify_labels(query.pattern_list(), labels)
        assert classification.class_count() == 6

    def test_labels_in_same_class_share_signature(self):
        query = example21_query()
        classification = classify_labels(query.pattern_list(), ["ab", "aab", "b", "ba"])
        assert classification.signature("ab") == classification.signature("aab")
        assert classification.signature("ab") != classification.signature("b")
        assert classification.signature("ba") != classification.signature("ab")

    def test_representative_is_stable(self):
        classification = classify_labels([LabelPattern("a*")], ["a", "aa", "b"])
        assert classification.representative("aa") == classification.representative("a")

    def test_representatives_matching_pattern(self):
        classification = classify_labels([LabelPattern("a*"), LabelPattern("b")], ["a", "b", "c"])
        matching = classification.representatives_matching(0)
        assert "a" in matching and "b" not in matching


class TestExample21:
    def test_translation_equals_direct_evaluation(self):
        query = example21_query()
        instance, source = example21_instance()
        assert evaluate_general_query(query, source, instance) == (
            evaluate_general_query_directly(query, source, instance)
        )

    def test_translation_classification_size(self):
        query = example21_query()
        instance, _ = example21_instance()
        classification = build_classification(query, instance)
        assert classification.class_count() == 6

    def test_translated_query_is_over_class_representatives(self):
        query = example21_query()
        instance, _ = example21_instance()
        classification = build_classification(query, instance)
        translated = translate_query(query, classification)
        assert translated.alphabet() <= frozenset(classification.representatives.values())

    def test_translated_instance_preserves_shape(self):
        query = example21_query()
        instance, _ = example21_instance()
        classification = build_classification(query, instance)
        translated = translate_instance(instance, classification)
        assert len(translated) == len(instance)
        assert translated.edge_count() == instance.edge_count()


class TestProposition22:
    def test_mu_translation_on_custom_queries(self):
        """q(o, I) = μ(q)(o, μ(I)) on a hand-built query and instance."""
        doc, p_doc = pattern_symbol("doc")
        section, p_section = pattern_symbol("[sS]ections?")
        text, p_text = pattern_symbol("text")
        paragraph, p_para = pattern_symbol("[pP]aragraph")
        expression = concat(doc, union(concat(section, text), paragraph))
        query = general_query(expression, [p_doc, p_section, p_text, p_para])

        instance = Instance(
            [
                ("o", "doc", "d1"),
                ("d1", "Sections", "s1"),
                ("s1", "text", "t1"),
                ("d1", "paragraph", "p1"),
                ("d1", "chapter", "c1"),
            ]
        )
        expected = {"t1", "p1"}
        assert evaluate_general_query_directly(query, "o", instance) == expected
        assert evaluate_general_query(query, "o", instance) == expected

    def test_star_of_patterns(self):
        any_label, p_any = pattern_symbol(".*")
        content, p_content = pattern_symbol("content=.*SGML.*")
        expression = concat(star(any_label), content)
        query = general_query(expression, [p_any, p_content])
        instance = Instance(
            [
                ("o", "link", "x"),
                ("x", "ref", "y"),
                ("y", content_label("intro to SGML"), "y"),
                ("x", content_label("plain page"), "x"),
            ]
        )
        assert evaluate_general_query(query, "o", instance) == {"y"}
        assert evaluate_general_query_directly(query, "o", instance) == {"y"}

    def test_bare_labels_act_as_literal_patterns(self):
        label, pattern = pattern_symbol("a")
        query = GeneralPathQuery(label, (pattern,))
        instance = Instance([("o", "a", "x"), ("o", "ab", "y")])
        assert evaluate_general_query(query, "o", instance) == {"x"}

    def test_plain_rpq_is_a_special_case(self):
        """With literal patterns the general machinery reduces to ordinary RPQs."""
        a, pa = pattern_symbol("a")
        b, pb = pattern_symbol("b")
        expression = concat(a, star(b))
        query = general_query(expression, [pa, pb])
        instance = Instance([("o", "a", "x"), ("x", "b", "y"), ("y", "b", "x")])
        assert evaluate_general_query(query, "o", instance) == answer_set(
            "a b*", "o", instance
        )
