"""Tests for regex → automaton constructions (Thompson, Glushkov) and back."""

import pytest

from repro.automata import (
    accepted_language_up_to,
    equivalent,
    nfa_to_dfa,
    nfa_to_regex,
    regex_to_glushkov_nfa,
    regex_to_nfa,
    single_word_nfa,
)
from repro.regex import language_up_to, parse

EXPRESSIONS = [
    "a",
    "%",
    "~",
    "a b c",
    "a + b",
    "a b* c",
    "(a + b)* a",
    "(a b)* + (b a)*",
    "(l a + l b)* d",
    "section (paragraph + figure) caption",
]


class TestThompson:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_language_matches_derivative_semantics(self, text):
        expression = parse(text)
        nfa = regex_to_nfa(expression)
        assert accepted_language_up_to(nfa, 4) == language_up_to(expression, 4)

    def test_linear_size(self):
        expression = parse("(a + b)* a (a + b) (a + b)")
        nfa = regex_to_nfa(expression)
        assert len(nfa) <= 4 * expression.size()


class TestGlushkov:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_equivalent_to_thompson(self, text):
        expression = parse(text)
        assert equivalent(regex_to_nfa(expression), regex_to_glushkov_nfa(expression))

    def test_no_epsilon_transitions(self):
        nfa = regex_to_glushkov_nfa(parse("(a + b)* c"))
        for _, label, _ in nfa.iter_transitions():
            assert label != ""

    def test_state_count_is_positions_plus_one(self):
        expression = parse("(a + b)* a b")
        nfa = regex_to_glushkov_nfa(expression)
        symbol_occurrences = 4
        assert len(nfa.states) == symbol_occurrences + 1


class TestSingleWord:
    def test_accepts_only_the_word(self):
        nfa = single_word_nfa(("a", "b", "c"))
        assert nfa.accepts(("a", "b", "c"))
        assert not nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a", "b", "c", "c"))

    def test_empty_word(self):
        nfa = single_word_nfa(())
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))


class TestStateElimination:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_round_trip_preserves_language(self, text):
        expression = parse(text)
        nfa = regex_to_nfa(expression)
        recovered = nfa_to_regex(nfa)
        assert equivalent(regex_to_nfa(recovered), nfa)

    def test_round_trip_through_dfa(self):
        expression = parse("(a b)* + c")
        dfa = nfa_to_dfa(regex_to_nfa(expression))
        recovered = nfa_to_regex(dfa.to_nfa())
        assert equivalent(regex_to_nfa(recovered), regex_to_nfa(expression))
