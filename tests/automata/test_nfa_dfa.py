"""Tests for the NFA and DFA data structures themselves."""

import pytest

from repro.automata import DFA, EPSILON, NFA, nfa_to_dfa
from repro.exceptions import AutomatonError


class TestNFA:
    def build_simple(self) -> NFA:
        nfa = NFA(initial=0)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, EPSILON, 2)
        nfa.add_transition(2, "b", 0)
        nfa.accepting = {2}
        return nfa

    def test_epsilon_closure(self):
        nfa = self.build_simple()
        assert nfa.epsilon_closure({1}) == frozenset({1, 2})
        assert nfa.epsilon_closure({0}) == frozenset({0})

    def test_run_and_accepts(self):
        nfa = self.build_simple()
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b", "a"))
        assert not nfa.accepts(("b",))
        assert nfa.run(("c",)) == frozenset()

    def test_add_word_path(self):
        nfa = NFA(initial=0)
        nfa.add_state(9)
        nfa.add_word_path(0, ("x", "y", "z"), 9)
        nfa.accepting = {9}
        assert nfa.accepts(("x", "y", "z"))
        assert not nfa.accepts(("x", "y"))

    def test_add_word_path_empty_word_is_epsilon(self):
        nfa = NFA(initial=0)
        nfa.add_state(1)
        nfa.add_word_path(0, (), 1)
        nfa.accepting = {1}
        assert nfa.accepts(())

    def test_labels_must_be_nonempty(self):
        nfa = NFA(initial=0)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, None, 1)  # type: ignore[arg-type]

    def test_trim_removes_useless_states(self):
        nfa = self.build_simple()
        nfa.add_transition(0, "c", 5)  # dead end, not co-reachable
        trimmed = nfa.trim()
        assert 5 not in trimmed.states
        assert trimmed.accepts(("a",))

    def test_reachable_and_coreachable(self):
        nfa = self.build_simple()
        nfa.add_state(99)
        assert 99 not in nfa.reachable_states()
        assert 0 in nfa.coreachable_states()

    def test_relabel_states_preserves_language(self):
        nfa = self.build_simple()
        renamed = nfa.relabel_states()
        for word in [(), ("a",), ("a", "b"), ("a", "b", "a")]:
            assert nfa.accepts(word) == renamed.accepts(word)
        assert all(isinstance(state, int) for state in renamed.states)

    def test_copy_is_independent(self):
        nfa = self.build_simple()
        copy = nfa.copy()
        copy.add_transition(0, "z", 7)
        assert ("z" in {label for _, label, _ in nfa.iter_transitions()}) is False

    def test_fresh_state_never_collides(self):
        nfa = self.build_simple()
        fresh = nfa.fresh_state()
        assert fresh in nfa.states
        assert nfa.fresh_state() != fresh

    def test_transition_count(self):
        assert self.build_simple().transition_count() == 3


class TestDFA:
    def build_simple(self) -> DFA:
        dfa = DFA(initial="s")
        dfa.add_transition("s", "a", "t")
        dfa.add_transition("t", "b", "s")
        dfa.accepting = {"t"}
        return dfa

    def test_run_and_accepts(self):
        dfa = self.build_simple()
        assert dfa.accepts(("a",))
        assert dfa.accepts(("a", "b", "a"))
        assert not dfa.accepts(())
        assert not dfa.accepts(("b",))

    def test_conflicting_transition_rejected(self):
        dfa = self.build_simple()
        with pytest.raises(AutomatonError):
            dfa.add_transition("s", "a", "elsewhere")

    def test_completed_adds_sink(self):
        dfa = self.build_simple()
        total = dfa.completed({"a", "b", "c"})
        assert total.run(("c", "c")) is not None
        assert not total.accepts(("c",))

    def test_complement(self):
        dfa = self.build_simple()
        complement = dfa.complement()
        for word in [(), ("a",), ("b",), ("a", "b"), ("a", "b", "a")]:
            assert dfa.accepts(word) != complement.accepts(word)

    def test_relabel_states(self):
        renamed = self.build_simple().relabel_states()
        assert renamed.initial == 0
        assert renamed.accepts(("a",))

    def test_to_nfa_round_trip(self):
        dfa = self.build_simple()
        nfa = dfa.to_nfa()
        for word in [(), ("a",), ("a", "b"), ("a", "b", "a")]:
            assert dfa.accepts(word) == nfa.accepts(word)


class TestDeterminization:
    def test_subset_construction(self):
        nfa = NFA(initial=0)
        nfa.add_transition(0, "a", 0)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 2)
        nfa.accepting = {2}
        dfa = nfa_to_dfa(nfa)
        for word in [("a", "b"), ("a", "a", "b"), ("b",), ("a",)]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_only_reachable_subsets_are_built(self):
        nfa = NFA(initial=0)
        for index in range(6):
            nfa.add_transition(index, "a", index + 1)
        nfa.accepting = {6}
        dfa = nfa_to_dfa(nfa)
        assert len(dfa) <= 8
