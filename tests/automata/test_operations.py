"""Tests for boolean/rational operations and decision procedures on automata."""

import pytest

from repro.automata import (
    accepted_language_up_to,
    complement_nfa,
    concat_nfa,
    count_words_of_length,
    difference_nfa,
    equivalent,
    finite_language,
    includes,
    inclusion_counterexample,
    intersection_nfa,
    is_empty,
    is_finite_language,
    is_universal,
    left_quotient_by_language_nfa,
    left_quotient_nfa,
    minimize_dfa,
    nfa_to_dfa,
    regex_to_nfa,
    reverse_nfa,
    shortest_accepted_word,
    star_nfa,
    union_nfa,
)
from repro.regex import language_up_to, parse


def nfa(text):
    return regex_to_nfa(parse(text))


class TestBooleanOperations:
    def test_union(self):
        result = union_nfa(nfa("a b"), nfa("c*"))
        assert accepted_language_up_to(result, 2) == language_up_to(parse("a b + c*"), 2)

    def test_concat(self):
        result = concat_nfa(nfa("a + b"), nfa("c"))
        assert accepted_language_up_to(result, 2) == {("a", "c"), ("b", "c")}

    def test_star(self):
        result = star_nfa(nfa("a b"))
        assert result.accepts(())
        assert result.accepts(("a", "b", "a", "b"))
        assert not result.accepts(("a",))

    def test_intersection(self):
        result = intersection_nfa(nfa("(a + b)* a"), nfa("a (a + b)*"))
        assert result.accepts(("a",))
        assert result.accepts(("a", "b", "a"))
        assert not result.accepts(("b", "a"))
        assert not result.accepts(("a", "b"))

    def test_complement(self):
        result = complement_nfa(nfa("a*"), alphabet={"a", "b"})
        assert not result.accepts(())
        assert not result.accepts(("a", "a"))
        assert result.accepts(("b",))
        assert result.accepts(("a", "b"))

    def test_difference(self):
        result = difference_nfa(nfa("(a + b)*"), nfa("a*"))
        assert not result.accepts(())
        assert not result.accepts(("a",))
        assert result.accepts(("b",))
        assert result.accepts(("a", "b"))

    def test_reverse(self):
        result = reverse_nfa(nfa("a b c"))
        assert result.accepts(("c", "b", "a"))
        assert not result.accepts(("a", "b", "c"))


class TestQuotients:
    def test_left_quotient_by_word(self):
        result = left_quotient_nfa(nfa("a b* c"), ("a", "b"))
        assert result.accepts(("c",))
        assert result.accepts(("b", "c"))
        assert not result.accepts(())

    def test_left_quotient_by_language(self):
        # Quotient of (a b)* a c by (a b)* is (a b)* a c itself (since ε ∈ (a b)*),
        # and in particular contains a c.
        result = left_quotient_by_language_nfa(nfa("(a b)* a c"), nfa("(a b)*"))
        assert result.accepts(("a", "c"))
        assert result.accepts(("a", "b", "a", "c"))
        assert not result.accepts(("b", "c"))

    def test_left_quotient_by_language_strict_prefix(self):
        result = left_quotient_by_language_nfa(nfa("a b c"), nfa("a b"))
        assert accepted_language_up_to(result, 3) == {("c",)}


class TestDecisionProcedures:
    def test_is_empty(self):
        assert is_empty(nfa("~"))
        assert is_empty(nfa("~ a"))
        assert not is_empty(nfa("a*"))

    def test_shortest_accepted_word(self):
        assert shortest_accepted_word(nfa("a a + b")) == ("b",)
        assert shortest_accepted_word(nfa("a*")) == ()
        assert shortest_accepted_word(nfa("~")) is None

    def test_shortest_word_lexicographic_tie_break(self):
        assert shortest_accepted_word(nfa("b + a")) == ("a",)

    def test_is_finite_language(self):
        assert is_finite_language(nfa("a b + c d e"))
        assert not is_finite_language(nfa("a b* c"))
        assert is_finite_language(nfa("~"))
        assert is_finite_language(nfa("%"))

    def test_finite_language_enumeration(self):
        assert finite_language(nfa("a (b + c)")) == {("a", "b"), ("a", "c")}
        with pytest.raises(ValueError):
            finite_language(nfa("a*"))

    def test_is_universal(self):
        assert is_universal(nfa("(a + b)*"), alphabet={"a", "b"})
        assert not is_universal(nfa("(a + b)* a"), alphabet={"a", "b"})

    def test_includes(self):
        assert includes(nfa("(a + b)*"), nfa("a* b*"))
        assert not includes(nfa("a* b*"), nfa("(a + b)*"))

    def test_inclusion_counterexample_is_a_real_witness(self):
        container = nfa("a* b*")
        contained = nfa("(a + b)*")
        witness = inclusion_counterexample(container, contained)
        assert witness is not None
        assert contained.accepts(witness)
        assert not container.accepts(witness)

    def test_equivalent(self):
        assert equivalent(nfa("(a b)* a"), nfa("a (b a)*"))
        assert not equivalent(nfa("(a b)*"), nfa("a (b a)*"))

    def test_count_words_of_length(self):
        assert count_words_of_length(nfa("(a + b)*"), 3) == 8
        assert count_words_of_length(nfa("a b"), 2) == 1
        assert count_words_of_length(nfa("a b"), 3) == 0


class TestMinimization:
    def test_minimal_dfa_is_canonical(self):
        first = minimize_dfa(nfa_to_dfa(nfa("(a b)* a")))
        second = minimize_dfa(nfa_to_dfa(nfa("a (b a)*")))
        assert first.states == second.states
        assert first.accepting == second.accepting
        assert first.transitions == second.transitions

    def test_minimization_preserves_language(self):
        original = nfa("(a + b)* a (a + b)")
        minimal = minimize_dfa(nfa_to_dfa(original))
        assert equivalent(minimal.to_nfa(), original)

    def test_known_minimal_size(self):
        # The language (a|b)*a(a|b) needs exactly 4 DFA states (it is the
        # "second symbol from the end is a" language, complete DFA).
        minimal = minimize_dfa(nfa_to_dfa(nfa("(a + b)* a (a + b)")))
        assert len(minimal) == 4

    def test_empty_and_epsilon_languages(self):
        assert len(minimize_dfa(nfa_to_dfa(nfa("~")))) == 1
        epsilon_min = minimize_dfa(nfa_to_dfa(nfa("%")))
        assert epsilon_min.accepts(())
        assert not epsilon_min.accepts(("a",))
