"""Tests for the synchronous product constructions."""

from repro.automata import product_nfa, product_of_many, regex_to_nfa
from repro.regex import parse


def nfa(text):
    return regex_to_nfa(parse(text))


class TestBinaryProduct:
    def test_both_mode_is_intersection(self):
        product = product_nfa(nfa("(a + b)* a"), nfa("a (a + b)*"), accept_mode="both")
        assert product.accepts(("a",))
        assert product.accepts(("a", "b", "a"))
        assert not product.accepts(("b", "a"))

    def test_first_mode_tracks_only_first_component(self):
        product = product_nfa(nfa("a b"), nfa("(a + b)*"), accept_mode="first")
        assert product.accepts(("a", "b"))
        assert not product.accepts(("a",))

    def test_second_mode(self):
        product = product_nfa(nfa("(a + b)*"), nfa("b*"), accept_mode="second")
        assert product.accepts(("b", "b"))
        assert not product.accepts(("a",))

    def test_unknown_mode_raises(self):
        import pytest

        with pytest.raises(ValueError):
            product_nfa(nfa("a"), nfa("a"), accept_mode="neither")


class TestProductOfMany:
    def test_states_track_every_component(self):
        product = product_of_many([nfa("a*"), nfa("(a b)*"), nfa("b a")])
        # The product imposes no acceptance condition: every reachable state is
        # accepting; what matters is the component tracking used by Theorem 4.2.
        state = product.run(("a", "b"))
        assert state  # still alive
        # After "a b": the first component (a*) is dead, the second accepts,
        # the third accepts only "b a" so it is dead too.
        components = next(iter(state))
        assert isinstance(components, tuple) and len(components) == 3

    def test_alphabet_is_union_of_components(self):
        product = product_of_many([nfa("a"), nfa("b"), nfa("c")])
        assert product.alphabet == {"a", "b", "c"}

    def test_requires_at_least_one_component(self):
        import pytest

        with pytest.raises(ValueError):
            product_of_many([])
