"""Tests for the workload generators used by examples and benchmarks."""

from repro.constraints import satisfies_all
from repro.query import answer_set
from repro.regex import denotes_finite_language
from repro.workloads import (
    alphabet_of,
    chained_idempotence_constraints,
    collapsing_constraints,
    cs_department_site,
    pspace_hard_inclusion,
    random_path_query,
    random_word_constraints,
    site_with_home_shortcut,
    star_chain_query,
)


class TestWebsiteWorkload:
    def test_constraints_hold_on_the_generated_site(self):
        workload = cs_department_site()
        assert satisfies_all(workload.instance, workload.root, workload.constraints)

    def test_intro_paths_reach_the_same_course(self):
        workload = cs_department_site()
        course = workload.course_ids[0]
        faculty = workload.faculty_names[0]
        by_group = answer_set(
            f"CS-Department DB-group {faculty} Classes {course}",
            workload.root,
            workload.instance,
        )
        by_catalog = answer_set(
            f"CS-Department Courses {course}", workload.root, workload.instance
        )
        assert by_group == by_catalog != set()

    def test_scaling_parameters(self):
        small = cs_department_site(group_count=1, faculty_per_group=1, courses_per_faculty=1)
        large = cs_department_site(group_count=3, faculty_per_group=3, courses_per_faculty=3)
        assert len(large.instance) > len(small.instance)
        assert len(large.constraints) > len(small.constraints)

    def test_home_shortcut_constraint_holds(self):
        workload = cs_department_site(group_count=1, faculty_per_group=1)
        instance, constraints = site_with_home_shortcut(workload)
        assert satisfies_all(instance, workload.root, constraints)

    def test_deterministic_given_seed(self):
        first = cs_department_site(seed=3)
        second = cs_department_site(seed=3)
        assert first.instance == second.instance


class TestSyntheticWorkloads:
    def test_alphabet(self):
        assert alphabet_of(3) == ["l0", "l1", "l2"]

    def test_random_word_constraints_are_word_constraints(self):
        constraints = random_word_constraints(5, seed=2)
        assert constraints.is_word_constraint_set()
        assert len(constraints) == 5

    def test_random_word_constraints_equalities(self):
        constraints = random_word_constraints(4, seed=2, equalities=True)
        assert constraints.is_word_equality_set()

    def test_chained_idempotence(self):
        constraints = chained_idempotence_constraints(3)
        assert constraints.is_word_equality_set()
        assert len(constraints) == 3

    def test_collapsing_constraints_bound_the_star(self):
        from repro.constraints import decide_boundedness

        constraints = collapsing_constraints(3)
        result = decide_boundedness(constraints, "a*")
        assert result.bounded
        assert len(result.answer_class_words) == 3

    def test_random_path_query_deterministic(self):
        assert random_path_query(7) == random_path_query(7)
        assert random_path_query(7, depth=4).alphabet() <= set(alphabet_of(3))

    def test_star_chain_query_shape(self):
        query = star_chain_query(2, alphabet_size=2)
        assert not denotes_finite_language(query)

    def test_pspace_hard_inclusion_pair(self):
        lhs, rhs = pspace_hard_inclusion(3)
        from repro.automata import includes, regex_to_nfa

        assert includes(regex_to_nfa(rhs), regex_to_nfa(lhs))
        assert not includes(regex_to_nfa(lhs), regex_to_nfa(rhs))
        assert lhs.alphabet() == {"a", "b"}
