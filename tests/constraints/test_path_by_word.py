"""Tests for PSPACE implication of path constraints by word constraints."""

import pytest

from repro.constraints import (
    ConstraintSet,
    counterexample_instance_for_word_refutation,
    implies_path_constraint,
    implies_path_equality,
    implies_path_inclusion,
    implies_path_inclusion_via_union,
    is_counterexample,
    path_equality,
    path_inclusion,
    word_equality,
    word_inclusion,
)
from repro.exceptions import ConstraintError
from repro.regex import parse


class TestPathByWordImplication:
    def test_paper_example_2_star_collapse(self):
        # l l <= l implies l* = l + ε (Section 3.2, Example 2).
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        assert implies_path_equality(constraints, "l*", "l + %").implied

    def test_star_does_not_collapse_without_constraint(self):
        constraints = ConstraintSet([word_inclusion("l l", "l l")])
        outcome = implies_path_inclusion(constraints, "l*", "l + %")
        assert not outcome.implied
        assert outcome.counterexample_word is not None
        assert len(outcome.counterexample_word) >= 2

    def test_language_inclusion_is_always_implied(self):
        constraints = ConstraintSet([word_inclusion("x", "y")])
        assert implies_path_inclusion(constraints, "a b", "a (b + c)").implied
        assert implies_path_inclusion(constraints, "a", "a*").implied

    def test_inclusion_direction_matters(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        assert implies_path_inclusion(constraints, "a c", "b c + a c").implied
        assert implies_path_inclusion(constraints, "a c", "b c").implied
        assert not implies_path_inclusion(constraints, "b c", "a c").implied

    def test_union_on_left_checked_per_word(self):
        constraints = ConstraintSet([word_inclusion("a", "c"), word_inclusion("b", "c")])
        assert implies_path_inclusion(constraints, "a + b", "c").implied
        weaker = ConstraintSet([word_inclusion("a", "c")])
        assert not implies_path_inclusion(weaker, "a + b", "c").implied

    def test_star_on_the_right(self):
        constraints = ConstraintSet([word_inclusion("b", "a a")])
        assert implies_path_inclusion(constraints, "b", "a*").implied
        assert implies_path_inclusion(constraints, "b a", "a* a").implied

    def test_equality_with_cached_word_label(self):
        # Caching the (finite) query "a b" under label l: l = a b.
        constraints = ConstraintSet([word_equality("l", "a b")])
        assert implies_path_equality(constraints, "l c", "a b c").implied
        assert implies_path_inclusion(constraints, "l c + a b c", "a b c").implied

    def test_dispatch_on_constraint_kind(self):
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        assert implies_path_constraint(constraints, path_equality("l*", "l + %")).implied
        assert implies_path_constraint(constraints, path_inclusion("l l l", "l")).implied

    def test_requires_word_constraints(self):
        constraints = ConstraintSet([path_inclusion("a*", "b")])
        with pytest.raises(ConstraintError):
            implies_path_inclusion(constraints, "a", "b")

    def test_union_formulation_agrees_with_direct_inclusion(self):
        constraints = ConstraintSet([word_inclusion("l l", "l"), word_inclusion("a", "b")])
        cases = [
            ("l*", "l + %"),
            ("l + %", "l*"),
            ("a c", "b c"),
            ("b c", "a c"),
            ("(a + b)*", "b*"),
        ]
        for lhs, rhs in cases:
            direct = implies_path_inclusion(constraints, lhs, rhs).implied
            via_union = implies_path_inclusion_via_union(constraints, lhs, rhs)
            assert direct == via_union, (lhs, rhs)


class TestCounterexampleWitnesses:
    def test_refuting_word_yields_concrete_counterexample_instance(self):
        constraints = ConstraintSet([word_inclusion("a a", "a")])
        conclusion_lhs, conclusion_rhs = "a*", "a a"
        outcome = implies_path_inclusion(constraints, conclusion_lhs, conclusion_rhs)
        assert not outcome.implied
        refuting = outcome.counterexample_word
        assert refuting is not None
        instance, source = counterexample_instance_for_word_refutation(
            constraints, refuting, parse(conclusion_rhs).alphabet()
        )
        assert is_counterexample(
            instance, source, constraints, path_inclusion(conclusion_lhs, conclusion_rhs)
        )

    def test_lemma_4_6_property(self):
        """If E |= p <= q then every word of L(p) rewrites into some word of L(q)."""
        from repro.constraints import PrefixRewriteSystem, rewrite_to_language_nfa
        from repro.regex import enumerate_words

        constraints = ConstraintSet([word_inclusion("l l", "l")])
        lhs, rhs = parse("l*"), parse("l + %")
        assert implies_path_inclusion(constraints, lhs, rhs).implied
        system = PrefixRewriteSystem.from_constraints(constraints)
        rewrite_nfa = rewrite_to_language_nfa(system, rhs)
        for word in enumerate_words(lhs, 5):
            assert rewrite_nfa.accepts(word)
