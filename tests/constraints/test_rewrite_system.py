"""Tests for the prefix rewrite system →E and the RewriteTo automata."""

import pytest

from repro.automata import accepted_language_up_to, enumerate_accepted_words
from repro.constraints import (
    ConstraintSet,
    PrefixRewriteSystem,
    path_inclusion,
    rewrite_to_language_nfa,
    rewrite_to_with_statistics,
    rewrite_to_word_nfa,
    word_equality,
    word_inclusion,
)
from repro.exceptions import ConstraintError
from repro.regex import parse


class TestPrefixRewriteSystem:
    def test_from_constraints_requires_word_constraints(self):
        with pytest.raises(ConstraintError):
            PrefixRewriteSystem.from_constraints(
                ConstraintSet([path_inclusion("a*", "b")])
            )

    def test_rules_from_inclusions_and_equalities(self):
        constraints = ConstraintSet([word_inclusion("a b", "c"), word_equality("d", "e")])
        system = PrefixRewriteSystem.from_constraints(constraints)
        rules = {(rule.lhs, rule.rhs) for rule in system.rules}
        assert (("a", "b"), ("c",)) in rules
        assert (("d",), ("e",)) in rules and (("e",), ("d",)) in rules

    def test_successors_rewrite_prefixes_only(self):
        system = PrefixRewriteSystem.from_pairs([((("a"),) * 2, ("b",))])
        successors = {word for _, word in system.successors(("a", "a", "a"))}
        assert successors == {("b", "a")}
        # No rewriting inside the word: a b a a stays un-rewritten at the front.
        assert list(system.successors(("b", "a", "a"))) == []

    def test_paper_intro_example(self):
        # From u1 <= u2 and u2 u3 <= u4 one infers u1 u3 u5 ->* u4 u5.
        system = PrefixRewriteSystem.from_pairs(
            [(("u1",), ("u2",)), (("u2", "u3"), ("u4",))]
        )
        assert system.rewrites_to(("u1", "u3", "u5"), ("u4", "u5"))

    def test_find_derivation_steps_are_valid(self):
        system = PrefixRewriteSystem.from_pairs(
            [(("a", "a"), ("a",)), (("a", "b"), ("c",))]
        )
        derivation = system.find_derivation(("a", "a", "a", "b"), ("c",))
        assert derivation is not None
        current = ("a", "a", "a", "b")
        for step in derivation:
            assert step.before == current
            assert current[: len(step.rule.lhs)] == step.rule.lhs
            current = step.after
        assert current == ("c",)

    def test_reflexivity(self):
        system = PrefixRewriteSystem.from_pairs([(("a",), ("b",))])
        assert system.rewrites_to(("x",), ("x",))

    def test_symmetric_closure(self):
        system = PrefixRewriteSystem.from_pairs([(("a",), ("b",))])
        assert not system.rewrites_to(("b",), ("a",))
        assert system.symmetric_closure().rewrites_to(("b",), ("a",))

    def test_reachable_words_bounded(self):
        system = PrefixRewriteSystem.from_pairs([(("a",), ("a", "a"))])
        words = system.reachable_words(("a",), max_words=5)
        assert ("a", "a") in words
        assert len(words) <= 5

    def test_max_side_length(self):
        system = PrefixRewriteSystem.from_pairs([(("a", "b", "c"), ("d",))])
        assert system.max_side_length() == 3


class TestRewriteToAutomata:
    def test_rewrite_to_word_simple(self):
        system = PrefixRewriteSystem.from_pairs([(("a", "a"), ("a",))])
        automaton = rewrite_to_word_nfa(system, ("a",))
        # RewriteTo(a) = a+ for the rule aa -> a.
        assert automaton.accepts(("a",))
        assert automaton.accepts(("a", "a", "a"))
        assert not automaton.accepts(())
        assert not automaton.accepts(("b",))

    def test_rewrite_to_includes_target_language(self):
        system = PrefixRewriteSystem.from_pairs([(("a",), ("b",))])
        automaton = rewrite_to_language_nfa(system, parse("b c + d"))
        assert automaton.accepts(("b", "c"))
        assert automaton.accepts(("d",))
        assert automaton.accepts(("a", "c"))  # a c -> b c
        assert not automaton.accepts(("c",))

    def test_epsilon_lhs_rule(self):
        # ε <= b  gives the rule ε -> b: any word w rewrites to b w.
        system = PrefixRewriteSystem.from_pairs([((), ("b",))])
        automaton = rewrite_to_word_nfa(system, ("b", "b", "a"))
        assert automaton.accepts(("b", "a"))
        assert automaton.accepts(("a",))
        assert not automaton.accepts(("b",))

    def test_multi_symbol_lhs(self):
        system = PrefixRewriteSystem.from_pairs([(("a", "b", "c"), ("z",))])
        automaton = rewrite_to_word_nfa(system, ("z", "q"))
        assert automaton.accepts(("a", "b", "c", "q"))
        assert not automaton.accepts(("a", "b", "q"))

    def test_chained_rewrites(self):
        system = PrefixRewriteSystem.from_pairs(
            [(("a",), ("b",)), (("b", "b"), ("c",))]
        )
        automaton = rewrite_to_word_nfa(system, ("c",))
        # a b -> b b -> c ; a a -> b a -> ... (b a cannot reach c).
        assert automaton.accepts(("a", "b"))
        assert automaton.accepts(("b", "b"))
        assert not automaton.accepts(("b", "a"))

    def test_statistics_reported(self):
        system = PrefixRewriteSystem.from_pairs([(("a", "a"), ("a",))])
        _, stats = rewrite_to_with_statistics(system, ("a",))
        assert stats.rounds >= 1
        assert stats.edges_added >= 1

    def test_agrees_with_brute_force_on_small_systems(self):
        """The saturation automaton matches breadth-first rewriting exactly."""
        systems = [
            PrefixRewriteSystem.from_pairs([(("a", "a"), ("a",)), (("b",), ("a", "b"))]),
            PrefixRewriteSystem.from_pairs([(("a", "b"), ("b", "a")), (("b", "b"), ())]),
            PrefixRewriteSystem.from_pairs([(("a",), ()), ((), ("b",))]),
        ]
        targets = [(), ("a",), ("b", "a"), ("a", "b")]
        test_words = list(enumerate_accepted_words(
            __import__("repro.automata", fromlist=["regex_to_nfa"]).regex_to_nfa(
                parse("(a + b) (a + b) (a + b) + (a + b) (a + b) + (a + b) + %")
            ),
            3,
        ))
        for system in systems:
            for target in targets:
                automaton = rewrite_to_word_nfa(system, target)
                for word in test_words:
                    expected = system.rewrites_to(
                        word, target, max_steps=2000, max_word_length=8
                    )
                    assert automaton.accepts(word) == expected, (
                        f"mismatch for {word} ->* {target} under {system}"
                    )

    def test_language_is_regular_and_enumerable(self):
        system = PrefixRewriteSystem.from_pairs([(("a", "a"), ("a",))])
        automaton = rewrite_to_word_nfa(system, ("a", "b"))
        words = accepted_language_up_to(automaton, 4)
        assert ("a", "b") in words
        assert ("a", "a", "b") in words
        assert ("a", "a", "a", "b") in words
        assert ("b",) not in words
