"""Tests for the Lemma 4.4 witness construction and Armstrong instances (Prop 4.8)."""

import pytest

from repro.constraints import (
    ConstraintSet,
    WordEqualityTheory,
    figure4_instance,
    lemma44_witness,
    satisfies_all,
    word_equality,
    word_inclusion,
)
from repro.exceptions import ConstraintError
from repro.query import answer_set
from repro.regex import word as word_expr


class TestLemma44Witness:
    def test_figure4_classes(self):
        witness = figure4_instance()
        assert witness.classes() == [(), ("a",), ("a", "a"), ("a", "a", "a")]

    def test_figure4_obj_sets(self):
        witness = figure4_instance()
        v = witness.vertex_of
        assert witness.obj[()] == frozenset({v(())})
        assert witness.obj[("a", "a", "a")] == frozenset({v(("a", "a", "a"))})
        assert witness.obj[("a", "a")] == frozenset({v(("a", "a")), v(("a", "a", "a"))})
        assert witness.obj[("a",)] == frozenset(
            {v(("a",)), v(("a", "a")), v(("a", "a", "a"))}
        )

    def test_figure4_answers_match_the_paper(self):
        witness = figure4_instance()
        instance, source = witness.instance, witness.source
        assert answer_set(word_expr("a"), source, instance) == set(witness.obj[("a",)])
        assert answer_set(word_expr("a a"), source, instance) == set(
            witness.obj[("a", "a")]
        )
        assert answer_set(word_expr("a a a"), source, instance) == set(
            witness.obj[("a", "a", "a")]
        )
        assert answer_set(word_expr(""), source, instance) == {source}

    def test_figure4_satisfies_its_constraints(self):
        witness = figure4_instance()
        constraints = ConstraintSet([word_inclusion("a a", "a")])
        assert satisfies_all(witness.instance, witness.source, constraints)

    def test_witness_separates_non_implied_inclusions(self):
        """The key property of Lemma 4.4: u(o,I) ⊆ v(o,I) only when E |= u <= v."""
        from repro.constraints import implies_word_inclusion

        constraints = ConstraintSet([word_inclusion("a a", "a"), word_inclusion("b", "a")])
        bound = 3
        witness = lemma44_witness(constraints, bound, alphabet={"a", "b"})
        instance, source = witness.instance, witness.source
        words = [(), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a")]
        for u in words:
            for v in words:
                semantic = answer_set(word_expr(u), source, instance) <= answer_set(
                    word_expr(v), source, instance
                )
                syntactic = implies_word_inclusion(constraints, u, v)
                assert semantic == syntactic, (u, v)

    def test_witness_over_enlarged_alphabet(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        witness = lemma44_witness(constraints, 2, alphabet={"a", "b", "c"})
        assert answer_set(word_expr("c"), witness.source, witness.instance)


class TestWordEqualityTheory:
    def test_requires_word_equalities(self):
        with pytest.raises(ConstraintError):
            WordEqualityTheory(ConstraintSet([word_inclusion("a", "b")]))

    def test_canonical_forms(self):
        theory = WordEqualityTheory(ConstraintSet([word_equality("l l", "l")]))
        assert theory.canonical_form(("l", "l", "l")) == ("l",)
        assert theory.canonical_form(()) == ()
        assert theory.canonical_form(("l",)) == ("l",)

    def test_equivalence_is_right_congruent(self):
        theory = WordEqualityTheory(
            ConstraintSet([word_equality("a b", "c")]), alphabet={"a", "b", "c", "d"}
        )
        assert theory.equivalent(("a", "b"), ("c",))
        assert theory.equivalent(("a", "b", "d"), ("c", "d"))
        assert not theory.equivalent(("a",), ("c",))

    def test_armstrong_instance_satisfies_exactly_the_implied_equalities(self):
        """Proposition 4.8 on a finite sample of words."""
        constraints = ConstraintSet([word_equality("a a", "a")])
        theory = WordEqualityTheory(constraints, alphabet={"a", "b"})
        lazy, source = theory.lazy_armstrong_instance()
        words = [(), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a"), ("a", "a", "b")]

        def answer(word):
            current = {source}
            for label in word:
                nxt = set()
                for oid in current:
                    nxt.update(lazy.successors(oid, label))
                current = nxt
            return current

        for u in words:
            for v in words:
                semantically_equal = answer(u) == answer(v)
                implied = theory.equivalent(u, v)
                assert semantically_equal == implied, (u, v)

    def test_sphere_structure_lemma_4_9(self):
        constraints = ConstraintSet([word_equality("a a a", "a a"), word_equality("b b", "b")])
        theory = WordEqualityTheory(constraints)
        radius = theory.default_sphere_radius()
        assert radius >= theory.max_constraint_length()
        properties = theory.check_sphere_properties(radius)
        assert properties["outside_indegree_one"]
        assert properties["no_reentry"]

    def test_sphere_contains_all_short_classes(self):
        constraints = ConstraintSet([word_equality("a a", "a")])
        theory = WordEqualityTheory(constraints, alphabet={"a", "b"})
        sphere, source = theory.sphere(2)
        assert source == ()
        assert ("a",) in sphere.objects
        assert ("b", "b") in sphere.objects
        # Classes collapse: there is no vertex ("a", "a").
        assert ("a", "a") not in sphere.objects

    def test_sphere_edges_follow_the_congruence(self):
        constraints = ConstraintSet([word_equality("a a", "a")])
        theory = WordEqualityTheory(constraints)
        sphere, _ = theory.sphere(3)
        # The a-successor of class ("a",) is ("a",) itself (self-loop).
        assert sphere.has_edge(("a",), "a", ("a",))
