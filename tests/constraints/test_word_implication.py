"""Tests for PTIME word-constraint implication (Theorem 4.3(i), Lemma 4.4/4.5)."""

import pytest

from repro.constraints import (
    ConstraintSet,
    WordImplicationOracle,
    explain_word_inclusion,
    implies_word_equality,
    implies_word_inclusion,
    path_inclusion,
    word_equality,
    word_inclusion,
)
from repro.exceptions import ConstraintError


class TestWordImplication:
    def test_member_constraints_are_implied(self):
        constraints = ConstraintSet([word_inclusion("a b", "c")])
        assert implies_word_inclusion(constraints, ("a", "b"), ("c",))

    def test_reflexivity(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        assert implies_word_inclusion(constraints, ("x", "y"), ("x", "y"))

    def test_right_congruence(self):
        # u <= v implies u w <= v w.
        constraints = ConstraintSet([word_inclusion("a", "b")])
        assert implies_word_inclusion(constraints, ("a", "z", "z"), ("b", "z", "z"))

    def test_transitivity(self):
        constraints = ConstraintSet(
            [word_inclusion("a", "b"), word_inclusion("b", "c")]
        )
        assert implies_word_inclusion(constraints, ("a",), ("c",))

    def test_paper_intro_inference(self):
        # From u1 <= u2 and u2 u3 <= u4 infer u1 u3 u5 <= u4 u5.
        constraints = ConstraintSet(
            [word_inclusion("u1", "u2"), word_inclusion("u2 u3", "u4")]
        )
        assert implies_word_inclusion(
            constraints, ("u1", "u3", "u5"), ("u4", "u5")
        )

    def test_non_implication(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        assert not implies_word_inclusion(constraints, ("b",), ("a",))
        assert not implies_word_inclusion(constraints, ("a",), ("c",))
        assert not implies_word_inclusion(constraints, ("z", "a"), ("z", "b"))

    def test_idempotence_example(self):
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        assert implies_word_inclusion(constraints, ("l", "l", "l", "l"), ("l",))
        assert not implies_word_inclusion(constraints, ("l",), ("l", "l"))

    def test_equality_requires_both_directions(self):
        inclusions = ConstraintSet([word_inclusion("a", "b")])
        assert not implies_word_equality(inclusions, ("a",), ("b",))
        equalities = ConstraintSet([word_equality("a", "b")])
        assert implies_word_equality(equalities, ("a",), ("b",))
        assert implies_word_equality(equalities, ("a", "c"), ("b", "c"))

    def test_epsilon_constraints(self):
        constraints = ConstraintSet([word_equality("l", "")])
        assert implies_word_equality(constraints, ("l", "l"), ())
        assert implies_word_inclusion(constraints, ("l", "a"), ("a",))

    def test_requires_word_constraints(self):
        constraints = ConstraintSet([path_inclusion("a*", "b")])
        with pytest.raises(ConstraintError):
            implies_word_inclusion(constraints, ("a",), ("b",))

    def test_soundness_on_concrete_instances(self):
        """Every implied word inclusion really holds on instances satisfying E."""
        from repro.constraints import lemma44_witness, satisfies_all
        from repro.query import answer_set
        from repro.regex import word as word_expr

        constraints = ConstraintSet([word_inclusion("a a", "a"), word_inclusion("b", "a b")])
        witness = lemma44_witness(constraints, bound=3, alphabet={"a", "b"})
        assert satisfies_all(witness.instance, witness.source, constraints)
        checks = [
            (("a", "a", "a"), ("a",)),
            (("b", "a"), ("a", "b", "a")),
            (("a", "b"), ("a", "b")),
        ]
        for lhs, rhs in checks:
            if implies_word_inclusion(constraints, lhs, rhs):
                lhs_answers = answer_set(word_expr(lhs), witness.source, witness.instance)
                rhs_answers = answer_set(word_expr(rhs), witness.source, witness.instance)
                assert lhs_answers <= rhs_answers


class TestExplanations:
    def test_explanation_for_implied_inclusion(self):
        constraints = ConstraintSet([word_inclusion("a a", "a")])
        derivation = explain_word_inclusion(constraints, ("a", "a", "a"), ("a",))
        assert derivation is not None
        assert derivation[0].before == ("a", "a", "a")
        assert derivation[-1].after == ("a",)

    def test_no_explanation_when_not_implied(self):
        constraints = ConstraintSet([word_inclusion("a a", "a")])
        assert explain_word_inclusion(constraints, ("a",), ("a", "a")) is None

    def test_trivial_explanation_is_empty(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        assert explain_word_inclusion(constraints, ("x",), ("x",)) == []


class TestOracle:
    def test_oracle_matches_direct_procedure(self):
        constraints = ConstraintSet(
            [word_inclusion("a a", "a"), word_inclusion("b a", "c")]
        )
        oracle = WordImplicationOracle(constraints)
        cases = [
            (("a", "a", "a"), ("a",)),
            (("b", "a", "a"), ("c", "a")),
            (("c",), ("b", "a")),
            (("a",), ("b",)),
        ]
        for lhs, rhs in cases:
            assert oracle.implies_inclusion(lhs, rhs) == implies_word_inclusion(
                constraints, lhs, rhs
            )

    def test_oracle_equality(self):
        oracle = WordImplicationOracle(ConstraintSet([word_equality("a", "b")]))
        assert oracle.implies_equality(("a", "x"), ("b", "x"))
        assert not oracle.implies_equality(("a",), ("x",))
