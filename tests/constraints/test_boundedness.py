"""Tests for the boundedness decision procedure (Theorem 4.10)."""


from repro.automata import equivalent, regex_to_nfa
from repro.constraints import (
    ConstraintSet,
    WordEqualityTheory,
    decide_boundedness,
    is_bounded_under,
    word_equality,
)
from repro.query import answer_set
from repro.regex import denotes_finite_language, parse, to_string


class TestBoundednessDecision:
    def test_idempotent_label_collapses_star(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "l*")
        assert result.bounded
        assert result.answer_class_words == [(), ("l",)]
        assert denotes_finite_language(result.equivalent_query)
        assert equivalent(
            regex_to_nfa(result.equivalent_query), regex_to_nfa(parse("% + l"))
        )

    def test_collapse_after_two_steps(self):
        constraints = ConstraintSet([word_equality("a a a", "a a")])
        result = decide_boundedness(constraints, "a*")
        assert result.bounded
        assert result.answer_class_words == [(), ("a",), ("a", "a")]

    def test_unbounded_without_collapsing_equalities(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "(l m)*")
        assert not result.bounded
        assert result.equivalent_query is None

    def test_unbounded_free_star(self):
        constraints = ConstraintSet([word_equality("a", "a")])
        assert not is_bounded_under(constraints, "b*")

    def test_finite_queries_are_trivially_bounded(self):
        constraints = ConstraintSet([word_equality("a", "a")])
        result = decide_boundedness(constraints, "a b + c")
        assert result.bounded
        assert denotes_finite_language(result.equivalent_query)

    def test_two_label_collapse(self):
        # a absorbs everything after it: a a = a and a b = a, so any word with
        # an a prefix collapses to the class of a.
        constraints = ConstraintSet(
            [word_equality("a a", "a"), word_equality("a b", "a")]
        )
        result = decide_boundedness(constraints, "a a* b*")
        assert result.bounded
        assert result.answer_class_words == [("a",)]

    def test_prefix_only_equalities_do_not_collapse_suffix_stars(self):
        # The congruence is only a *right* congruence: the equality a b b = a b
        # rewrites prefixes, so b* alone (no a prefix) keeps infinitely many
        # classes and a* b* stays unbounded.
        constraints = ConstraintSet(
            [word_equality("a a", "a"), word_equality("a b b", "a b")]
        )
        result = decide_boundedness(constraints, "a* b*")
        assert not result.bounded

    def test_mixed_star_unbounded_in_free_direction(self):
        # b* alone is unbounded when no equality constrains b.
        constraints = ConstraintSet([word_equality("a a", "a")])
        assert not is_bounded_under(constraints, "b*")
        assert not is_bounded_under(constraints, "a* b*")

    def test_bounded_query_is_equivalent_on_armstrong_sphere(self):
        """E |= p = q: check answers agree on the Armstrong sphere instance."""
        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "l* + l l l")
        assert result.bounded
        theory = WordEqualityTheory(constraints, alphabet={"l"})
        sphere, source = theory.sphere(theory.default_sphere_radius())
        original_answers = answer_set(parse("l* + l l l"), source, sphere)
        rewritten_answers = answer_set(result.equivalent_query, source, sphere)
        assert original_answers == rewritten_answers

    def test_bounded_query_agrees_on_other_satisfying_instances(self):
        """Soundness of the constructed query on instances satisfying E."""
        from repro.graph import Instance

        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "l*")
        # An instance where l is idempotent: one l-edge into a self-loop.
        instance = Instance([("o", "l", "x"), ("x", "l", "x")])
        assert answer_set(parse("l*"), "o", instance) == answer_set(
            result.equivalent_query, "o", instance
        )

    def test_radius_override(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "l*", radius=2)
        assert result.bounded
        assert result.sphere_radius == 2

    def test_sphere_size_reported(self):
        constraints = ConstraintSet([word_equality("a a", "a")])
        result = decide_boundedness(constraints, "a*")
        assert result.sphere_size >= 2

    def test_result_query_prints(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        result = decide_boundedness(constraints, "l*")
        assert "l" in to_string(result.equivalent_query)


class TestBoundednessEdgeCases:
    def test_empty_language_query(self):
        constraints = ConstraintSet([word_equality("a", "a")])
        result = decide_boundedness(constraints, "~")
        assert result.bounded
        assert result.answer_class_words == []

    def test_epsilon_query(self):
        constraints = ConstraintSet([word_equality("a", "a")])
        result = decide_boundedness(constraints, "%")
        assert result.bounded
        assert result.answer_class_words == [()]

    def test_epsilon_collapse(self):
        # l = ε: every l-path stays at the source, so l* collapses to ε.
        constraints = ConstraintSet([word_equality("l", "")])
        result = decide_boundedness(constraints, "l*")
        assert result.bounded
        assert result.answer_class_words == [()]
