"""Tests for the tiered general implication procedure (Theorem 4.2)."""

from repro.constraints import (
    ConstraintSet,
    SearchBudget,
    Verdict,
    decide_implication,
    is_counterexample,
    path_equality,
    path_inclusion,
    word_equality,
    word_inclusion,
)


class TestLanguageTier:
    def test_plain_language_inclusion(self):
        constraints = ConstraintSet([word_inclusion("x", "y")])
        result = decide_implication(constraints, path_inclusion("a b", "a (b + c)"))
        assert result.verdict is Verdict.IMPLIED
        assert result.method == "language-inclusion"

    def test_language_equality(self):
        constraints = ConstraintSet([])
        result = decide_implication(constraints, path_equality("(a b)* a", "a (b a)*"))
        assert result.verdict is Verdict.IMPLIED


class TestWordConstraintTier:
    def test_complete_positive(self):
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        result = decide_implication(constraints, path_equality("l*", "l + %"))
        assert result.verdict is Verdict.IMPLIED
        assert "word-constraints" in result.method

    def test_complete_negative_with_counterexample(self):
        constraints = ConstraintSet([word_inclusion("a b", "c")])
        conclusion = path_inclusion("c", "a b")
        result = decide_implication(constraints, conclusion)
        assert result.verdict is Verdict.NOT_IMPLIED
        assert result.counterexample is not None
        instance, source = result.counterexample
        assert is_counterexample(instance, source, constraints, conclusion)

    def test_equality_refuted_in_one_direction(self):
        constraints = ConstraintSet([word_inclusion("a", "b")])
        result = decide_implication(constraints, path_equality("a c", "b c"))
        assert result.verdict is Verdict.NOT_IMPLIED


class TestGeneralTier:
    def test_cached_query_example_3(self):
        # l = (a b)*  implies  a (b a)* c = l a c  (Section 3.2, Example 3).
        constraints = ConstraintSet([path_equality("l", "(a b)*")])
        result = decide_implication(constraints, path_equality("a (b a)* c", "l a c"))
        assert result.verdict is Verdict.IMPLIED

    def test_prefix_substitution_through_transitivity(self):
        constraints = ConstraintSet(
            [path_inclusion("a*", "m"), path_inclusion("m", "n")]
        )
        result = decide_implication(constraints, path_inclusion("a* c", "n c"))
        assert result.verdict is Verdict.IMPLIED

    def test_counterexample_found_for_unrelated_queries(self):
        constraints = ConstraintSet([path_inclusion("x y", "y x")])
        conclusion = path_inclusion("a", "b")
        result = decide_implication(constraints, conclusion)
        assert result.verdict is Verdict.NOT_IMPLIED
        instance, source = result.counterexample
        assert is_counterexample(instance, source, constraints, conclusion)

    def test_counterexample_respects_premises(self):
        # Premise a <= b (as *path* constraints, plus a star to keep it out of
        # the word-constraint tier): a counterexample to a <= c must still
        # satisfy the premise.
        constraints = ConstraintSet([path_inclusion("a", "b"), path_inclusion("z*", "z*")])
        conclusion = path_inclusion("a", "c")
        result = decide_implication(constraints, conclusion)
        assert result.verdict is Verdict.NOT_IMPLIED
        instance, source = result.counterexample
        assert is_counterexample(instance, source, constraints, conclusion)

    def test_unknown_when_budget_too_small(self):
        constraints = ConstraintSet([path_equality("l", "(a b)*")])
        tiny = SearchBudget(
            substitution_depth=0,
            substitution_width=0,
            word_enumeration_length=0,
            random_instances=0,
        )
        result = decide_implication(
            constraints, path_inclusion("l a c", "a (b a)* c"), budget=tiny
        )
        assert result.verdict is Verdict.UNKNOWN
        assert result.notes

    def test_string_conclusions_are_parsed(self):
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        result = decide_implication(constraints, "l l l <= l")
        assert result.verdict is Verdict.IMPLIED

    def test_result_implied_property(self):
        constraints = ConstraintSet([])
        assert decide_implication(constraints, "a <= a + b").implied
        assert not decide_implication(constraints, "a + b <= a").implied


class TestSoundness:
    def test_implied_verdicts_hold_on_random_satisfying_instances(self):
        """Spot-check soundness: IMPLIED conclusions hold wherever premises hold."""
        import random

        from repro.constraints import satisfies, satisfies_all
        from repro.graph import Instance

        constraints = ConstraintSet([word_equality("l", "a b")])
        conclusion = path_equality("l c", "a b c")
        result = decide_implication(constraints, conclusion)
        assert result.verdict is Verdict.IMPLIED

        rng = random.Random(5)
        checked = 0
        for _ in range(200):
            instance = Instance()
            nodes = list(range(rng.randint(2, 5)))
            for node in nodes:
                instance.add_object(node)
            for _ in range(rng.randint(2, 8)):
                instance.add_edge(
                    rng.choice(nodes), rng.choice("labc"), rng.choice(nodes)
                )
            if satisfies_all(instance, 0, constraints):
                checked += 1
                assert satisfies(instance, 0, conclusion)
        assert checked > 0
