"""Tests for constraint syntax, normalization and satisfaction checking."""

import pytest

from repro.constraints import (
    ConstraintSet,
    PathEquality,
    PathInclusion,
    is_counterexample,
    parse_constraint,
    path_equality,
    path_inclusion,
    satisfies,
    satisfies_all,
    violated_constraints,
    word_equality,
    word_inclusion,
)
from repro.exceptions import ConstraintError
from repro.graph import Instance
from repro.regex import parse


class TestConstraintSyntax:
    def test_word_inclusion_construction(self):
        constraint = word_inclusion("a b", "c")
        assert constraint.is_word_constraint()
        assert constraint.word_sides() == (("a", "b"), ("c",))

    def test_word_equality_construction(self):
        constraint = word_equality(["a"], [])
        assert constraint.is_word_constraint()
        assert constraint.word_sides() == (("a",), ())

    def test_path_constraint_is_not_word(self):
        constraint = path_inclusion("a b*", "c")
        assert not constraint.is_word_constraint()
        with pytest.raises(ConstraintError):
            constraint.word_sides()

    def test_parse_constraint_inclusion_and_equality(self):
        inclusion = parse_constraint("a b <= c d")
        assert isinstance(inclusion, PathInclusion)
        equality = parse_constraint("a (b + c)* = d e")
        assert isinstance(equality, PathEquality)
        with pytest.raises(ConstraintError):
            parse_constraint("a b c")

    def test_str_representations(self):
        assert "<=" in str(word_inclusion("a", "b"))
        assert "=" in str(word_equality("a", "b"))

    def test_alphabet(self):
        constraint = path_equality("a b*", "c")
        assert constraint.alphabet() == frozenset({"a", "b", "c"})


class TestConstraintSet:
    def test_equalities_split_into_two_inclusions(self):
        constraints = ConstraintSet([word_equality("a", "b")])
        sides = {(inc.lhs.as_word(), inc.rhs.as_word()) for inc in constraints.inclusions}
        assert (("a",), ("b",)) in sides
        assert (("b",), ("a",)) in sides

    def test_epsilon_convention(self):
        # u <= ε automatically brings ε <= u along (Section 4.2 convention).
        constraints = ConstraintSet([word_inclusion("a b", "")])
        sides = {(inc.lhs.as_word(), inc.rhs.as_word()) for inc in constraints.inclusions}
        assert ((), ("a", "b")) in sides

    def test_classification(self):
        words_only = ConstraintSet([word_inclusion("a", "b"), word_equality("c", "d")])
        assert words_only.is_word_constraint_set()
        assert not words_only.is_word_equality_set()
        equalities_only = ConstraintSet([word_equality("a", "b")])
        assert equalities_only.is_word_equality_set()
        mixed = ConstraintSet([word_inclusion("a", "b"), path_inclusion("a*", "b")])
        assert not mixed.is_word_constraint_set()

    def test_parse_strings_directly(self):
        constraints = ConstraintSet(["a b <= c", "d = e"])
        assert len(constraints) == 2

    def test_max_word_length_and_alphabet(self):
        constraints = ConstraintSet([word_inclusion("a b c", "d"), word_equality("e", "f")])
        assert constraints.max_word_length() == 3
        assert constraints.alphabet() == frozenset("abcdef")

    def test_duplicate_inclusions_deduplicated(self):
        constraints = ConstraintSet([word_inclusion("a", "b"), word_inclusion("a", "b")])
        assert len(constraints.inclusions) == 1

    def test_invalid_member_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([42])  # type: ignore[list-item]


class TestSatisfaction:
    def test_inclusion_satisfaction(self, figure2):
        instance, source = figure2
        # a b* reaches {o2, o3}; a (b)* b reaches {o2, o3} as well.
        assert satisfies(instance, source, path_inclusion("a b", "a b*"))
        assert not satisfies(instance, source, path_inclusion("a b*", "a b"))

    def test_equality_satisfaction(self, figure2):
        instance, source = figure2
        assert satisfies(instance, source, path_equality("a b b", "a"))
        assert not satisfies(instance, source, path_equality("a b", "a"))

    def test_satisfies_all_and_violations(self, figure2):
        instance, source = figure2
        constraints = ConstraintSet(
            [path_inclusion("a b", "a b*"), path_equality("a b b", "a")]
        )
        assert satisfies_all(instance, source, constraints)
        bad = ConstraintSet([path_equality("a", "a b")])
        assert violated_constraints(instance, source, bad) == list(bad)

    def test_counterexample_check(self):
        # Instance: a single a-edge.  It satisfies {a <= a} trivially but
        # violates a <= b, so it is a counterexample to {a <= a} |= a <= b.
        instance = Instance([("o", "a", "x")])
        premises = ConstraintSet([word_inclusion("a", "a")])
        assert is_counterexample(instance, "o", premises, word_inclusion("a", "b"))
        assert not is_counterexample(instance, "o", premises, word_inclusion("a", "a"))

    def test_cache_constraint_satisfaction(self):
        # Materialized cache edges make the equality hold by construction.
        instance = Instance([("o", "a", "x"), ("x", "b", "o")])
        for target in ("o",):
            instance.add_edge("o", "l", target)
        constraint = path_equality(parse("(a b)*"), parse("l + %"))
        assert satisfies(instance, "o", constraint)
