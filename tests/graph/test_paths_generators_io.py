"""Tests for graph traversal helpers, generators and serialization."""

import pytest

from repro.exceptions import InstanceError
from repro.graph import (
    Instance,
    chain_graph,
    complete_tree,
    cycle_graph,
    distance,
    distances_from,
    figure2_graph,
    instance_from_dict,
    instance_from_edge_list,
    instance_from_json,
    instance_to_dict,
    instance_to_edge_list,
    instance_to_json,
    is_reachable,
    k_sphere,
    layered_dag,
    mirror_site_graph,
    path_labels_exist,
    random_graph,
    reachable_objects,
    some_path_word,
    strongly_connected_components,
    web_like_graph,
)


class TestTraversal:
    def test_distances_on_figure2(self):
        instance, source = figure2_graph()
        distances = distances_from(instance, source)
        assert distances[source] == 0
        assert distances["o2"] == 1
        assert distances["o3"] == 2
        assert "d" not in distances

    def test_distance_and_reachability(self):
        instance, source = chain_graph(["a", "b", "c"])
        assert distance(instance, source, "n3") == 3
        assert is_reachable(instance, source, "n3")
        assert not is_reachable(instance, "n3", source)

    def test_reachable_with_bound(self):
        instance, source = chain_graph(["a"] * 5)
        assert len(reachable_objects(instance, source, max_distance=2)) == 3

    def test_k_sphere(self):
        instance, source = chain_graph(["a", "b", "c", "d"])
        sphere = k_sphere(instance, source, 2)
        assert "n2" in sphere.objects
        assert "n4" not in sphere.objects

    def test_path_labels_exist(self):
        instance, source = figure2_graph()
        assert path_labels_exist(instance, source, ("a", "b")) == {"o3"}
        assert path_labels_exist(instance, source, ("b",)) == set()

    def test_some_path_word(self):
        instance, source = figure2_graph()
        assert some_path_word(instance, source, "o3") == ("a", "b")
        assert some_path_word(instance, source, source) == ()
        assert some_path_word(instance, source, "d") is None

    def test_strongly_connected_components(self):
        instance, _ = figure2_graph()
        components = strongly_connected_components(instance)
        cycle = {frozenset(c) for c in components if len(c) > 1}
        assert frozenset({"o2", "o3"}) in cycle


class TestGenerators:
    def test_cycle_graph(self):
        instance, source = cycle_graph(4, "x")
        assert instance.edge_count() == 4
        assert is_reachable(instance, source, source)

    def test_complete_tree(self):
        instance, root = complete_tree(depth=2, fanout=2, labels=["a", "b"])
        assert len(instance) == 1 + 2 + 4
        assert instance.out_degree(root) == 2

    def test_random_graph_fixed_outdegree(self):
        instance, _ = random_graph(20, 3, ["a", "b"], seed=1)
        for oid in instance.objects:
            assert instance.out_degree(oid) <= 3

    def test_random_graph_deterministic(self):
        first, _ = random_graph(15, 2, ["a", "b"], seed=9)
        second, _ = random_graph(15, 2, ["a", "b"], seed=9)
        assert first == second

    def test_web_like_graph_has_hubs(self):
        instance, _ = web_like_graph(100, ["a", "b"], seed=2)
        max_in = max(instance.in_degree(oid) for oid in instance.objects)
        assert max_in >= 5  # skewed in-degree

    def test_layered_dag_is_acyclic(self):
        instance, _ = layered_dag(4, 3, ["a", "b"], seed=0)
        assert all(len(c) == 1 for c in strongly_connected_components(instance))

    def test_mirror_site_equalities_hold(self):
        from repro.constraints import ConstraintSet, satisfies_all, word_equality

        instance, root = mirror_site_graph(2, 2)
        constraints = ConstraintSet(
            [word_equality("main section0 page0", "mirror section0 page0")]
        )
        assert satisfies_all(instance, root, constraints)


class TestSerialization:
    def test_dict_round_trip(self):
        instance, _ = figure2_graph()
        assert instance_from_dict(instance_to_dict(instance)) == instance

    def test_json_round_trip(self):
        instance, _ = figure2_graph()
        assert instance_from_json(instance_to_json(instance)) == instance

    def test_edge_list_round_trip_preserves_edges(self):
        # The edge-list format cannot represent isolated objects (Figure 2's
        # asking node "d" has no edges), so the round trip preserves edges and
        # connected objects but not isolated ones.
        instance, _ = figure2_graph()
        restored = instance_from_edge_list(instance_to_edge_list(instance))
        assert set(restored.edges()) == set(instance.edges())
        assert restored.objects == instance.objects - {"d"}

    def test_edge_list_rejects_whitespace_identifiers(self):
        instance = Instance([("a node", "l", "b")])
        with pytest.raises(InstanceError):
            instance_to_edge_list(instance)

    def test_edge_list_parses_comments_and_blanks(self):
        text = "# comment\n\nx a y\n"
        instance = instance_from_edge_list(text)
        assert instance.has_edge("x", "a", "y")

    def test_edge_list_malformed_line(self):
        with pytest.raises(InstanceError):
            instance_from_edge_list("x a\n")

    def test_dict_requires_edges_key(self):
        with pytest.raises(InstanceError):
            instance_from_dict({"objects": []})

    def test_dict_malformed_edge(self):
        with pytest.raises(InstanceError):
            instance_from_dict({"edges": [{"source": "x"}]})
