"""Tests for the semistructured data model (Instance, LazyInstance, Ref)."""

import pytest

from repro.exceptions import InstanceError
from repro.graph import Instance, LazyInstance, Ref, infinite_binary_web


class TestInstance:
    def test_add_edge_registers_objects(self):
        instance = Instance()
        instance.add_edge("x", "a", "y")
        assert "x" in instance and "y" in instance
        assert instance.edge_count() == 1

    def test_construction_from_edge_list_and_refs(self):
        instance = Instance([("x", "a", "y"), Ref("y", "b", "z")])
        assert instance.has_edge("x", "a", "y")
        assert instance.has_edge("y", "b", "z")

    def test_duplicate_edges_are_idempotent(self):
        instance = Instance()
        instance.add_edge("x", "a", "y")
        instance.add_edge("x", "a", "y")
        assert instance.edge_count() == 1
        assert instance.out_degree("x") == 1

    def test_labels_must_be_nonempty_strings(self):
        instance = Instance()
        with pytest.raises(InstanceError):
            instance.add_edge("x", "", "y")

    def test_out_edges_is_the_object_description(self):
        instance = Instance([("x", "a", "y"), ("x", "b", "z")])
        assert sorted(instance.out_edges("x")) == [("a", "y"), ("b", "z")]
        assert instance.out_edges("unknown") == []

    def test_in_degree_and_in_edges(self):
        instance = Instance([("x", "a", "y"), ("z", "b", "y")])
        assert instance.in_degree("y") == 2
        assert set(instance.in_edges("y")) == {("x", "a"), ("z", "b")}

    def test_successors_by_label(self):
        instance = Instance([("x", "a", "y"), ("x", "a", "z"), ("x", "b", "w")])
        assert set(instance.successors("x", "a")) == {"y", "z"}

    def test_remove_edge(self):
        instance = Instance([("x", "a", "y")])
        instance.remove_edge("x", "a", "y")
        assert instance.edge_count() == 0
        with pytest.raises(InstanceError):
            instance.remove_edge("x", "a", "y")

    def test_labels(self):
        instance = Instance([("x", "a", "y"), ("y", "b", "z")])
        assert instance.labels() == frozenset({"a", "b"})

    def test_map_objects_is_a_homomorphism(self):
        instance = Instance([("x", "a", "y"), ("y", "a", "x")])
        image = instance.map_objects(lambda oid: "merged")
        assert image.objects == frozenset({"merged"})
        assert image.has_edge("merged", "a", "merged")

    def test_map_labels(self):
        instance = Instance([("x", "a", "y")])
        image = instance.map_labels(lambda label: label.upper())
        assert image.has_edge("x", "A", "y")

    def test_restricted_to(self):
        instance = Instance([("x", "a", "y"), ("y", "a", "z")])
        restricted = instance.restricted_to({"x", "y"})
        assert restricted.has_edge("x", "a", "y")
        assert not restricted.has_edge("y", "a", "z")
        assert "z" not in restricted

    def test_copy_and_equality(self):
        instance = Instance([("x", "a", "y")])
        duplicate = instance.copy()
        assert instance == duplicate
        duplicate.add_edge("y", "b", "z")
        assert instance != duplicate

    def test_instances_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Instance())


class TestLazyInstance:
    def test_out_edges_are_memoized(self):
        calls = []

        def expander(oid):
            calls.append(oid)
            return [("a", str(oid) + "a")]

        lazy = LazyInstance(expander)
        assert lazy.out_edges("x") == [("a", "xa")]
        assert lazy.out_edges("x") == [("a", "xa")]
        assert calls == ["x"]

    def test_invalid_labels_rejected(self):
        lazy = LazyInstance(lambda oid: [("", "y")])
        with pytest.raises(InstanceError):
            lazy.out_edges("x")

    def test_materialize_within_budget(self):
        lazy, root = infinite_binary_web()
        with pytest.raises(InstanceError):
            lazy.materialize([root], max_objects=20)

    def test_materialize_finite_portion(self):
        def expander(oid):
            if len(str(oid)) >= 2:
                return []
            return [("a", str(oid) + "a")]

        lazy = LazyInstance(expander)
        finite = lazy.materialize(["x"], max_objects=10)
        assert finite.has_edge("x", "a", "xa")
        assert len(finite) == 2
