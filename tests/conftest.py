"""Shared fixtures and hypothesis configuration for the test suite.

The hypothesis *strategies* live in ``_strategies.py`` (importable absolutely
from any test module); this conftest keeps the pytest-specific pieces: the
hypothesis profile and the plain fixtures.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.graph import figure2_graph, random_graph
from repro.workloads import cs_department_site

# ---------------------------------------------------------------------------
# Hypothesis profiles: keep property tests meaningful but fast enough to run
# as part of the normal suite.
# ---------------------------------------------------------------------------
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Plain fixtures.
# ---------------------------------------------------------------------------
@pytest.fixture
def figure2():
    """The Figure 2 graph and its source ``o1``."""
    return figure2_graph()


@pytest.fixture
def cs_site():
    """The CS-department workload (graph, root, constraints)."""
    return cs_department_site()


@pytest.fixture
def medium_random_graph():
    """A deterministic 40-node random graph over {a, b, c}."""
    return random_graph(40, 3, ["a", "b", "c"], seed=7)


@pytest.fixture
def rng():
    return random.Random(1234)


# ---------------------------------------------------------------------------
# Lock-order witness mode (REPRO_LOCK_WITNESS=1): after the whole session,
# every lock acquisition order observed at runtime must be consistent with
# the statically derived graph — inversions or cycles fail the run.
# ---------------------------------------------------------------------------
def pytest_sessionfinish(session, exitstatus):
    from repro.engine.telemetry import lock_witness

    witness = lock_witness()
    if witness is None or not witness.edges():
        return
    from repro.analysis import engine_static_edges

    witness.assert_consistent(engine_static_edges())
