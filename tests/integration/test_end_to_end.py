"""End-to-end integration: all evaluators and the optimizer on one workload."""

from repro.constraints import ConstraintSet, satisfies_all
from repro.datalog import (
    answers_from,
    edb_from_instance,
    evaluate_seminaive,
    quotient_translation,
    state_translation,
)
from repro.distributed import run_distributed_query
from repro.optimize import CostModel, QueryCache, plan_and_evaluate
from repro.query import answer_set, answer_set_by_quotients
from repro.workloads import cs_department_site


class TestAllEvaluatorsAgree:
    """The four evaluation routes of the paper compute the same answers."""

    QUERIES = [
        "CS-Department Courses cs301",
        "CS-Department (DB-group + Faculty) prof1 Classes cs301",
        "CS-Department (DB-group + group-1 + Faculty) prof2 (Classes + Publications)",
        "(CS-Department + misc0) (Courses + Faculty) (cs301 + prof1)",
    ]

    def test_centralized_quotient_datalog_distributed(self):
        workload = cs_department_site(group_count=2, faculty_per_group=1, courses_per_faculty=1)
        instance, root = workload.instance, workload.root
        for query in self.QUERIES:
            reference = answer_set(query, root, instance)
            assert answer_set_by_quotients(query, root, instance) == reference
            for translate in (quotient_translation, state_translation):
                translated = translate(query)
                database, _ = evaluate_seminaive(
                    translated.program, edb_from_instance(instance, root)
                )
                assert answers_from(database, translated.answer_predicate) == reference
            distributed = run_distributed_query(query, root, instance, asker="browser")
            assert distributed.answers == reference
            assert distributed.terminated


class TestCachePipeline:
    """Install caches, derive constraints, rewrite, and re-evaluate — end to end."""

    def test_cache_install_rewrite_evaluate(self):
        workload = cs_department_site(group_count=1, faculty_per_group=1, courses_per_faculty=2)
        instance, root = workload.instance, workload.root

        cache = QueryCache(root)
        instance, _ = cache.install(instance, "CS-Department Courses (cs301 + cs302)", "hot_courses")
        constraints = ConstraintSet(list(workload.constraints) + list(cache.constraints()))
        assert satisfies_all(instance, root, constraints)

        report = plan_and_evaluate(
            "CS-Department Courses (cs301 + cs302)",
            root,
            instance,
            constraints,
            CostModel().with_cached(cache.labels()),
            measure_distributed=True,
        )
        assert report.rewrite.improved
        assert report.answers == answer_set(
            "CS-Department Courses (cs301 + cs302)", root, instance
        )
        assert report.optimized_messages <= report.original_messages
