"""Integration tests reproducing every worked example of the paper end to end."""

from repro.automata import equivalent, regex_to_nfa
from repro.constraints import (
    ConstraintSet,
    Verdict,
    decide_boundedness,
    decide_implication,
    figure4_instance,
    path_equality,
    path_inclusion,
    satisfies,
    satisfies_all,
    word_equality,
    word_inclusion,
)
from repro.distributed import Done, run_distributed_query
from repro.generalized import (
    build_classification,
    evaluate_general_query,
    evaluate_general_query_directly,
    example21_instance,
    example21_query,
)
from repro.graph import figure2_graph
from repro.optimize import CostModel, materialize_cache, rewrite_query
from repro.query import answer_set
from repro.regex import parse, to_string
from repro.workloads import cs_department_site


class TestIntroductionConstraints:
    """The CS-department constraints from Section 1 / Section 3.2."""

    def test_structural_equality_holds_and_is_detected(self):
        workload = cs_department_site()
        assert satisfies_all(workload.instance, workload.root, workload.constraints)
        course = workload.course_ids[0]
        constraint = word_equality(
            f"CS-Department DB-group prof1 Classes {course}",
            f"CS-Department Courses {course}",
        )
        assert satisfies(workload.instance, workload.root, constraint)

    def test_constraint_driven_rewrite_shortens_the_intro_query(self):
        workload = cs_department_site()
        course = workload.course_ids[0]
        long_query = f"CS-Department DB-group prof1 Classes {course}"
        short_query = f"CS-Department Courses {course}"
        outcome = rewrite_query(long_query, workload.constraints)
        assert outcome.improved
        assert to_string(outcome.best) == " ".join(parse(short_query).as_word())
        assert answer_set(long_query, workload.root, workload.instance) == answer_set(
            outcome.best, workload.root, workload.instance
        )


class TestFigure1Example21:
    def test_six_classes_and_mu_equivalence(self):
        query = example21_query()
        instance, source = example21_instance()
        classification = build_classification(query, instance)
        assert classification.class_count() == 6
        assert evaluate_general_query(query, source, instance) == (
            evaluate_general_query_directly(query, source, instance)
        )


class TestFigures2And3:
    def test_distributed_run_matches_the_figure(self):
        instance, source = figure2_graph()
        result = run_distributed_query("a b*", source, instance, asker="d")
        assert result.answers == {"o2", "o3"}
        assert result.terminated
        # Termination is detected by the done for the root subquery reaching d,
        # after every answer has been acknowledged (Figure 3's last message).
        assert isinstance(result.trace[-1].message, Done)
        assert result.trace[-1].message.receiver == "d"
        assert result.message_counts()["subquery"] == 4


class TestSection32Examples:
    def test_example_1_constraint_direction(self):
        """Σ* l = ε: the recursive query collapses into a non-recursive one.

        Our implication machinery confirms the inclusion direction
        ``(l a + l b)* d ⊆ (ε + a + b) d`` (each (l x) block returns to the
        source); the converse inclusion requires an l-labeled witness path to
        exist and is refuted by a concrete counterexample, so the paper's
        stated equivalence holds in the inclusion direction relevant for
        optimization (replacing the recursive query by a non-recursive
        superset that is then filtered).
        """
        constraints = ConstraintSet([path_equality("(a + b + l + d)* l", "%")])
        forward = decide_implication(
            constraints, path_inclusion("(l a + l b)* d", "(% + a + b) d")
        )
        # The sound prover or the counterexample search must not *refute* it.
        assert forward.verdict is not Verdict.NOT_IMPLIED
        backward = decide_implication(
            constraints, path_inclusion("(% + a + b) d", "(l a + l b)* d")
        )
        assert backward.verdict is not Verdict.IMPLIED

    def test_example_2_idempotent_label(self):
        """l l ⊆ l implies l* = l + ε, so l* can be replaced by l + ε."""
        constraints = ConstraintSet([word_inclusion("l l", "l")])
        result = decide_implication(constraints, path_equality("l*", "l + %"))
        assert result.verdict is Verdict.IMPLIED

        equalities = ConstraintSet([word_equality("l l", "l")])
        bounded = decide_boundedness(equalities, "l*")
        assert bounded.bounded
        assert equivalent(
            regex_to_nfa(bounded.equivalent_query), regex_to_nfa(parse("l + %"))
        )

    def test_example_3_cached_query(self):
        """l = (a b)* lets a (b a)* c be answered through the cache as l a c."""
        constraints = ConstraintSet([path_equality("l", "(a b)*")])
        result = decide_implication(
            constraints, path_equality("a (b a)* c", "l a c")
        )
        assert result.verdict is Verdict.IMPLIED

        # End to end on a concrete cached site.
        from repro.graph import Instance

        site = Instance([("o", "a", "x"), ("x", "b", "o"), ("x", "c", "y")])
        cached_site, record = materialize_cache(site, "o", "(a b)*", "l")
        outcome = rewrite_query(
            "a (b a)* c",
            ConstraintSet([record.constraint()]),
            CostModel().with_cached({"l"}),
        )
        assert to_string(outcome.best) == "l a c"
        assert answer_set("a (b a)* c", "o", cached_site) == answer_set(
            "l a c", "o", cached_site
        )


class TestFigure4:
    def test_lemma44_worked_example(self):
        witness = figure4_instance()
        constraints = ConstraintSet([word_inclusion("a a", "a")])
        assert satisfies_all(witness.instance, witness.source, constraints)
        assert len(witness.classes()) == 4
        answers_a = answer_set(parse("a"), witness.source, witness.instance)
        answers_aa = answer_set(parse("a a"), witness.source, witness.instance)
        answers_aaa = answer_set(parse("a a a"), witness.source, witness.instance)
        assert len(answers_a) == 3 and len(answers_aa) == 2 and len(answers_aaa) == 1
        assert answers_aaa < answers_aa < answers_a
