"""Miscellaneous coverage: package exports, exceptions, and small helpers."""


import repro
from repro import exceptions
from repro.datalog import (
    answers_from,
    edb_from_instance,
    evaluate_seminaive,
    quotient_translation,
    unrestricted_variant,
)
from repro.distributed import SiteAgent, Subquery
from repro.graph import figure2_graph
from repro.regex import parse


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_readme(self):
        graph = repro.Instance([("home", "a", "x"), ("x", "b", "y")])
        assert repro.answer_set("a b*", "home", graph) == {"x", "y"}

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.regex",
            "repro.automata",
            "repro.graph",
            "repro.query",
            "repro.datalog",
            "repro.distributed",
            "repro.constraints",
            "repro.generalized",
            "repro.optimize",
            "repro.workloads",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"


class TestExceptions:
    def test_hierarchy(self):
        for error_type in (
            exceptions.RegexSyntaxError,
            exceptions.AutomatonError,
            exceptions.InstanceError,
            exceptions.ConstraintError,
            exceptions.ImplicationUndecidedError,
            exceptions.DatalogError,
            exceptions.DistributedProtocolError,
            exceptions.BoundednessError,
        ):
            assert issubclass(error_type, exceptions.ReproError)
        assert issubclass(exceptions.ReproError, Exception)

    def test_regex_syntax_error_records_position(self):
        error = exceptions.RegexSyntaxError("bad token", position=7)
        assert error.position == 7
        assert "position 7" in str(error)

    def test_regex_syntax_error_without_position(self):
        assert exceptions.RegexSyntaxError("oops").position is None


class TestSiteAgentUnit:
    def test_duplicate_subquery_returns_done_immediately(self):
        agent = SiteAgent("site", [("a", "next")])
        first = agent.handle(Subquery("m1", "asker", "site", "asker", parse("a b")))
        assert any(message.kind() == "subquery" for message in first)
        duplicate = agent.handle(Subquery("m2", "other", "site", "asker", parse("a b")))
        assert len(duplicate) == 1
        assert duplicate[0].kind() == "done"
        assert duplicate[0].receiver == "other"

    def test_dead_subquery_is_done_at_once(self):
        agent = SiteAgent("leaf", [])
        messages = agent.handle(Subquery("m1", "asker", "leaf", "asker", parse("a b")))
        assert [m.kind() for m in messages] == ["done"]

    def test_self_answer_when_epsilon_in_language(self):
        from repro.distributed import Ack

        agent = SiteAgent("leaf", [])
        messages = agent.handle(Subquery("m1", "asker", "leaf", "dest", parse("a*")))
        assert [m.kind() for m in messages] == ["answer"]
        # The done to the requester is deferred until the answer is acknowledged.
        followup = agent.handle(Ack(messages[0].mid, "dest", "leaf"))
        assert [m.kind() for m in followup] == ["done"]
        assert followup[0].receiver == "asker"

    def test_unmatched_completion_is_recorded_not_fatal(self):
        agent = SiteAgent("site", [])
        from repro.distributed import Done

        assert agent.handle(Done("ghost", "x", "site")) == []
        assert agent.unmatched_completions == ["ghost"]


class TestDatalogUnrestrictedVariant:
    def test_unrestricted_program_derives_at_least_the_seeded_answers(self):
        instance, source = figure2_graph()
        translated = quotient_translation("a b*")
        seeded_db, _ = evaluate_seminaive(
            translated.program, edb_from_instance(instance, source)
        )
        unrestricted = unrestricted_variant(translated.program)
        # The unrestricted program seeds the recursion at every object with an
        # outgoing edge, so it derives a superset of the source-seeded answers.
        edb = edb_from_instance(instance, source)
        edb.pop("source")
        open_db, _ = evaluate_seminaive(unrestricted, edb)
        assert answers_from(seeded_db) <= answers_from(open_db)
