"""Runtime lock-order witness: recording, inversions, static consistency.

The witness (``repro.engine.telemetry.LockWitness``) is the dynamic half of
the ``LockOrder`` rule: under ``REPRO_LOCK_WITNESS=1`` every engine lock
reports its acquisitions, and the observed ``held -> acquired`` edges must
stay consistent with the statically derived graph
(``repro.analysis.engine_static_edges``).
"""

import threading

import pytest

from repro.analysis import engine_static_edges
from repro.engine.telemetry import (
    LockOrderError,
    LockWitness,
    lock_witness,
    set_witness_enabled,
    witness_enabled,
    witnessed_lock,
)


@pytest.fixture
def witness_mode():
    """Enable witness mode for one test, restoring the prior state after."""
    previous = set_witness_enabled(True)
    recorder = lock_witness()
    recorder.reset()
    try:
        yield recorder
    finally:
        recorder.reset()
        set_witness_enabled(previous)


class TestLockWitness:
    def test_records_nested_acquisition_edges(self):
        witness = LockWitness()
        witness.note_acquire("A")
        witness.note_acquire("B")
        witness.note_release("B")
        witness.note_release("A")
        assert witness.edges() == {("A", "B")}
        witness.assert_consistent()  # one edge: trivially acyclic

    def test_reentrant_acquire_records_nothing(self):
        witness = LockWitness()
        witness.note_acquire("A")
        witness.note_acquire("A")  # RLock re-entry
        witness.note_release("A")
        witness.note_release("A")
        assert witness.edges() == set()

    def test_inversion_detected_immediately(self):
        witness = LockWitness()
        witness.note_acquire("A")
        witness.note_acquire("B")
        witness.note_release("B")
        witness.note_release("A")
        witness.note_acquire("B")
        witness.note_acquire("A")  # inverted on the same thread, later
        assert witness.inversions()
        with pytest.raises(LockOrderError, match="acquired while"):
            witness.assert_consistent()

    def test_edges_per_thread_stacks(self):
        # Two threads each holding one lock never produce an edge; edges
        # need *nesting* within a single thread.
        witness = LockWitness()

        def hold(name, started, release):
            witness.note_acquire(name)
            started.set()
            release.wait(timeout=10)
            witness.note_release(name)

        started_a, started_b = threading.Event(), threading.Event()
        release = threading.Event()
        threads = [
            threading.Thread(target=hold, args=("A", started_a, release)),
            threading.Thread(target=hold, args=("B", started_b, release)),
        ]
        for thread in threads:
            thread.start()
        assert started_a.wait(timeout=10) and started_b.wait(timeout=10)
        release.set()
        for thread in threads:
            thread.join()
        assert witness.edges() == set()

    def test_observed_order_contradicting_static_graph_fails(self):
        # The static analyzer proved A -> B somewhere in the tree; a run
        # that acquires B -> A is a deadlock waiting for the right timing,
        # even though neither graph alone has a cycle.
        witness = LockWitness()
        witness.note_acquire("B")
        witness.note_acquire("A")
        witness.note_release("A")
        witness.note_release("B")
        witness.assert_consistent()  # fine in isolation
        with pytest.raises(LockOrderError, match="cycle"):
            witness.assert_consistent(static_edges={("A", "B")})

    def test_consistent_merge_passes(self):
        witness = LockWitness()
        witness.note_acquire("A")
        witness.note_acquire("B")
        witness.note_release("B")
        witness.note_release("A")
        witness.assert_consistent(static_edges={("B", "C"), ("A", "C")})

    def test_reset_clears_recordings(self):
        witness = LockWitness()
        witness.note_acquire("A")
        witness.note_acquire("B")
        witness.reset()
        assert witness.edges() == set()
        assert witness.inversions() == []


class TestWitnessedLock:
    def test_plain_lock_when_disabled(self):
        if witness_enabled():
            pytest.skip("suite running under REPRO_LOCK_WITNESS")
        lock = witnessed_lock("Plain._lock")
        assert type(lock) is type(threading.Lock())

    def test_reports_acquisitions_when_enabled(self, witness_mode):
        outer = witnessed_lock("Outer._lock")
        inner = witnessed_lock("Inner._lock", threading.RLock)
        with outer:
            with inner:
                with inner:  # re-entrant: no self-edge
                    pass
        assert witness_mode.edges() == {("Outer._lock", "Inner._lock")}

    def test_set_witness_enabled_returns_previous(self):
        previous = set_witness_enabled(witness_enabled())
        assert previous == witness_enabled()


class TestEngineWitnessIntegration:
    def test_sharded_evaluation_order_matches_static_graph(self, witness_mode):
        # Locks must be created while witness mode is on, so the engine is
        # built inside the fixture's window.  A concurrent sharded engine
        # exercises the deepest real nesting: ShardedEngine._lock ->
        # Engine._lock -> Engine._run_lock across scheduler threads.
        from repro.engine import ShardedEngine
        from repro.graph import web_like_graph

        instance, source = web_like_graph(24, ["ref", "link"], seed=11)
        engine = ShardedEngine(instance, shards=2, concurrency=2)
        try:
            engine.query("ref*", source)
            engine.add_edge(source, "extra", source)
            engine.query("extra", source)
        finally:
            engine.close()
        observed = witness_mode.edges()
        assert observed, "witnessed evaluation recorded no lock nesting"
        witness_mode.assert_consistent(engine_static_edges())
