"""Fixture: LockOrder — two locks acquired in opposite orders."""

import threading


class Router:
    def __init__(self):
        self._lock = threading.Lock()
        self._publish_lock = threading.Lock()

    def forward(self):
        with self._lock:
            with self._publish_lock:  # edge _lock -> _publish_lock
                return 1

    def backward(self):
        with self._publish_lock:
            with self._lock:  # edge _publish_lock -> _lock: cycle
                return 2
