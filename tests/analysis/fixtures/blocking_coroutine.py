"""Fixture: LoopNeverBlocks — blocking primitives inside async def bodies."""

import asyncio
import time


async def bad_sleep():
    time.sleep(0.1)  # line 8: blocking sleep on the loop


async def bad_print(payload):
    print(payload)  # line 12: console I/O on the loop


async def bad_admission(engine, query):
    return engine.admission(query)  # line 16: cold rewrite path


async def good_sleep():
    await asyncio.sleep(0.1)


async def good_executor(loop, pool, engine, query):
    return await loop.run_in_executor(pool, lambda: engine.admission(query))


async def good_async_acquire(lock):
    await lock.acquire()
