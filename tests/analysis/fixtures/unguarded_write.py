"""Fixture: LockDiscipline — a guarded attribute written without the lock."""

import threading


class Counter:
    GUARDED_BY = {
        "_value": "_lock",
        "_snapshot": "_lock:mutate",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0  # constructor writes are exempt
        self._snapshot = ()

    def good_increment(self):
        with self._lock:
            self._value += 1

    def bad_increment(self):
        self._value += 1  # line 22: write without the lock

    def bad_read(self):
        return self._value  # line 25: read without the lock

    def snapshot_read_is_fine(self):
        return self._snapshot  # :mutate guard exempts loads

    def bad_snapshot_write(self):
        self._snapshot = (1, 2)  # line 31: mutate without the lock
