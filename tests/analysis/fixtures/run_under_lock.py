"""Fixture: NoRunUnderLock — executor entry points called under a lock."""

import threading

from repro.engine.executor import run_batch, run_single


class Session:
    def __init__(self):
        self._lock = threading.Lock()
        self._run_lock = None  # stand-in read/write lock

    def bad_eval(self, compiled, queries):
        with self._lock:
            return run_batch(compiled, queries)  # line 15: run under lock

    def good_eval(self, compiled, queries):
        with self._lock:
            compiled = self.prepare(compiled)
        return run_batch(compiled, queries)

    def good_eval_shared(self, compiled, query):
        with self._run_lock.read():
            return run_single(compiled, query)  # shared token: allowed

    def bad_eval_write(self, compiled, query):
        with self._run_lock.write():
            return run_single(compiled, query)  # line 27: exclusive token

    def prepare(self, compiled):
        return compiled
