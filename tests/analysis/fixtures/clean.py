"""Fixture: a fully conforming module — the no-false-positive case."""

import asyncio
import threading

from repro.analysis.annotations import acquires, guarded_by
from repro.engine.executor import run_batch


class Store:
    GUARDED_BY = {
        "_items": "_lock",
        "_published": "_lock:mutate",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._order_lock = threading.Lock()
        self._items = []
        self._published = ()

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._rebuild()

    @guarded_by("_lock")
    def _rebuild(self):
        self._published = tuple(self._items)

    def view(self):
        return self._published  # :mutate — lock-free point read is the idiom

    def ordered(self):
        with self._lock:
            with self._order_lock:  # consistent order everywhere: no cycle
                return list(self._items)

    @acquires("Helper._lock")
    def delegate(self, helper):
        with self._lock:
            return helper.snapshot()

    def evaluate(self, compiled, queries):
        with self._lock:
            prepared = list(queries)
        return run_batch(compiled, prepared)


class Helper:
    def __init__(self):
        self._lock = threading.Lock()

    def snapshot(self):
        with self._lock:
            return ()


async def pump(loop, pool, store, compiled, queries):
    await asyncio.sleep(0)
    return await loop.run_in_executor(pool, store.evaluate, compiled, queries)
