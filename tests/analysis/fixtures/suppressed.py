"""Fixture: suppression comments — justified, bare, and unknown-rule."""

import threading


class Cache:
    GUARDED_BY = {"_entries": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def size(self):
        return len(self._entries)  # repro: allow(LockDiscipline) len() of a dict is atomic under the GIL

    def clear(self):
        self._entries = {}  # repro: allow(LockDiscipline)

    def peek(self):
        # repro: allow(LockDiscipline) benign racy read used only in repr
        return self._entries

    def typo(self):
        with self._lock:
            return dict(self._entries)  # repro: allow(LockDisciplin) misspelled rule id
