"""CLI behaviour: exit codes, text/JSON output, and the self-check gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, str(FIXTURES / "clean.py"))
        assert code == 0
        assert "0 violation(s)" in out

    def test_seeded_violations_exit_one(self, capsys):
        code, out, _ = run_cli(capsys, str(FIXTURES / "unguarded_write.py"))
        assert code == 1
        assert "LockDiscipline" in out

    def test_missing_path_exits_two(self, capsys):
        code, _, err = run_cli(capsys, str(FIXTURES / "nope.py"))
        assert code == 2
        assert "no such path" in err

    def test_unknown_rule_filter_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "--rules", "NotARule", str(FIXTURES))
        assert code == 2
        assert "unknown rule" in err


class TestOutput:
    def test_text_lines_have_path_line_rule(self, capsys):
        _, out, _ = run_cli(capsys, str(FIXTURES / "unguarded_write.py"))
        assert ":22:" in out and "LockDiscipline:" in out

    def test_json_format(self, capsys):
        code, out, _ = run_cli(
            capsys, "--format", "json", str(FIXTURES / "lock_cycle.py")
        )
        payload = json.loads(out)
        assert code == 1
        assert payload["files"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["LockOrder"]
        assert payload["lock_graph"]["cycles"]

    def test_json_out_file(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        run_cli(
            capsys, "--json-out", str(artifact), str(FIXTURES / "clean.py")
        )
        payload = json.loads(artifact.read_text())
        assert payload["violations"] == []
        assert payload["lock_graph"] is not None

    def test_show_suppressed_lists_justifications(self, capsys):
        _, out, _ = run_cli(
            capsys, "--show-suppressed", str(FIXTURES / "suppressed.py")
        )
        assert "suppressed: " in out and "atomic under the GIL" in out

    def test_rule_filter_runs_subset(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "--rules",
            "LoopNeverBlocks",
            str(FIXTURES / "unguarded_write.py"),
        )
        assert code == 0
        assert "LockDiscipline" not in out


class TestSelfCheck:
    def test_annotated_engine_tree_is_clean(self):
        """The acceptance gate: src/repro has zero unsuppressed violations."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            cwd=REPO,
            env=ENV,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_module_entry_point_json(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "--format",
                "json",
                "src/repro/analysis",
            ],
            cwd=REPO,
            env=ENV,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["files"] >= 5
