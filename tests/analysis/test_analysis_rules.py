"""Fixture-driven tests for the four concurrency-contract rules.

Each fixture under ``fixtures/`` seeds specific violations; these tests pin
the exact rule ids and line numbers so rule regressions are loud.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.core import BARE_ALLOW, UNKNOWN_RULE

FIXTURES = Path(__file__).parent / "fixtures"


def findings(name, *, include_suppressed=False):
    report = analyze_paths([FIXTURES / name])
    rows = report.violations if include_suppressed else report.active
    return [(v.rule, v.line) for v in rows], report


class TestLockDiscipline:
    def test_seeded_violations_fire_with_exact_lines(self):
        rows, _ = findings("unguarded_write.py")
        assert rows == [
            ("LockDiscipline", 22),  # bad_increment: write without lock
            ("LockDiscipline", 25),  # bad_read: read without lock
            ("LockDiscipline", 31),  # bad_snapshot_write: mutate without lock
        ]

    def test_messages_name_attribute_and_lock(self):
        report = analyze_paths([FIXTURES / "unguarded_write.py"])
        messages = [v.message for v in report.active]
        assert any("self._value" in m and "self._lock" in m for m in messages)
        assert all("GUARDED_BY" in m for m in messages)


class TestNoRunUnderLock:
    def test_seeded_violations_fire_with_exact_lines(self):
        rows, _ = findings("run_under_lock.py")
        assert rows == [
            ("NoRunUnderLock", 15),  # run_batch under self._lock
            ("NoRunUnderLock", 28),  # run_single under write token
        ]

    def test_shared_read_token_is_sanctioned(self):
        report = analyze_paths([FIXTURES / "run_under_lock.py"])
        lines = {v.line for v in report.active}
        assert 24 not in lines  # good_eval_shared


class TestLoopNeverBlocks:
    def test_seeded_violations_fire_with_exact_lines(self):
        rows, _ = findings("blocking_coroutine.py")
        assert rows == [
            ("LoopNeverBlocks", 8),  # time.sleep
            ("LoopNeverBlocks", 12),  # print
            ("LoopNeverBlocks", 16),  # cold admission path
        ]

    def test_run_in_executor_and_await_paths_are_sanctioned(self):
        report = analyze_paths([FIXTURES / "blocking_coroutine.py"])
        lines = {v.line for v in report.active}
        for sanctioned in (20, 24, 28):
            assert sanctioned not in lines


class TestLockOrder:
    def test_cycle_is_reported(self):
        rows, report = findings("lock_cycle.py")
        assert [rule for rule, _ in rows] == ["LockOrder"]
        [violation] = report.active
        assert "Router._lock" in violation.message
        assert "Router._publish_lock" in violation.message

    def test_graph_edges_both_directions(self):
        report = analyze_paths([FIXTURES / "lock_cycle.py"])
        pairs = report.lock_graph.edge_pairs()
        assert ("Router._lock", "Router._publish_lock") in pairs
        assert ("Router._publish_lock", "Router._lock") in pairs


class TestCleanFixture:
    def test_no_false_positives(self):
        rows, report = findings("clean.py", include_suppressed=True)
        assert rows == []
        assert report.lock_graph.cycles() == []

    def test_declared_acquires_contributes_edges(self):
        report = analyze_paths([FIXTURES / "clean.py"])
        assert ("Store._lock", "Helper._lock") in report.lock_graph.edge_pairs()


class TestSuppressions:
    def test_justified_allow_suppresses(self):
        report = analyze_paths([FIXTURES / "suppressed.py"])
        suppressed = {(v.rule, v.line) for v in report.suppressed}
        assert ("LockDiscipline", 14) in suppressed  # same-line allow
        assert ("LockDiscipline", 21) in suppressed  # previous-line allow

    def test_bare_allow_is_itself_a_violation(self):
        report = analyze_paths([FIXTURES / "suppressed.py"])
        active = {(v.rule, v.line) for v in report.active}
        assert (BARE_ALLOW, 17) in active
        # ... and the bare allow does NOT silence the underlying finding.
        assert ("LockDiscipline", 17) in active

    def test_unknown_rule_in_allow_is_flagged(self):
        report = analyze_paths([FIXTURES / "suppressed.py"])
        active = {(v.rule, v.line) for v in report.active}
        assert (UNKNOWN_RULE, 25) in active

    def test_suppressed_findings_keep_their_justification(self):
        report = analyze_paths([FIXTURES / "suppressed.py"])
        by_line = {v.line: v for v in report.suppressed}
        assert "atomic under the GIL" in by_line[14].justification
