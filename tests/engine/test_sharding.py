"""Unit tests for the sharded engine layer (``repro.engine.sharding``).

Shard maps, partitioning, the subset CSR build, the shared label universe,
scatter-gather evaluation (answers, witnesses, stats), mutation routing, and
per-shard snapshot persistence — including the headline property that a
single stale shard recompiles alone while every warm shard loads from disk.
"""

import json
import os
import threading

import pytest

from repro.engine import (
    CompiledGraph,
    Engine,
    ExplicitShardMap,
    HashShardMap,
    ShardedEngine,
    ShardMap,
    numpy_available,
    partition_instance,
    shard_graph,
)
from repro.engine.executor import packed_min_batch
from repro.engine.sharding import MANIFEST_NAME
from repro.exceptions import ReproError
from repro.graph import Instance, figure2_graph, web_like_graph
from repro.query import RegularPathQuery

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


def web(nodes=40, seed=7, labels=("a", "b", "c")):
    instance, root = web_like_graph(nodes, list(labels), seed=seed)
    return instance, root


# ---------------------------------------------------------------------------
# Shard maps.
# ---------------------------------------------------------------------------
class TestShardMaps:
    def test_hash_map_is_stable_and_in_range(self):
        shard_map = HashShardMap(5)
        for oid in ("o1", "o2", 3, ("t", 1)):
            shard = shard_map.shard_of(oid)
            assert 0 <= shard < 5
            assert shard == HashShardMap(5).shard_of(oid)

    def test_hash_map_rejects_zero_shards(self):
        with pytest.raises(ReproError):
            HashShardMap(0)

    def test_hash_map_round_trips_through_spec(self):
        shard_map = HashShardMap(3)
        rebuilt = ShardMap.from_spec(shard_map.spec())
        assert rebuilt.num_shards == 3
        assert rebuilt.fingerprint() == shard_map.fingerprint()

    def test_explicit_map_assignment_and_fallback(self):
        shard_map = ExplicitShardMap({"a": 0, "b": 2}, num_shards=3)
        assert shard_map.shard_of("a") == 0
        assert shard_map.shard_of("b") == 2
        # Unassigned oids hash-fall-back into range.
        assert 0 <= shard_map.shard_of("never-assigned") < 3

    def test_explicit_map_infers_shard_count(self):
        assert ExplicitShardMap({"a": 0, "b": 4}).num_shards == 5

    def test_explicit_map_rejects_out_of_range_assignment(self):
        with pytest.raises(ReproError):
            ExplicitShardMap({"a": 3}, num_shards=2)

    def test_explicit_spec_is_a_digest_not_the_assignment(self):
        spec = ExplicitShardMap({"site-one": 0, "site-two": 1}).spec()
        assert spec["kind"] == "explicit"
        assert "site-one" not in json.dumps(spec)
        with pytest.raises(ReproError, match="shard_map"):
            ShardMap.from_spec(spec)

    def test_explicit_fingerprint_is_order_insensitive(self):
        one = ExplicitShardMap({"a": 0, "b": 1}, num_shards=2)
        two = ExplicitShardMap({"b": 1, "a": 0}, num_shards=2)
        assert one.fingerprint() == two.fingerprint()

    def test_by_site_gives_every_object_its_own_shard(self):
        instance, _ = figure2_graph()
        shard_map = ShardMap.by_site(instance)
        assert shard_map.num_shards == len(instance)
        assert len({shard_map.shard_of(oid) for oid in instance.objects}) == len(
            instance
        )


# ---------------------------------------------------------------------------
# Partitioning and the subset CSR build.
# ---------------------------------------------------------------------------
class TestPartition:
    def test_partition_covers_objects_and_edges_exactly_once(self):
        instance, _ = web(30)
        subs = partition_instance(instance, HashShardMap(4))
        owned = [
            {oid for oid in sub.objects if HashShardMap(4).shard_of(oid) == i}
            for i, sub in enumerate(subs)
        ]
        assert set().union(*owned) == instance.objects
        assert sum(sub.edge_count() for sub in subs) == instance.edge_count()
        for i, sub in enumerate(subs):
            for source, _, _ in sub.edges():
                assert HashShardMap(4).shard_of(source) == i

    def test_subset_build_matches_sub_instance_build(self):
        # Node *ids* differ (the subset build interns owned nodes as a dense
        # prefix; the sub-instance build sorts owned and ghost oids
        # together), so equivalence is checked in oid space.
        instance, _ = web(25)
        shard_map = HashShardMap(3)
        subs = partition_instance(instance, shard_map)
        labels = sorted(instance.labels())

        def oid_edges(graph):
            return {
                (graph.oid_of(s), graph.labels.value_of(l), graph.oid_of(d))
                for s, l, d in graph.iter_edges()
            }

        for shard in range(3):
            direct = shard_graph(instance, shard_map, shard, labels=labels)
            via_sub = CompiledGraph.from_instance(subs[shard], labels=labels)
            assert set(direct.nodes) == set(via_sub.nodes)
            assert direct.labels_fingerprint() == via_sub.labels_fingerprint()
            assert oid_edges(direct) == oid_edges(via_sub)
            # Owned nodes form a dense prefix of the subset build's ids.
            owned = sum(
                1 for oid in direct.nodes if shard_map.shard_of(oid) == shard
            )
            assert all(
                shard_map.shard_of(direct.oid_of(node)) == shard
                for node in range(owned)
            )

    def test_label_seed_pre_interns_in_order(self):
        instance = Instance([("x", "b", "y")])
        graph = CompiledGraph.from_instance(instance, labels=["z", "a", "b"])
        assert graph.labels_fingerprint() == ("z", "a", "b")
        # The seeded-but-edgeless labels traverse as empty.
        assert list(graph.successors(0, graph.label_id("z"))) == []

    def test_ensure_label_grows_universe_without_version_bump(self):
        instance = Instance([("x", "a", "y")])
        graph = CompiledGraph.from_instance(instance)
        version = graph.version
        assert graph.ensure_label("fresh") is True
        assert graph.ensure_label("fresh") is False
        assert graph.version == version
        assert graph.labels_fingerprint() == ("a", "fresh")
        node = graph.node_id("x")
        assert list(graph.successors(node, graph.label_id("fresh"))) == []
        # The new label is immediately usable for incremental adds.
        graph.add_edge("x", "fresh", "y")
        assert list(graph.successors(node, graph.label_id("fresh"))) == [
            graph.node_id("y")
        ]

    def test_ensure_label_rejects_bad_labels(self):
        graph = CompiledGraph.from_instance(Instance([("x", "a", "y")]))
        with pytest.raises(Exception):
            graph.ensure_label("")


# ---------------------------------------------------------------------------
# Scatter-gather evaluation.
# ---------------------------------------------------------------------------
class TestShardedEvaluation:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_matches_monolithic_engine(self, shards, backend):
        instance, _ = web(40)
        mono = Engine.open(instance, backend=backend)
        sharded = ShardedEngine.open(instance, shards=shards, backend=backend)
        for query in ("a (b + c)*", "a* b", "(a + b) c*", "%"):
            assert sharded.query_all(query) == mono.query_all(query), query
        assert sharded.stats.supersteps >= 1

    def test_cross_shard_label_split_is_not_pruned(self):
        # Shard 0 owns the only 'a' edge, shard 1 the only 'b' edge: a
        # shard-local label universe would kill the 'awaiting b' DFA state
        # on shard 0 and lose the answer.
        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        shard_map = ExplicitShardMap({"u": 0, "v": 1, "w": 0}, num_shards=2)
        sharded = ShardedEngine.open(instance, shard_map=shard_map)
        assert sharded.query_batch("a b", ["u"]) == {"u": {"w"}}
        assert sharded.stats.exchanged_facts >= 1

    def test_by_site_map_mirrors_distributed_model(self):
        instance, _ = figure2_graph()
        sharded = ShardedEngine.open(instance, shard_map=ShardMap.by_site(instance))
        mono = Engine.open(instance)
        assert sharded.query_all("a b*") == mono.query_all("a b*")

    def test_visited_pairs_match_monolithic(self):
        # Owned facts across shards are exactly the monolithic product
        # reachability — ghost copies are excluded from the stat.
        instance, _ = web(30)
        mono = Engine.open(instance)
        sharded = ShardedEngine.open(instance, shards=3)
        sources = sorted(instance.objects, key=repr)[:8]
        mono.query_batch("a (b + c)*", sources)
        sharded.query_batch("a (b + c)*", sources)
        assert sharded.stats.visited_pairs == mono.stats.visited_pairs

    def test_unknown_source_empty_word_semantics(self):
        instance, _ = web(10)
        sharded = ShardedEngine.open(instance, shards=2)
        assert sharded.query_batch("a*", ["missing"]) == {"missing": {"missing"}}
        assert sharded.query_batch("a", ["missing"]) == {"missing": set()}
        result = sharded.query("a*", "missing")
        assert result.answers == {"missing"}
        assert result.witness_paths["missing"] == ()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_single_source_witnesses_replay(self, backend):
        from test_engine_witness import assert_result_witnesses_real

        instance, root = web(30)
        rpq = RegularPathQuery.of("a (b + c)*")
        sharded = ShardedEngine.open(instance, shards=3, backend=backend)
        result = sharded.query(rpq, root)
        assert result.answers == Engine.open(instance).query(rpq, root).answers
        assert_result_witnesses_real(result, rpq, root, instance)

    def test_constraint_prerewrite_is_central_and_matches_monolithic(self):
        from repro.constraints import ConstraintSet, parse_constraint

        instance, _ = web(20)
        constraints = ConstraintSet([parse_constraint("a b <= c")])
        mono = Engine.open(instance, constraints=constraints)
        sharded = ShardedEngine.open(instance, shards=3, constraints=constraints)
        for query in ("a b", "c*", "(a b + c)*"):
            assert sharded.query_all(query) == mono.query_all(query), query
        # The rewrite happens once, in the sharded session; shard engines
        # must stay constraint-free or their DFAs could drift apart.
        assert all(e.constraints is None for e in sharded.shard_engines)

    def test_engine_open_delegates_to_sharded(self):
        instance, _ = web(15)
        engine = Engine.open(instance, shards=2)
        assert isinstance(engine, ShardedEngine)
        assert engine.num_shards == 2

    def test_requires_shards_or_map(self):
        instance, _ = web(5)
        with pytest.raises(ReproError):
            ShardedEngine.open(instance)
        with pytest.raises(ReproError):
            ShardedEngine.open(instance, shards=2, shard_map=HashShardMap(3))

    def test_describe_mentions_shards_and_supersteps(self):
        instance, _ = web(10)
        sharded = ShardedEngine.open(instance, shards=2)
        sharded.query_batch("a b", sorted(instance.objects, key=repr)[:4])
        text = sharded.describe()
        assert "shards: 2" in text and "supersteps" in text


# ---------------------------------------------------------------------------
# Batched cross-shard witnesses.
# ---------------------------------------------------------------------------
class TestShardedBatchedWitnesses:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_batched_witnesses_replay_and_match_monolithic(self, backend):
        from test_engine_witness import assert_result_witnesses_real

        instance, _ = web(30)
        rpq = RegularPathQuery.of("a (b + c)*")
        sharded = ShardedEngine.open(instance, shards=3, backend=backend)
        mono = Engine.open(instance, backend=backend)
        sources = sorted(instance.objects, key=repr)[:6]
        served = sharded.query_batch_results(rpq, sources)
        reference = mono.query_batch_results(rpq, sources)
        for source in sources:
            assert served[source].answers == reference[source].answers, source
            assert_result_witnesses_real(served[source], rpq, source, instance)

    def test_batched_witness_crosses_shard_boundaries(self):
        # The only witness word walks u -> v -> w across two shards; the
        # reconstruction must stitch adjacency through both sub-instances.
        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        shard_map = ExplicitShardMap({"u": 0, "v": 1, "w": 0}, num_shards=2)
        sharded = ShardedEngine.open(instance, shard_map=shard_map)
        results = sharded.query_batch_results("a b", ["u", "v", "ghost-src"])
        assert results["u"].answers == {"w"}
        assert results["u"].witness_paths == {"w": ("a", "b")}
        assert results["v"].answers == set()
        assert results["v"].witness_paths == {}
        assert results["ghost-src"].answers == set()

    def test_batched_witness_empty_word_for_unknown_source(self):
        instance, _ = web(10)
        sharded = ShardedEngine.open(instance, shards=2)
        results = sharded.query_batch_results("a*", ["missing"])
        assert results["missing"].answers == {"missing"}
        assert results["missing"].witness_paths == {"missing": ()}

    def test_batched_witnesses_are_per_source_bits(self):
        # Two sources with different answer sets must not leak witnesses
        # into each other (the per-bit restriction of the shared fact map).
        instance = Instance(
            [("p", "a", "q"), ("q", "b", "r"), ("x", "b", "r"), ("r", "a", "p")]
        )
        sharded = ShardedEngine.open(instance, shards=2)
        mono = Engine.open(instance)
        sources = ["p", "x", "r"]
        served = sharded.query_batch_results("a? b", sources)
        reference = mono.query_batch_results("a? b", sources)
        for source in sources:
            assert served[source].answers == reference[source].answers, source
            assert set(served[source].witness_paths) == set(
                reference[source].witness_paths
            ), source


# ---------------------------------------------------------------------------
# Stats accounting: per-evaluation vs cumulative counters.
# ---------------------------------------------------------------------------
class TestShardedStatsAccounting:
    def test_backend_evaluations_pin_against_monolithic(self):
        # Regression: superstep re-seeds used to be funnelled into the shard
        # engines' backend_runs, counting one logical evaluation as many
        # runs with no monolithic-comparable tally anywhere.
        instance, _ = web(40)
        mono = Engine.open(instance)
        sharded = ShardedEngine.open(instance, shards=3)
        sources = sorted(instance.objects, key=repr)[:8]
        mono.query_batch("a (b + c)*", sources)
        sharded.query_batch("a (b + c)*", sources)
        backend = mono.resolved_backend
        if backend == "python" and packed_min_batch() <= 1:
            # REPRO_PACKED_MIN_BATCH forces the packed executor into every
            # auto dispatch (the CI no-numpy leg runs the suite this way).
            backend = "packed"
        assert mono.stats.backend_runs == {backend: 1}
        # One logical evaluation: comparable 1:1 with the monolithic count.
        assert sharded.stats.backend_evaluations == {backend: 1}
        # Cumulative local runs exceed it exactly when re-seeding happened,
        # and are reported separately instead of inflating anything else.
        assert sharded.stats.backend_runs == {backend: sharded.stats.local_runs}
        assert sharded.stats.local_runs >= sharded.stats.supersteps >= 1
        # The shard engines' own counters no longer absorb superstep re-runs.
        for engine in sharded.shard_engines:
            assert engine.stats.backend_runs == {}

    def test_last_run_counters_reset_per_evaluation(self):
        instance, _ = web(40)
        sharded = ShardedEngine.open(instance, shards=3)
        sources = sorted(instance.objects, key=repr)[:8]
        sharded.query_batch("a (b + c)*", sources)
        first_total = sharded.stats.supersteps
        first_runs = sharded.stats.local_runs
        assert sharded.stats.last_run.supersteps == first_total
        assert sharded.stats.last_run.local_runs == first_runs
        sharded.query_batch("b c", sources)
        # The cumulative counters kept growing; last_run shows only the
        # second evaluation.
        assert (
            sharded.stats.supersteps
            == first_total + sharded.stats.last_run.supersteps
        )
        assert (
            sharded.stats.local_runs
            == first_runs + sharded.stats.last_run.local_runs
        )
        assert sharded.stats.last_run.supersteps >= 1

    def test_last_run_publish_is_atomic_under_concurrent_readers(self):
        # Regression: ``last_run`` used to be reset *in place* at the start
        # of each evaluation, so a concurrent ``describe()``/gauge read
        # could observe a half-filled counters object.  Counters are now
        # accumulated locally and published by one reference assignment, so
        # every observed last_run must be a *completed* evaluation's values.
        instance, _ = web(40)
        sharded = ShardedEngine.open(instance, shards=3)
        sources = sorted(instance.objects, key=repr)[:6]
        sharded.query_batch("a (b + c)*", sources)
        reference = sharded.stats.last_run
        expected = (
            reference.supersteps,
            reference.local_runs,
            reference.exchanged_facts,
        )

        torn = []
        stop = threading.Event()

        def read():
            while not stop.is_set():
                last = sharded.stats.last_run
                observed = (last.supersteps, last.local_runs, last.exchanged_facts)
                if observed != expected:
                    torn.append(observed)

        readers = [threading.Thread(target=read) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            # Identical repeated evaluations: every *complete* publication
            # carries the same values, so any deviation is a torn read.
            for _ in range(30):
                sharded.query_batch("a (b + c)*", sources)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not torn, f"partially-published last_run observed: {torn[:5]}"

    def test_describe_reports_both_tallies(self):
        instance, _ = web(20)
        sharded = ShardedEngine.open(instance, shards=2)
        sharded.query_batch("a b", sorted(instance.objects, key=repr)[:4])
        text = sharded.describe()
        assert "last evaluation" in text and "backend evaluations/runs" in text


# ---------------------------------------------------------------------------
# Mutation routing.
# ---------------------------------------------------------------------------
class TestShardedMutation:
    def test_add_and_remove_route_to_owner_without_rebuilds(self):
        instance, _ = web(20)
        sharded = ShardedEngine.open(instance, shards=3)
        sharded.add_edge("p1", "a", "p5")
        sharded.remove_edge("p1", "a", "p5")
        sharded.add_edge("p1", "a", "p5")
        mono = Engine.open(instance.copy())
        assert sharded.query_all("a*") == mono.query_all("a*")
        assert all(e.stats.graph_builds == 1 for e in sharded.shard_engines)

    def test_new_label_reaches_every_shard_graph(self):
        instance, _ = web(20)
        sharded = ShardedEngine.open(instance, shards=3)
        sharded.add_edge("p0", "zz", "p9")
        for engine in sharded.shard_engines:
            assert engine.graph.label_id("zz") is not None
        mono = Engine.open(instance.copy())
        for query in ("zz", "a* zz", "(a + zz)*"):
            assert sharded.query_all(query) == mono.query_all(query), query

    def test_new_object_is_registered_with_its_owner(self):
        instance, _ = web(12)
        sharded = ShardedEngine.open(instance, shards=4)
        sharded.add_edge("p0", "a", "brand-new")
        sharded.add_edge("brand-new", "b", "p1")
        mono = Engine.open(instance.copy())
        assert sharded.query_all("a b") == mono.query_all("a b")

    def test_out_of_band_instance_mutation_repartitions(self):
        instance, _ = web(12)
        sharded = ShardedEngine.open(instance, shards=2)
        instance.add_edge("p0", "q", "p7")  # behind the engine's back
        mono = Engine.open(instance.copy())
        assert sharded.query_all("q") == mono.query_all("q")

    def test_remove_missing_edge_raises(self):
        instance, _ = web(8)
        sharded = ShardedEngine.open(instance, shards=2)
        with pytest.raises(Exception):
            sharded.remove_edge("p0", "nope", "p1")


# ---------------------------------------------------------------------------
# Per-shard persistence.
# ---------------------------------------------------------------------------
class TestShardedPersistence:
    def sharded_setup(self, tmp_path, shards=4, nodes=40):
        instance, _ = web(nodes, seed=11)
        sharded = ShardedEngine.open(instance, shards=shards)
        reference = sharded.query_all("a (b + c)*")
        directory = str(tmp_path / "snaps")
        sharded.save(directory)
        return instance, sharded, reference, directory

    def test_save_writes_manifest_and_one_file_per_shard(self, tmp_path):
        _, _, _, directory = self.sharded_setup(tmp_path)
        names = sorted(os.listdir(directory))
        assert MANIFEST_NAME in names
        assert sum(name.endswith(".snap") for name in names) == 4
        with open(os.path.join(directory, MANIFEST_NAME), encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["shard_map"]["kind"] == "hash"
        assert len(manifest["shards"]) == 4
        assert manifest["labels"] == sorted("abc")

    def test_warm_reopen_with_instance(self, tmp_path):
        instance, _, reference, directory = self.sharded_setup(tmp_path)
        warm = ShardedEngine.open(directory, instance=instance)
        assert warm.warm_shards == 4 and warm.rebuilt_shards == 0
        assert warm.query_all("a (b + c)*") == reference

    def test_standalone_reopen_reconstructs_instance(self, tmp_path):
        instance, _, reference, directory = self.sharded_setup(tmp_path)
        alone = ShardedEngine.open(directory)
        assert alone.instance == instance
        assert alone.query_all("a (b + c)*") == reference

    def test_single_stale_shard_recompiles_alone(self, tmp_path):
        instance, sharded, _, directory = self.sharded_setup(tmp_path)
        shard_map = sharded.shard_map
        victim = next(
            oid
            for oid in sorted(instance.objects, key=repr)
            if shard_map.shard_of(oid) == 2 and instance.out_degree(oid)
        )
        label, destination = instance.out_edges(victim)[0]
        instance.remove_edge(victim, label, destination)
        stale = ShardedEngine.open(directory, instance=instance)
        assert stale.rebuilt_shards == 1 and stale.warm_shards == 3
        rebuilt = [
            i
            for i, engine in enumerate(stale.shard_engines)
            if engine.stats.graph_builds
        ]
        assert rebuilt == [2]
        mono = Engine.open(instance)
        assert stale.query_all("a (b + c)*") == mono.query_all("a (b + c)*")

    def test_explicit_map_must_be_resupplied(self, tmp_path):
        instance, _ = web(15)
        shard_map = ExplicitShardMap(
            {oid: 0 for oid in instance.objects}, num_shards=2
        )
        sharded = ShardedEngine.open(instance, shard_map=shard_map)
        directory = str(tmp_path / "explicit")
        sharded.save(directory)
        with pytest.raises(ReproError, match="shard_map"):
            ShardedEngine.open(directory, instance=instance)
        warm = ShardedEngine.open(directory, instance=instance, shard_map=shard_map)
        assert warm.warm_shards == 2

    def test_mismatched_shard_map_rebuilds_from_instance(self, tmp_path):
        instance, _, reference, directory = self.sharded_setup(tmp_path)
        other = ExplicitShardMap({oid: 0 for oid in instance.objects}, num_shards=2)
        rebuilt = ShardedEngine.open(directory, instance=instance, shard_map=other)
        assert rebuilt.warm_shards == 0 and rebuilt.num_shards == 2
        assert rebuilt.query_all("a (b + c)*") == reference

    def test_shards_argument_must_match_manifest(self, tmp_path):
        instance, _, _, directory = self.sharded_setup(tmp_path)
        with pytest.raises(ReproError, match="shards"):
            ShardedEngine.open(directory, instance=instance, shards=9)

    def test_missing_manifest_is_a_clean_error(self, tmp_path):
        with pytest.raises(ReproError, match=MANIFEST_NAME):
            ShardedEngine.open(str(tmp_path / "nowhere"))

    def test_corrupt_manifest_is_a_clean_error(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match="corrupt"):
            ShardedEngine.open(str(directory))

    @pytest.mark.parametrize("codec", ["binary", "npz"])
    def test_codec_choice_respected(self, tmp_path, codec):
        if codec == "npz" and not numpy_available():
            pytest.skip("numpy codec unavailable")
        instance, _ = web(12)
        sharded = ShardedEngine.open(instance, shards=2)
        directory = str(tmp_path / codec)
        sharded.save(directory, codec=codec)
        warm = ShardedEngine.open(directory, instance=instance)
        assert warm.warm_shards == 2

    def test_mutate_then_save_then_reopen(self, tmp_path):
        instance, sharded, _, directory = self.sharded_setup(tmp_path)
        sharded.add_edge("p0", "zz", "p3")
        sharded.save(directory)
        warm = ShardedEngine.open(directory, instance=instance)
        assert warm.rebuilt_shards == 0
        mono = Engine.open(instance.copy())
        assert warm.query_all("zz") == mono.query_all("zz")
