"""Tests for the ``engine`` CLI subcommand (batch query files)."""

import pytest

from repro.cli import main
from repro.graph import figure2_graph, instance_to_edge_list


@pytest.fixture
def graph_file(tmp_path):
    instance, _ = figure2_graph()
    path = tmp_path / "figure2.edges"
    path.write_text(instance_to_edge_list(instance), encoding="utf-8")
    return str(path)


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.rpq"
    path.write_text("# batch of path queries\na b*\n\nb\n", encoding="utf-8")
    return str(path)


class TestEngineCommand:
    def test_batch_from_one_source(self, graph_file, query_file, capsys):
        assert main(["engine", graph_file, query_file, "--source", "o1"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "a b*\to1\to2 o3" in lines
        assert "b\to1\t" in lines

    def test_multiple_sources_are_batched(self, graph_file, query_file, capsys):
        code = main(["engine", graph_file, query_file, "-s", "o1", "-s", "o2"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert "a b*\to2\t" in lines
        assert "b\to2\to3" in lines

    def test_all_sources(self, graph_file, query_file, capsys):
        assert main(["engine", graph_file, query_file, "--all-sources"]) == 0
        lines = capsys.readouterr().out.splitlines()
        # 2 queries x 3 objects (the isolated 'd' is not in the edge list).
        assert len(lines) == 6

    def test_stats_on_stderr(self, graph_file, query_file, capsys):
        code = main(["engine", graph_file, query_file, "-s", "o1", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "engine_compile_misses" in err and "engine_batched_sources" in err

    def test_conflicting_source_flags_rejected(self, graph_file, query_file, capsys):
        code = main(["engine", graph_file, query_file, "-s", "o1", "--all-sources"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_requires_sources(self, graph_file, query_file, capsys):
        assert main(["engine", graph_file, query_file]) == 2
        assert "--source" in capsys.readouterr().err

    def test_empty_query_file(self, graph_file, tmp_path, capsys):
        empty = tmp_path / "empty.rpq"
        empty.write_text("# nothing here\n", encoding="utf-8")
        assert main(["engine", graph_file, str(empty), "-s", "o1"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_bad_query_syntax_exits_two(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.rpq"
        bad.write_text("(a\n", encoding="utf-8")
        assert main(["engine", graph_file, str(bad), "-s", "o1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_constraint_prerewrite_accepted(self, graph_file, query_file, capsys):
        code = main(
            ["engine", graph_file, query_file, "-s", "o1", "-c", "a b b = a"]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert "a b*\to1\to2 o3" in lines


class TestEngineSnapshotFlags:
    def test_save_then_load_round_trip(self, graph_file, query_file, tmp_path, capsys):
        snap = str(tmp_path / "graph.snap")
        assert main(
            ["engine", graph_file, query_file, "--all-sources", "--save-snapshot", snap]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            [
                "engine", graph_file, query_file, "--all-sources",
                "--load-snapshot", snap, "--stats",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        # Warm start: the graph was restored, not rebuilt, and the persisted
        # query cache served both queries without a single compile.
        assert "engine_graph_builds 0" in captured.err
        assert "engine_snapshot_restores 1" in captured.err
        assert "engine_compile_misses 0" in captured.err

    def test_load_snapshot_falls_back_on_mismatched_graph(
        self, graph_file, query_file, tmp_path, capsys
    ):
        from repro.graph import figure2_graph, instance_to_edge_list

        snap = str(tmp_path / "graph.snap")
        assert main(
            ["engine", graph_file, query_file, "-s", "o1", "--save-snapshot", snap]
        ) == 0
        capsys.readouterr()
        instance, _ = figure2_graph()
        instance.add_edge("o1", "zz", "o3")
        changed = tmp_path / "changed.edges"
        changed.write_text(instance_to_edge_list(instance), encoding="utf-8")
        assert main(
            [
                "engine", str(changed), query_file, "-s", "o1",
                "--load-snapshot", snap, "--stats",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "a b*\to1\to2 o3" in captured.out.splitlines()
        assert "engine_graph_builds 1" in captured.err

    def test_binary_codec_flag(self, graph_file, query_file, tmp_path, capsys):
        snap = tmp_path / "graph.bin"
        assert main(
            [
                "engine", graph_file, query_file, "-s", "o1",
                "--save-snapshot", str(snap), "--snapshot-codec", "binary",
            ]
        ) == 0
        assert snap.read_bytes().startswith(b"RPQSNAP")
        assert main(
            ["engine", graph_file, query_file, "-s", "o1", "--load-snapshot", str(snap)]
        ) == 0

    def test_load_missing_snapshot_exits_two(self, graph_file, query_file, capsys):
        code = main(
            ["engine", graph_file, query_file, "-s", "o1", "--load-snapshot", "/nope"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEngineBackendFlag:
    def test_python_backend_forced(self, graph_file, query_file, capsys):
        code = main(
            ["engine", graph_file, query_file, "-s", "o1", "--backend", "python", "--stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "a b*\to1\to2 o3" in captured.out.splitlines()
        assert "engine_backend_runs{python}" in captured.err

    def test_numpy_backend_when_available(self, graph_file, query_file, capsys):
        from repro.engine import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        code = main(
            ["engine", graph_file, query_file, "-s", "o1", "--backend", "numpy", "--stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "a b*\to1\to2 o3" in captured.out.splitlines()
        assert "engine_backend_runs{numpy}" in captured.err

    def test_auto_backend_matches_availability(self, graph_file, query_file, capsys):
        from repro.engine import resolve_backend
        from repro.engine.executor import packed_min_batch

        code = main(
            ["engine", graph_file, query_file, "-s", "o1", "--backend", "auto", "--stats"]
        )
        assert code == 0
        expected = resolve_backend("auto")
        if expected == "python" and packed_min_batch() <= 1:
            # REPRO_PACKED_MIN_BATCH forces the packed executor into every
            # auto dispatch (the CI no-numpy leg runs the suite this way).
            expected = "packed"
        assert f"engine_backend_runs{{{expected}}}" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, graph_file, query_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", graph_file, query_file, "-s", "o1", "--backend", "rust"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err


class TestEngineShardedFlags:
    def test_sharded_serving_matches_monolithic(self, graph_file, query_file, capsys):
        assert main(["engine", graph_file, query_file, "--all-sources"]) == 0
        expected = capsys.readouterr().out
        code = main(["engine", graph_file, query_file, "--all-sources", "--shards", "2"])
        assert code == 0
        assert capsys.readouterr().out == expected

    def test_snapshot_dir_cold_then_warm(self, graph_file, query_file, tmp_path, capsys):
        directory = str(tmp_path / "shards")
        code = main(
            ["engine", graph_file, query_file, "--all-sources",
             "--shards", "3", "--snapshot-dir", directory, "--stats"]
        )
        assert code == 0
        first = capsys.readouterr()
        assert "sharded_warm_shards 0" in first.err
        assert (tmp_path / "shards" / "manifest.json").is_file()
        # Second invocation warm-starts every shard from the directory.
        code = main(
            ["engine", graph_file, query_file, "--all-sources",
             "--snapshot-dir", directory, "--stats"]
        )
        assert code == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "sharded_warm_shards 3" in second.err
        assert "sharded_rebuilt_shards 0" in second.err

    def test_snapshot_dir_without_shards_needs_manifest(
        self, graph_file, query_file, tmp_path, capsys
    ):
        directory = str(tmp_path / "empty")
        code = main(
            ["engine", graph_file, query_file, "--all-sources", "--snapshot-dir", directory]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_flags_reject_single_snapshot_flags(
        self, graph_file, query_file, tmp_path, capsys
    ):
        code = main(
            ["engine", graph_file, query_file, "--all-sources", "--shards", "2",
             "--save-snapshot", str(tmp_path / "x.snap")]
        )
        assert code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_shards_mismatch_against_manifest_exits_two(
        self, graph_file, query_file, tmp_path, capsys
    ):
        directory = str(tmp_path / "shards")
        assert main(
            ["engine", graph_file, query_file, "--all-sources",
             "--shards", "2", "--snapshot-dir", directory]
        ) == 0
        capsys.readouterr()
        code = main(
            ["engine", graph_file, query_file, "--all-sources",
             "--shards", "5", "--snapshot-dir", directory]
        )
        assert code == 2
        assert "contradicts" in capsys.readouterr().err


class TestServeCommand:
    def _serve(self, monkeypatch, capsys, argv, stdin_text):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(stdin_text))
        code = main(argv)
        return code, capsys.readouterr()

    def test_stdin_round_trip(self, graph_file, monkeypatch, capsys):
        code, captured = self._serve(
            monkeypatch,
            capsys,
            ["serve", graph_file],
            "r1\to1\ta b*\nr2\to2\tb\n",
        )
        assert code == 0
        # Responses stream in completion order; the id correlates them.
        responses = dict(
            line.split("\t", 1) for line in captured.out.splitlines()
        )
        assert responses == {"r1": "o2 o3", "r2": "o3"}

    def test_stdin_coalesces_same_query(self, graph_file, monkeypatch, capsys):
        requests = "".join(f"r{i}\to{1 + i % 3}\ta b*\n" for i in range(6))
        code, captured = self._serve(
            monkeypatch,
            capsys,
            # A generous delay so all six requests land in one bucket even
            # on a slow CI box (the stdin reads hop through an executor).
            ["serve", graph_file, "--stats", "--max-delay", "0.2"],
            requests,
        )
        assert code == 0
        assert len(captured.out.splitlines()) == 6
        # All six requests shared one admission bucket -> one batch.
        assert "serving_batches 1" in captured.err

    def test_sharded_serve_with_concurrency(self, graph_file, monkeypatch, capsys):
        code, captured = self._serve(
            monkeypatch,
            capsys,
            ["serve", graph_file, "--shards", "2", "--concurrency", "2", "--stats"],
            "r1\to1\ta b*\n",
        )
        assert code == 0
        assert captured.out.splitlines() == ["r1\to2 o3"]
        assert "sharded_shards 2" in captured.err

    def test_malformed_and_failing_requests_answer_errors(
        self, graph_file, monkeypatch, capsys
    ):
        code, captured = self._serve(
            monkeypatch,
            capsys,
            ["serve", graph_file],
            "r1\to1\t((((\nnot-a-request\n",
        )
        assert code == 0
        lines = captured.out.splitlines()
        assert lines[0].startswith("r1\terror: ")
        assert "malformed request" in lines[1]

    def test_bad_tcp_spec_exits_two(self, graph_file, capsys):
        assert main(["serve", graph_file, "--tcp", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_constraints_accepted(self, graph_file, monkeypatch, capsys):
        code, captured = self._serve(
            monkeypatch,
            capsys,
            ["serve", graph_file, "-c", "a b b = a"],
            "r1\to1\ta b*\n",
        )
        assert code == 0
        assert captured.out.splitlines() == ["r1\to2 o3"]


class TestEngineConcurrencyFlag:
    def test_concurrency_requires_shards(self, graph_file, query_file, capsys):
        code = main(
            ["engine", graph_file, query_file, "--all-sources", "--concurrency", "2"]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_concurrency_with_shards_serves(self, graph_file, query_file, capsys):
        code = main(
            ["engine", graph_file, query_file, "--all-sources",
             "--shards", "2", "--concurrency", "2"]
        )
        assert code == 0
        concurrent_out = capsys.readouterr().out
        assert main(["engine", graph_file, query_file, "--all-sources"]) == 0
        assert capsys.readouterr().out == concurrent_out

    def test_unresolvable_tcp_host_exits_two(self, graph_file, capsys):
        code = main(["serve", graph_file, "--tcp", "no.such.host.invalid:0"])
        assert code == 2
        assert "cannot listen on" in capsys.readouterr().err


class TestCrpqCommand:
    @pytest.fixture
    def chain_file(self, tmp_path):
        path = tmp_path / "chain.edges"
        path.write_text(
            "u a v\nu a w\nv b t\nw b t\n", encoding="utf-8"
        )
        return str(path)

    def test_rows_in_return_order(self, chain_file, capsys):
        code = main(
            ["crpq", chain_file, "MATCH x -[a]-> y, y -[b]-> z RETURN x, z"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["u,t"]
        assert "# x, z" in captured.err  # column header on stderr

    def test_source_binds_first_variable(self, chain_file, capsys):
        code = main(
            ["crpq", chain_file, "MATCH x -[a]-> y RETURN y", "--source", "u"]
        )
        assert code == 0
        assert capsys.readouterr().out.splitlines() == ["v", "w"]

    def test_plan_prints_join_order(self, chain_file, capsys):
        code = main(
            [
                "crpq", chain_file,
                "MATCH x -[a]-> y, y -[b]-> z RETURN x", "--plan",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "# plan: strategy=optimized acyclic=True" in err
        assert "# step 0:" in err and "# step 1:" in err

    def test_sharded_and_strategy_flags(self, chain_file, capsys):
        code = main(
            [
                "crpq", chain_file, "MATCH x -[a b]-> y RETURN x, y",
                "--shards", "2", "--strategy", "worst",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.splitlines() == ["u,t"]

    def test_stats_snapshot_carries_crpq_counters(self, chain_file, capsys):
        code = main(
            ["crpq", chain_file, "MATCH x -[a]-> y RETURN y", "--stats"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "crpq_queries 1" in err

    def test_scalar_query_is_an_error(self, chain_file, capsys):
        assert main(["crpq", chain_file, "a b"]) == 2
        assert "MATCH" in capsys.readouterr().err

    def test_concurrency_requires_shards(self, chain_file, capsys):
        code = main(
            ["crpq", chain_file, "MATCH x -[a]-> y RETURN y",
             "--concurrency", "2"]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err
