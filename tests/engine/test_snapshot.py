"""Unit tests for compiled-graph snapshots (persist / warm-start)."""

import pytest

from repro.engine import Engine, numpy_available
from repro.engine.snapshot import (
    CODECS,
    MAGIC,
    SnapshotStamp,
    instance_from_graph,
    load_payload,
    resolve_codec,
)
from repro.exceptions import ReproError
from repro.graph import Instance, figure2_graph, random_graph
from repro.query import evaluate_baseline

CODEC_PARAMS = [
    pytest.param("binary", id="binary"),
    pytest.param(
        "npz",
        id="npz",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy codec unavailable"
        ),
    ),
]


def codecs_available():
    return ["binary"] + (["npz"] if numpy_available() else [])


@pytest.fixture
def warm_engine():
    instance, source = figure2_graph()
    engine = Engine.open(instance)
    engine.query("a b*", source)
    engine.query("(a + b)*", source)
    return engine, instance, source


class TestCodecSelection:
    def test_unknown_codec_rejected(self, warm_engine, tmp_path):
        engine, _, _ = warm_engine
        with pytest.raises(ReproError, match="unknown snapshot codec"):
            engine.save(tmp_path / "snap", codec="tar")

    def test_auto_matches_numpy_availability(self):
        expected = "npz" if numpy_available() else "binary"
        assert resolve_codec("auto") == expected
        assert resolve_codec("binary") == "binary"

    def test_npz_requires_numpy(self):
        if numpy_available():
            assert resolve_codec("npz") == "npz"
        else:
            with pytest.raises(ReproError, match="npz"):
                resolve_codec("npz")

    def test_codec_names_are_stable(self):
        assert CODECS == ("auto", "binary", "npz")


@pytest.mark.parametrize("codec", CODEC_PARAMS)
class TestRoundTrip:
    def test_graph_and_cache_round_trip(self, warm_engine, tmp_path, codec):
        engine, instance, source = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        loaded = Engine.open(path, instance=instance)
        # Warm start: no rebuild, no recompilation.
        assert loaded.stats.graph_builds == 0
        assert loaded.stats.snapshot_restores == 1
        assert loaded.compiler.misses == 0
        assert len(loaded.compiler) == 2
        graph, restored = engine.graph, loaded.graph
        assert restored.nodes.values() == graph.nodes.values()
        assert restored.labels.values() == graph.labels.values()
        assert set(restored.iter_edges()) == set(graph.iter_edges())
        for query in ("a b*", "(a + b)*", "b"):
            assert (
                loaded.query(query, source).answers
                == engine.query(query, source).answers
            )
        assert loaded.compiler.hits >= 2  # the two persisted tables served

    def test_tombstones_and_overflow_survive(self, warm_engine, tmp_path, codec):
        engine, instance, source = warm_engine
        engine.add_edge("o1", "zz", "fresh")  # overflow edge, new label + node
        engine.remove_edge("o2", "b", "o3")  # tombstoned CSR slot
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        loaded = Engine.open(path, instance=instance)
        assert loaded.graph.overflow_edge_count() == 1
        assert loaded.graph.tombstone_count() == 1
        assert loaded.query("a b*", source).answers == {"o2"}
        assert loaded.query("zz", "o1").answers == {"fresh"}
        # Incremental mutation keeps working on the restored structures.
        loaded.add_edge("o2", "b", "o3")  # revives the tombstoned slot
        assert loaded.graph.tombstone_count() == 0
        assert loaded.query("a b*", source).answers == {"o2", "o3"}
        assert loaded.stats.graph_builds == 0

    def test_standalone_load_reconstructs_instance(self, warm_engine, tmp_path, codec):
        engine, instance, source = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        alone = Engine.open(path)
        assert alone.instance is not instance
        assert alone.instance == instance
        assert alone.instance.content_fingerprint() == instance.content_fingerprint()
        assert (
            alone.query("a b*", source).answers
            == evaluate_baseline("a b*", source, instance).answers
        )

    def test_isolated_objects_survive(self, tmp_path, codec):
        instance, source = figure2_graph()
        instance.add_object("hermit")
        engine = Engine.open(instance)
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        alone = Engine.open(path)
        assert "hermit" in alone.instance.objects
        assert alone.query("a*", "hermit").answers == {"hermit"}

    def test_oids_with_trailing_nul_round_trip(self, tmp_path, codec):
        # numpy '<U' arrays silently strip trailing NULs, so the npz codec
        # must route such oids through its pickle path.
        instance = Instance([("a\x00", "r", "b"), ("b", "r", "plain")])
        engine = Engine.open(instance)
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        loaded = Engine.open(path, instance=instance)
        assert loaded.stats.graph_builds == 0
        assert loaded.query("r", "a\x00").answers == {"b"}
        assert Engine.open(path).instance == instance

    def test_non_string_oids_round_trip(self, tmp_path, codec):
        instance, _ = random_graph(12, 2, ["a", "b"], seed=7)  # integer oids
        engine = Engine.open(instance)
        engine.query("a b*", 0)
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        loaded = Engine.open(path, instance=instance)
        assert loaded.stats.graph_builds == 0
        for oid in sorted(instance.objects, key=repr)[:5]:
            assert (
                loaded.query("a b*", oid).answers
                == evaluate_baseline("a b*", oid, instance).answers
            )

    def test_save_refreshes_stale_engine_first(self, warm_engine, tmp_path, codec):
        engine, instance, source = warm_engine
        instance.add_edge(source, "c", "o3")  # out-of-band mutation
        path = tmp_path / "snap"
        engine.save(path, codec=codec)  # must refresh before stamping
        loaded = Engine.open(path, instance=instance)
        assert loaded.stats.graph_builds == 0
        assert loaded.query("c", source).answers == {"o3"}

    def test_stamp_mismatch_falls_back_to_rebuild(self, warm_engine, tmp_path, codec):
        engine, instance, source = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        changed, _ = figure2_graph()
        changed.add_edge("o1", "qq", "o2")
        fallback = Engine.open(path, instance=changed)
        assert fallback.stats.graph_builds == 1
        assert fallback.stats.snapshot_restores == 0
        assert fallback.query("qq", "o1").answers == {"o2"}
        assert (
            fallback.query("a b*", source).answers
            == evaluate_baseline("a b*", source, changed).answers
        )

    def test_fallback_reseeds_cache_when_label_order_matches(
        self, warm_engine, tmp_path, codec
    ):
        engine, instance, source = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        # Same label universe, one extra edge on existing labels: the rebuilt
        # interner assigns the same label ids, so persisted tables stay valid.
        changed, _ = figure2_graph()
        changed.add_edge("o3", "a", "o1")
        fallback = Engine.open(path, instance=changed)
        assert fallback.stats.graph_builds == 1
        assert fallback.compiler.misses == 0
        assert (
            fallback.query("a b*", source).answers
            == evaluate_baseline("a b*", source, changed).answers
        )
        assert fallback.compiler.hits == 1

    def test_loaded_engine_keeps_serving_after_post_load_edits(
        self, warm_engine, tmp_path, codec
    ):
        engine, instance, source = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        loaded = Engine.open(path, instance=instance)
        loaded.add_edge("o3", "b", "o1")
        loaded.remove_edge("o1", "a", "o2")
        assert loaded.stats.graph_builds == 0
        for query in ("a b*", "(a + b)*"):
            assert (
                loaded.query(query, source).answers
                == evaluate_baseline(query, source, instance).answers
            )

    def test_payload_stamp_fields(self, warm_engine, tmp_path, codec):
        engine, instance, _ = warm_engine
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        payload = load_payload(path)
        assert payload.stamp == SnapshotStamp(
            instance_version=instance.version,
            edge_version=instance.edge_version,
            fingerprint=instance.content_fingerprint(),
        )
        assert payload.format_version == 1
        assert len(payload.cache) == 2
        assert {entry.key for entry in payload.cache} == {"a b*", "(a + b)*"}


class TestBadInputs:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Engine.open(tmp_path / "nope.snap")

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(ReproError, match="not a repro engine snapshot"):
            load_payload(path)

    def test_unsupported_format_version(self, tmp_path):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        path = tmp_path / "snap"
        engine.save(path, codec="binary")
        blob = bytearray(path.read_bytes())
        blob[len(MAGIC)] = 99  # bump the little-endian format version field
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="unsupported snapshot format version 99"):
            load_payload(path)

    @pytest.mark.parametrize("codec", CODEC_PARAMS)
    @pytest.mark.parametrize("keep", [10, 60, 200])
    def test_truncated_snapshot_raises_repro_error(self, tmp_path, codec, keep):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a b*", source)
        path = tmp_path / "snap"
        engine.save(path, codec=codec)
        blob = path.read_bytes()
        assert len(blob) > keep
        path.write_bytes(blob[:keep])
        with pytest.raises(ReproError, match="snapshot"):
            load_payload(path)

    def test_instance_kwarg_rejected_for_instance_source(self):
        instance, _ = figure2_graph()
        with pytest.raises(ReproError, match="instance="):
            Engine.open(instance, instance=instance)


class TestPartsIsolation:
    def test_from_parts_graph_does_not_alias_source_overflow(self):
        from repro.engine import CompiledGraph

        instance, _ = figure2_graph()
        first = CompiledGraph.from_instance(instance)
        first.add_edge("o1", "a", "o3")  # lands in overflow
        second = CompiledGraph.from_parts(**first.to_parts())
        second.add_edge("o1", "a", "o1")  # must not leak into `first`
        assert first.overflow_edge_count() == 1
        assert set(first.iter_edges()) != set(second.iter_edges())
        lid = first.label_id("a")
        assert first.node_id("o1") not in set(
            first.successors(first.node_id("o1"), lid)
        )


class TestInstanceFromGraph:
    def test_equals_original(self):
        instance, _ = random_graph(20, 3, ["a", "b", "c"], seed=3)
        instance.add_object("isolated")
        engine = Engine.open(instance)
        rebuilt = instance_from_graph(engine.graph)
        assert rebuilt == instance


class TestCrossCodec:
    def test_binary_and_npz_agree(self, warm_engine, tmp_path):
        if not numpy_available():
            pytest.skip("numpy codec unavailable")
        engine, instance, source = warm_engine
        engine.add_edge("o1", "zz", "fresh")
        first = tmp_path / "a.bin"
        second = tmp_path / "b.npz"
        engine.save(first, codec="binary")
        engine.save(second, codec="npz")
        from_binary = Engine.open(first)
        from_npz = Engine.open(second)
        assert from_binary.instance == from_npz.instance
        assert set(from_binary.graph.iter_edges()) == set(from_npz.graph.iter_edges())
        assert (
            from_binary.query("a b*", source).answers
            == from_npz.query("a b*", source).answers
        )
