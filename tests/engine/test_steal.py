"""Superstep work-stealing: the StealQueue and the chunked fixpoint path.

The queue is a plain unit-test surface.  The chunked path is pinned by
construction: a skewed workload (one shard owning every second-word source)
evaluated with stealing on, stealing off, no scheduler at all, and the
monolithic engine must all produce identical answers — the word-column
chunks are exact self-contained sub-fixpoints, so chunking is purely an
execution-order choice.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine, ShardedEngine
from repro.engine.executor import numpy_available
from repro.engine.serving import StealQueue
from repro.engine.sharding import ExplicitShardMap
from repro.exceptions import ReproError
from repro.graph import Instance, web_like_graph


class TestStealQueue:
    def test_own_tasks_drain_fifo(self):
        queue = StealQueue()
        order = []
        queue.put(0, lambda: order.append("first"))
        queue.put(0, lambda: order.append("second"))
        own, stolen = queue.drain(0)
        assert (own, stolen) == (2, 0)
        assert order == ["first", "second"]
        assert queue.steals == 0
        assert queue.puts == 2

    def test_foreign_claim_steals_from_the_tail(self):
        queue = StealQueue()
        order = []
        queue.put(0, lambda: order.append("older"))
        queue.put(0, lambda: order.append("newest"))
        owner, task = queue.claim(1)
        task()
        # A thief takes the most recently queued task (the owner is working
        # the queue from the front).
        assert owner == 0
        assert order == ["newest"]
        assert queue.steals == 1
        own, stolen = queue.drain(0)
        assert (own, stolen) == (1, 0)
        assert order == ["newest", "older"]

    def test_owner_preferred_over_stealing(self):
        queue = StealQueue()
        ran = []
        queue.put(0, lambda: ran.append(0))
        queue.put(1, lambda: ran.append(1))
        own, stolen = queue.drain(1)
        # Shard 1 runs its own task first, then steals shard 0's.
        assert (own, stolen) == (1, 1)
        assert ran == [1, 0]

    def test_claim_on_empty_queue(self):
        assert StealQueue().claim(0) is None


class TestStealThresholdValidation:
    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_word_counts(self, bad):
        instance, _ = web_like_graph(20, ["a", "b"], seed=3)
        with pytest.raises(ReproError, match="steal_threshold"):
            ShardedEngine.open(instance, shards=2, steal_threshold=bad)

    def test_none_disables(self):
        instance, _ = web_like_graph(20, ["a", "b"], seed=3)
        engine = ShardedEngine.open(instance, shards=2, steal_threshold=None)
        assert engine.steal_threshold is None

    def test_setter_validates_too(self):
        instance, _ = web_like_graph(20, ["a", "b"], seed=3)
        engine = ShardedEngine.open(instance, shards=2)
        assert engine.steal_threshold == 2
        with pytest.raises(ReproError, match="steal_threshold"):
            engine.steal_threshold = 0
        engine.steal_threshold = None
        assert engine.steal_threshold is None


def skewed_fixture(cluster_nodes=60, clusters=2, chain_depth=30, seed=5):
    """Two web clusters plus a deep ``a``-chain owned by shard 0, with 80
    sources laid out so mask word 0 spans both shards and word 1 is the
    chain (shard 0 only) — the smallest shape where word-column chunking
    and stealing can engage (>64 sources, several shards active)."""
    labels = ["a", "b", "c"]
    instance = Instance()
    assignment: dict = {}
    for cluster in range(clusters):
        part, _ = web_like_graph(cluster_nodes, labels, seed=seed + cluster)
        mapped = part.map_objects(lambda oid, cluster=cluster: f"s{cluster}:{oid}")
        for oid in mapped.objects:
            instance.add_object(oid)
            assignment[oid] = cluster
        for edge in mapped.edges():
            instance.add_edge(*edge)
    previous = None
    for index in range(chain_depth):
        node = f"s0:chain{index:03d}"
        instance.add_object(node)
        assignment[node] = 0
        if previous is not None:
            instance.add_edge(previous, "a", node)
        previous = node
    instance.add_edge(previous, "b", "s0:chain000")
    shard_map = ExplicitShardMap(assignment, num_shards=clusters)
    per_cluster = []
    for cluster in range(clusters):
        pool = sorted(
            oid for oid in instance.objects
            if assignment[oid] == cluster and "chain" not in oid
        )
        per_cluster.append(pool[:32])
    word0 = [per_cluster[i % clusters][i // clusters] for i in range(64)]
    word1 = [f"s0:chain{i:03d}" for i in range(16)]
    return instance, shard_map, word0 + word1


@pytest.mark.skipif(not numpy_available(), reason="chunking is numpy-only")
class TestChunkedStealParity:
    QUERIES = ("a*.b", "(a|b)*.c")

    def serve(self, engine, sources):
        return {q: engine.query_batch(q, sources) for q in self.QUERIES}

    def test_all_arms_agree_and_stealing_fires(self):
        instance, shard_map, sources = skewed_fixture()
        reference = self.serve(Engine.open(instance), sources)

        stealing = ShardedEngine.open(
            instance, shard_map=shard_map, concurrency=2
        )
        disabled = ShardedEngine.open(
            instance, shard_map=shard_map, concurrency=2, steal_threshold=None
        )
        sequential = ShardedEngine.open(instance, shard_map=shard_map)

        assert self.serve(stealing, sources) == reference
        assert self.serve(disabled, sources) == reference
        assert self.serve(sequential, sources) == reference

        # The chunked engine queued word-column tasks and some were claimed
        # by a non-owner; the other arms must not have touched the machinery.
        # Whether a particular evaluation steals depends on thread timing
        # (a worker may drain its own queue before its peer arrives), so
        # accumulate over repeated identical runs — the counter is
        # cumulative and one steal anywhere proves the path.
        for _ in range(10):
            if stealing.stats.steal_events:
                break
            assert self.serve(stealing, sources) == reference
        assert stealing.stats.steal_events > 0
        assert disabled.stats.steal_events == 0
        assert sequential.stats.steal_events == 0
        assert stealing.stats.superstep_skew_ratio >= 1.0

    def test_streaming_parity_through_the_chunked_path(self):
        instance, shard_map, sources = skewed_fixture()
        stealing = ShardedEngine.open(
            instance, shard_map=shard_map, concurrency=2
        )
        for query in self.QUERIES:
            streamed: dict = {}
            final = stealing.query_batch_streaming(
                query,
                sources,
                lambda oid, answers: streamed.setdefault(oid, set()).update(
                    answers
                ),
            )
            for oid, answers in final.items():
                assert streamed.get(oid, set()) == set(answers), (query, oid)

    def test_narrow_batches_never_chunk(self):
        # One mask word: below every threshold, so the monolithic local
        # fixpoint serves and no steal events can appear.
        instance, shard_map, sources = skewed_fixture()
        engine = ShardedEngine.open(
            instance, shard_map=shard_map, concurrency=2
        )
        engine.query_batch("a*.b", sources[:40])
        assert engine.stats.steal_events == 0
