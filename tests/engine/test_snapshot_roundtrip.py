"""Property test: snapshot -> load is lossless, before and after edits.

Hypothesis generates random instances, a pre-save edit script (driven
through the engine so tombstones and overflow edges are live at save time),
a query, and a post-load edit script.  Every example must satisfy: the
loaded engine answers exactly like the baseline evaluator on the live
instance — across every available executor backend and every available
codec — both immediately after the load and after further incremental
``add_edge``/``remove_edge`` mutations of the restored structures.
"""

import os
import tempfile

from hypothesis import given, settings

from _strategies import edit_scripts, regexes, small_instances
from repro.engine import Engine, available_backends, numpy_available
from repro.query import RegularPathQuery, evaluate_baseline

CODECS = ("binary", "npz") if numpy_available() else ("binary",)


def apply_script(engine, script):
    """Drive an edit script through the engine (no-op where invalid)."""
    for kind, source, label, destination in script:
        if kind == "add":
            engine.add_edge(source, label, destination)
        elif engine.instance.has_edge(source, label, destination):
            engine.remove_edge(source, label, destination)


def assert_engine_matches_baseline(engine, rpq, context):
    instance = engine.instance
    sources = sorted(instance.objects, key=repr)
    expected = {
        source: evaluate_baseline(rpq, source, instance).answers
        for source in sources
    }
    for backend in available_backends():
        engine.backend = backend
        for source in sources:
            assert engine.query(rpq, source).answers == expected[source], (
                context,
                backend,
                source,
            )
        batched = engine.query_batch(rpq, sources)
        for source in sources:
            assert batched[source] == expected[source], (context, backend, source)


@given(
    small_instances(max_nodes=5, max_edges=8),
    edit_scripts(max_ops=6),
    edit_scripts(max_ops=6),
    regexes(max_leaves=5),
)
@settings(max_examples=60, deadline=None)
def test_snapshot_roundtrip_is_lossless(graph_and_source, before, after, expression):
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    engine = Engine.open(instance)
    # Pre-save edits go through the engine, leaving live tombstones and
    # overflow edges in the compiled graph for the snapshot to capture.
    apply_script(engine, before)
    with tempfile.TemporaryDirectory() as workdir:
        for codec in CODECS:
            # Warm the compile cache against the *current* graph each round
            # (a previous round's post-load edits may have rebuilt it), so
            # every snapshot ships a servable table for the query.
            engine.query(rpq, 0)
            path = os.path.join(workdir, f"snap.{codec}")
            engine.save(path, codec=codec)

            loaded = Engine.open(path, instance=instance)
            assert loaded.stats.graph_builds == 0, codec
            assert set(loaded.graph.iter_edges()) == set(engine.graph.iter_edges())
            assert_engine_matches_baseline(loaded, rpq, ("fresh-load", codec))
            assert loaded.compiler.misses == 0, codec

            # Standalone load: the reconstructed instance must answer like
            # the live one did at save time.
            alone = Engine.open(path)
            assert alone.instance == instance, codec
            assert_engine_matches_baseline(alone, rpq, ("standalone", codec))

            # Post-load incremental edits on the restored structures.
            apply_script(loaded, after)
            assert loaded.stats.graph_builds == 0, codec
            assert_engine_matches_baseline(loaded, rpq, ("post-load-edits", codec))
