"""Tests for the async serving layer (``repro.engine.serving``).

Admission-queue semantics (coalescing, flush policies, error fan-out,
lifecycle), the concurrent superstep scheduler (ordering, the
``concurrent_steps`` overlap stat, barrier error handling), the TCP/stdin
line protocol, end-to-end equivalence of served answers against direct
engine calls on both session kinds, and a thread-sanity stress test that
hammers one shared engine from many raw threads (no asyncio) to exercise
the PR-5 thread-safety audit.  ``scripts/check.sh serve`` runs this file
with ``PYTHONASYNCIODEBUG=1`` in both numpy arms.
"""

import asyncio
import threading

import pytest

from repro.engine import (
    Engine,
    QueryRequest,
    QueryServer,
    ShardedEngine,
    SuperstepScheduler,
    numpy_available,
    serve_request_lines,
    serve_stream,
    serve_tcp,
)
from repro.engine.serving import respond_line
from repro.exceptions import ReproError
from repro.graph import Instance, web_like_graph

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


def web(nodes=40, seed=7, labels=("a", "b", "c")):
    instance, root = web_like_graph(nodes, list(labels), seed=seed)
    return instance, root


def sources_of(instance, count):
    return sorted(instance.objects, key=repr)[:count]


# ---------------------------------------------------------------------------
# Admission queue.
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_coalesces_same_query_into_one_batch(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        sources = sources_of(instance, 10)

        async def scenario():
            async with engine.as_server(max_batch=64, max_delay=0.01) as server:
                return await server.submit_many(QueryRequest(query="a (b + c)*", sources=tuple(sources)))

        served = asyncio.run(scenario())
        assert served == engine.query_batch("a (b + c)*", sources)
        # All ten requests shared ONE engine round-trip (the second
        # batch_evaluations bump is the direct reference call above).
        assert engine.stats.batch_evaluations == 2

    def test_equivalent_spellings_share_a_bucket(self):
        # '(a b)' and 'a b' print to the same canonical expression, so the
        # admission key coalesces them even though the request texts differ.
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            async with engine.as_server(max_delay=0.01) as server:
                one = server.submit_nowait(QueryRequest(query="(a b)", sources=(source,)))
                two = server.submit_nowait(QueryRequest(query="a b", sources=(source,)))
                return await asyncio.gather(one, two)

        one, two = asyncio.run(scenario())
        assert one == two
        assert engine.stats.batch_evaluations == 1

    def test_max_batch_flushes_immediately(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        sources = sources_of(instance, 6)

        async def scenario():
            # max_delay high enough that only the size trigger can flush.
            async with engine.as_server(max_batch=3, max_delay=30.0) as server:
                results = await server.submit_many(QueryRequest(query="a b", sources=tuple(sources)))
                return results, server.stats.size_flushes

        results, size_flushes = asyncio.run(scenario())
        assert results == engine.query_batch("a b", sources)
        assert size_flushes == 2  # 6 sources / max_batch 3

    def test_max_delay_flushes_a_partial_bucket(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            async with engine.as_server(max_batch=64, max_delay=0.001) as server:
                answers = await server.submit(QueryRequest(query="a b", sources=(source,)))
                return answers, server.stats.delay_flushes

        answers, delay_flushes = asyncio.run(scenario())
        assert answers == engine.query_batch("a b", [source])[source]
        assert delay_flushes == 1

    def test_zero_delay_serves_every_request_alone(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        sources = sources_of(instance, 3)

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                results = await server.submit_many(QueryRequest(query="a b", sources=tuple(sources)))
                assert server.stats.immediate_flushes == 3
                assert server.stats.size_flushes == 0
                return results, server.stats.batches

        results, batches = asyncio.run(scenario())
        assert results == engine.query_batch("a b", sources)
        assert batches == 3
        # Tallied as immediate flushes, not as size-cap pressure.
        assert engine.stats.batch_evaluations >= 3

    def test_different_dfas_use_separate_buckets(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            async with engine.as_server(max_delay=0.01, concurrency=2) as server:
                one = server.submit_nowait(QueryRequest(query="a b", sources=(source,)))
                two = server.submit_nowait(QueryRequest(query="b a", sources=(source,)))
                await asyncio.gather(one, two)
                return server.stats.batches

        assert asyncio.run(scenario()) == 2

    def test_malformed_query_fails_fast_at_admission(self):
        # Parse errors surface synchronously from submit, before any bucket
        # is created — a bad request never poisons a shared batch.
        instance, _ = web(10)
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                with pytest.raises(Exception, match="parenthesis"):
                    server.submit_nowait(QueryRequest(query="(unbalanced", sources=("p0",)))
                # submitted == served + failed even for admission failures.
                assert server.stats.submitted == 1
                assert server.stats.failed == 1
                return server.stats.batches

        assert asyncio.run(scenario()) == 0

    def test_evaluation_error_fans_out_to_every_waiter(self):
        # A flush-time engine failure must reject every coalesced waiter.
        instance, _ = web(10)
        engine = Engine.open(instance)
        sources = sources_of(instance, 3)

        class ExplodingEngine:
            def admission(self, query):
                return engine.admission(query)

            def query_batch(self, query, batch_sources):
                raise RuntimeError("backend exploded")

        async def scenario():
            async with QueryServer(ExplodingEngine(), max_delay=0.001) as server:
                futures = [
                    server.submit_nowait(QueryRequest(query="a b", sources=(source,))) for source in sources
                ]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                return outcomes, server.stats.failed, server.stats.batches

        outcomes, failed, batches = asyncio.run(scenario())
        assert len(outcomes) == 3 and failed == 3 and batches == 1
        assert all(
            isinstance(outcome, RuntimeError) for outcome in outcomes
        )

    def test_close_flushes_pending_buckets(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            server = engine.as_server(max_batch=64, max_delay=30.0)
            future = server.submit_nowait(QueryRequest(query="a b", sources=(source,)))
            await server.close()
            assert server.stats.close_flushes == 1
            return await future

        answers = asyncio.run(scenario())
        assert answers == engine.query_batch("a b", [source])[source]

    def test_submit_after_close_raises(self):
        instance, _ = web(10)
        engine = Engine.open(instance)

        async def scenario():
            server = engine.as_server()
            await server.close()
            with pytest.raises(ReproError, match="closed"):
                server.submit_nowait(QueryRequest(query="a", sources=("p0",)))

        asyncio.run(scenario())

    def test_rejects_bad_policy(self):
        instance, _ = web(5)
        engine = Engine.open(instance)
        with pytest.raises(ReproError):
            QueryServer(engine, max_batch=0)
        with pytest.raises(ReproError):
            QueryServer(engine, max_delay=-1.0)
        with pytest.raises(ReproError):
            QueryServer(engine, concurrency=0)

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_sharded_server_matches_direct_and_monolithic(self, backend):
        instance, _ = web(40)
        sharded = ShardedEngine.open(instance, shards=3, backend=backend)
        mono = Engine.open(instance, backend=backend)
        sources = sources_of(instance, 12)
        queries = ("a (b + c)*", "a* b", "b")

        async def scenario():
            async with sharded.as_server(max_batch=8, max_delay=0.002) as server:
                futures = {
                    (query, source): server.submit_nowait(QueryRequest(query=query, sources=(source,)))
                    for query in queries
                    for source in sources
                }
                return {
                    key: await future for key, future in futures.items()
                }

        served = asyncio.run(scenario())
        for query in queries:
            direct = sharded.query_batch(query, sources)
            reference = mono.query_batch(query, sources)
            for source in sources:
                assert served[(query, source)] == direct[source], (query, source)
                assert direct[source] == reference[source], (query, source)

    def test_admission_returns_prepared_form(self):
        # The bucket evaluates the *rewritten* query directly; admission on
        # a constrained session must hand back the prepared expression.
        from repro.constraints import ConstraintSet, parse_constraint
        from repro.engine import query_key

        instance, _ = web(10)
        constraints = ConstraintSet([parse_constraint("a b <= c")])
        engine = Engine.open(instance, constraints=constraints)
        key, prepared = engine.admission("a b")
        assert key == engine.admission_key("a b") == query_key(prepared)

    def test_admission_key_does_not_take_the_evaluation_lock(self):
        # Regression: admission runs on the event loop while flushes hold
        # the engine lock for a whole evaluation — it must never block on it.
        instance, _ = web(10)
        sharded = ShardedEngine.open(instance, shards=2)
        acquired = sharded._lock.acquire()
        assert acquired
        try:
            done = threading.Event()
            keys: "list[str]" = []

            def admit():
                keys.append(sharded.admission_key("a b"))
                done.set()

            worker = threading.Thread(target=admit)
            worker.start()
            assert done.wait(timeout=10), (
                "admission_key blocked behind the evaluation lock"
            )
            worker.join(timeout=10)
            assert keys == ["a b"]
        finally:
            sharded._lock.release()

    def test_constrained_server_coalesces_rewritten_queries(self):
        from repro.constraints import ConstraintSet, parse_constraint

        instance, _ = web(20)
        constraints = ConstraintSet([parse_constraint("a b <= c")])
        engine = Engine.open(instance, constraints=constraints)
        sources = sources_of(instance, 4)

        async def scenario():
            async with engine.as_server(max_delay=0.005) as server:
                return await server.submit_many(QueryRequest(query="a b", sources=tuple(sources)))

        served = asyncio.run(scenario())
        assert served == engine.query_batch("a b", sources)
        # The flush evaluated the *prepared* form: one rewrite pass total
        # (the rewritten expression is a memo fixed point), never a second
        # pass on its own output.
        assert engine.stats.rewrites_applied <= 1


# ---------------------------------------------------------------------------
# Superstep scheduler.
# ---------------------------------------------------------------------------
class TestSuperstepScheduler:
    def test_results_keep_step_order(self):
        with SuperstepScheduler(4) as scheduler:
            results = scheduler.run([lambda i=i: i * i for i in range(7)])
        assert results == [i * i for i in range(7)]

    def test_steps_really_overlap(self):
        # Each step waits for the *other* step to have started: only a
        # scheduler that runs both concurrently can finish, and its peak
        # in-flight stat must record the overlap.
        first, second = threading.Event(), threading.Event()

        def step(mine, other):
            mine.set()
            assert other.wait(timeout=10), "steps did not overlap"
            return True

        with SuperstepScheduler(2) as scheduler:
            results = scheduler.run(
                [
                    lambda: step(first, second),
                    lambda: step(second, first),
                ]
            )
            assert results == [True, True]
            assert scheduler.concurrent_steps == 2
            assert scheduler.steps == 2 and scheduler.barriers == 1

    def test_single_step_skips_the_pool(self):
        with SuperstepScheduler(2) as scheduler:
            assert scheduler.run([lambda: 41]) == [41]
            assert scheduler.steps == 1
            assert scheduler.concurrent_steps == 1

    def test_step_error_joins_the_barrier_first(self):
        joined = threading.Event()

        def failing():
            raise RuntimeError("shard exploded")

        def slow():
            joined.set()
            return "done"

        with SuperstepScheduler(2) as scheduler:
            with pytest.raises(RuntimeError, match="shard exploded"):
                scheduler.run([failing, slow])
        assert joined.is_set()  # the healthy step still completed

    def test_barrier_count_is_exact_under_concurrent_runs(self):
        # Regression: ``barriers += 1`` used to run outside the lock, so
        # concurrent ``run()`` callers (one per serving batch) could lose
        # increments.  Hammer the scheduler from many threads and demand
        # the counter match the number of calls exactly.
        calls_per_thread, caller_count = 50, 8
        with SuperstepScheduler(4) as scheduler:
            start = threading.Barrier(caller_count)

            def hammer():
                start.wait()
                for _ in range(calls_per_thread):
                    scheduler.run([lambda: 1, lambda: 2])

            callers = [threading.Thread(target=hammer) for _ in range(caller_count)]
            for thread in callers:
                thread.start()
            for thread in callers:
                thread.join()
            assert scheduler.barriers == calls_per_thread * caller_count
            assert scheduler.steps == 2 * calls_per_thread * caller_count

    def test_closed_scheduler_raises(self):
        scheduler = SuperstepScheduler(2)
        scheduler.close()
        with pytest.raises(ReproError, match="closed"):
            scheduler.run([lambda: 1])

    def test_rejects_zero_workers(self):
        with pytest.raises(ReproError):
            SuperstepScheduler(0)

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_concurrent_supersteps_match_sequential(self, backend):
        instance, _ = web(60)
        sequential = ShardedEngine.open(instance, shards=4, backend=backend)
        concurrent = ShardedEngine.open(
            instance, shards=4, backend=backend, concurrency=4
        )
        try:
            for query in ("a (b + c)*", "a* b", "%", "(a + b) c*"):
                assert concurrent.query_all(query) == sequential.query_all(
                    query
                ), query
            assert concurrent.scheduler is not None
            # Multi-shard supersteps went through the scheduler (single
            # active-shard rounds legitimately bypass it).
            assert concurrent.scheduler.barriers >= 1
            assert concurrent.scheduler.steps >= 2
        finally:
            concurrent.close()

    def test_engine_open_concurrency_installs_a_scheduler(self):
        instance, _ = web(10)
        engine = ShardedEngine.open(instance, shards=2, concurrency=3)
        try:
            assert engine.scheduler is not None
            assert engine.scheduler.max_workers == 3
        finally:
            engine.close()
        sequential = ShardedEngine.open(instance, shards=2)
        assert sequential.scheduler is None
        assert ShardedEngine.open(instance, shards=2, concurrency=1).scheduler is None

    def test_invalid_concurrency_rejected(self):
        instance, _ = web(5)
        with pytest.raises(ReproError):
            ShardedEngine.open(instance, shards=2, concurrency=0)


# ---------------------------------------------------------------------------
# Line protocol: stdin batch helper and the TCP front-end.
# ---------------------------------------------------------------------------
class TestLineProtocol:
    def test_request_lines_answered_in_order(self):
        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                return await serve_request_lines(
                    server,
                    [
                        "q1\tu\ta b",
                        "",  # blank lines are skipped
                        "q2\tv\tb",
                        "q3\tu\tzz",
                        "malformed",
                    ],
                )

        responses = asyncio.run(scenario())
        assert responses[0] == "q1\tw"
        assert responses[1] == "q2\tw"
        assert responses[2] == "q3\t"  # no answers -> empty payload
        assert responses[3].startswith("malformed\terror: malformed request")

    def test_request_lines_window_preserves_order_and_answers(self):
        # A max_inflight far below the line count: windows drain in turn,
        # order and answers unchanged.
        instance, _ = web(20)
        engine = Engine.open(instance)
        sources = sources_of(instance, 5)
        lines = [
            f"r{index}\t{sources[index % 5]}\ta b" for index in range(17)
        ]

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                return await serve_request_lines(server, lines, max_inflight=3)

        responses = asyncio.run(scenario())
        expected = engine.query_batch("a b", sources)
        assert len(responses) == 17
        for index, response in enumerate(responses):
            ident, _, payload = response.partition("\t")
            assert ident == f"r{index}"
            answers = set(payload.split()) - {""}
            assert answers == {
                str(oid) for oid in expected[sources[index % 5]]
            }, index

    def test_serve_stream_is_interactive(self):
        # A request/response client: the next line is only produced AFTER
        # the previous answer arrived.  Only a front-end that answers each
        # request as it completes (not at a window boundary / EOF) can
        # finish this exchange — the CLI's stdin mode runs on serve_stream
        # for exactly this reason.
        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)
        script = ["r1\tu\ta", "r2\tu\ta b", ""]
        responses: "list[str]" = []
        answered = asyncio.Event()

        async def readline() -> str:
            if responses:  # require the previous answer before continuing
                await answered.wait()
                answered.clear()
            line = script.pop(0)
            return line + "\n" if line else ""

        def emit(response: str) -> None:
            responses.append(response)
            answered.set()

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                await asyncio.wait_for(
                    serve_stream(server, readline, emit), timeout=30
                )

        asyncio.run(scenario())
        assert responses == ["r1\tv", "r2\tw"]

    def test_serve_stream_bounds_inflight(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)
        lines = [f"r{index}\tu\ta" for index in range(9)] + [""]
        collected: "list[str]" = []

        async def readline() -> str:
            line = lines.pop(0)
            return line + "\n" if line else ""

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                await serve_stream(
                    server, readline, collected.append, max_inflight=2
                )

        asyncio.run(scenario())
        assert sorted(collected) == sorted(f"r{index}\tv" for index in range(9))

    def test_request_lines_emit_streams_windows(self):
        # With emit=, responses stream out window by window (and are not
        # accumulated) — the shape the CLI's lazy stdin mode relies on.
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)
        lines = [f"r{index}\tu\ta" for index in range(7)]
        streamed: "list[str]" = []

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                return await serve_request_lines(
                    server, iter(lines), max_inflight=3, emit=streamed.append
                )

        returned = asyncio.run(scenario())
        assert returned == []
        assert streamed == [f"r{index}\tv" for index in range(7)]

    def test_constrained_submit_admits_off_loop(self):
        # submit() on a constrained session hops admission to the pool; the
        # answers (and coalescing) must match the inline submit_nowait path.
        from repro.constraints import ConstraintSet, parse_constraint

        instance, _ = web(20)
        constraints = ConstraintSet([parse_constraint("a b <= c")])
        engine = Engine.open(instance, constraints=constraints)
        sources = sources_of(instance, 4)

        async def scenario():
            async with engine.as_server(max_delay=0.005) as server:
                answers = await asyncio.gather(
                    *(server.submit(QueryRequest(query="a b", sources=(source,))) for source in sources)
                )
                return dict(zip(sources, answers)), server.stats

        served, stats = asyncio.run(scenario())
        assert served == engine.query_batch("a b", sources)
        assert stats.submitted == stats.served + stats.failed == 4

    def test_bad_query_is_an_error_response_not_a_crash(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                return await serve_request_lines(server, ["q1\tu\t(((("])

        [response] = asyncio.run(scenario())
        assert response.startswith("q1\terror: ")

    def test_tcp_oversized_line_answers_error_and_keeps_responses(self):
        # A line exceeding the stream limit loses framing: the connection
        # must answer the in-flight requests plus one error line instead of
        # dying with nothing.
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                listener = await serve_tcp(server, "127.0.0.1", 0)
                port = listener.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"ok\tu\ta\n")
                writer.write(b"x" * (2 << 20))  # > the 1 MiB line limit
                await writer.drain()
                writer.write_eof()
                payload = (await reader.read()).decode("utf-8")
                writer.close()
                await writer.wait_closed()
                listener.close()
                await listener.wait_closed()
                return payload

        payload = asyncio.run(scenario())
        lines = payload.splitlines()
        assert "ok\tv" in lines
        assert any("request line too long" in line for line in lines)

    def test_tcp_inflight_cap_preserves_every_response(self):
        # A tiny per-connection cap forces the read loop to apply
        # backpressure; every pipelined request must still get its answer.
        instance, _ = web(20)
        engine = Engine.open(instance)
        sources = sources_of(instance, 5)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                listener = await serve_tcp(server, "127.0.0.1", 0, max_inflight=2)
                port = listener.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for index in range(20):
                    source = sources[index % len(sources)]
                    writer.write(f"r{index}\t{source}\ta b\n".encode("utf-8"))
                await writer.drain()
                writer.write_eof()
                payload = (await reader.read()).decode("utf-8")
                writer.close()
                await writer.wait_closed()
                listener.close()
                await listener.wait_closed()
                return payload

        payload = asyncio.run(scenario())
        idents = {line.split("\t", 1)[0] for line in payload.splitlines()}
        assert idents == {f"r{index}" for index in range(20)}

    @pytest.mark.parametrize("shards", [None, 2])
    def test_tcp_round_trip(self, shards):
        instance, _ = web(25)
        if shards is None:
            engine = Engine.open(instance)
        else:
            engine = ShardedEngine.open(instance, shards=shards)
        sources = sources_of(instance, 4)
        expected = engine.query_batch("a (b + c)*", sources)

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                listener = await serve_tcp(server, "127.0.0.1", 0)
                port = listener.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for index, source in enumerate(sources):
                    writer.write(
                        f"r{index}\t{source}\ta (b + c)*\n".encode("utf-8")
                    )
                await writer.drain()
                writer.write_eof()
                payload = (await reader.read()).decode("utf-8")
                writer.close()
                await writer.wait_closed()
                listener.close()
                await listener.wait_closed()
                return payload, server.stats.submitted

        payload, submitted = asyncio.run(scenario())
        assert submitted == len(sources)
        responses = dict(
            line.split("\t", 1) for line in payload.splitlines() if line
        )
        for index, source in enumerate(sources):
            answers = set(responses[f"r{index}"].split()) - {""}
            assert answers == {str(oid) for oid in expected[source]}, source


# ---------------------------------------------------------------------------
# Thread sanity: many raw threads on one shared engine (no asyncio).
# ---------------------------------------------------------------------------
class TestThreadSanity:
    QUERIES = ("a (b + c)*", "a* b", "b c", "(a + b)*", "c")

    def _hammer(self, engine, reference, threads=8, rounds=12):
        errors: "list[BaseException]" = []
        barrier = threading.Barrier(threads)

        def worker(seed: int) -> None:
            try:
                barrier.wait(timeout=30)
                for round_index in range(rounds):
                    query = self.QUERIES[(seed + round_index) % len(self.QUERIES)]
                    got = engine.query_batch(query, reference[query][1])
                    assert got == reference[query][0], query
            except BaseException as error:  # surfaces in the main thread
                errors.append(error)

        workers = [
            threading.Thread(target=worker, args=(index,))
            for index in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        assert not errors, errors
        assert not any(thread.is_alive() for thread in workers)

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_shared_monolithic_engine_under_thread_load(self, backend):
        instance, _ = web(40)
        engine = Engine.open(instance, backend=backend)
        sources = sources_of(instance, 8)
        reference = {
            query: (engine.query_batch(query, sources), sources)
            for query in self.QUERIES
        }
        self._hammer(engine, reference)
        # Every request was tallied exactly once: 5 warm-up calls plus
        # threads x rounds hammered calls, none lost to racing increments.
        assert engine.stats.batch_evaluations == len(self.QUERIES) + 8 * 12

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_shared_sharded_engine_under_thread_load(self, backend):
        instance, _ = web(40)
        engine = ShardedEngine.open(
            instance, shards=3, backend=backend, concurrency=2
        )
        try:
            sources = sources_of(instance, 8)
            reference = {
                query: (engine.query_batch(query, sources), sources)
                for query in self.QUERIES
            }
            self._hammer(engine, reference, threads=6, rounds=8)
            assert engine.stats.batch_evaluations == len(self.QUERIES) + 6 * 8
        finally:
            engine.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_mutation_concurrent_with_queries_is_safe(self, backend):
        # Regression (review repro): add_edge during an in-flight run used
        # to crash the query thread (numpy gathered edge arrays holding
        # freshly interned node ids beyond the run's node count).  In-place
        # mutation now drains in-flight executor runs first.
        instance, _ = web(400)
        engine = Engine.open(instance, backend=backend)
        sources = sources_of(instance, 12)
        stop = threading.Event()
        errors: "list[BaseException]" = []

        def querier():
            try:
                while not stop.is_set():
                    engine.query_batch("(a + b + c)*", sources)
            except BaseException as error:
                errors.append(error)

        pause = threading.Event()  # never set: .wait() is a sub-ms sleep

        def mutator():
            # Spread the edits across ~0.2s of query activity so some land
            # mid-run (a back-to-back blast tends to fall between runs).
            try:
                for index in range(150):
                    engine.add_edge(f"mut{index}", "a", sources[index % 12])
                    pause.wait(0.0005)
                for index in range(150):
                    engine.remove_edge(f"mut{index}", "a", sources[index % 12])
                    pause.wait(0.0005)
            except BaseException as error:
                errors.append(error)
            finally:
                stop.set()

        threads = [threading.Thread(target=querier) for _ in range(3)]
        threads.append(threading.Thread(target=mutator))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # The edit script is symmetric, so the final answers are clean.
        reference = Engine.open(instance.copy(), backend=backend)
        assert engine.query_batch("a (b + c)*", sources) == reference.query_batch(
            "a (b + c)*", sources
        )

    def test_query_snapshot_survives_concurrent_rebuild(self):
        # Query paths capture (table, graph) as one pair: a refresh in
        # another thread that swaps the engine's graph (here simulated
        # inline via an out-of-band edit) must not tear a query that is
        # already past compilation into mixing old ids with a new graph.
        from repro.engine import run_batch

        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)
        compiled, graph = engine._compiled_on("a b")
        instance.remove_edge("u", "a", "v")  # out-of-band: full rebuild due
        instance.add_edge("u", "c", "v")
        assert engine.refresh() is True
        assert engine.graph is not graph
        # The captured pair still serves a consistent pre-rebuild answer.
        run = run_batch(graph, compiled, [graph.node_id("u")])
        assert graph.oids_of(run.answers[0]) == {"w"}

    @pytest.mark.skipif(not numpy_available(), reason="numpy cache under test")
    def test_stale_edge_arrays_not_cached_after_mid_build_mutation(
        self, monkeypatch
    ):
        # ABA regression: reader A starts lowering a label's edge arrays at
        # version v; a mutation bumps the version AND another reader re-lowers
        # the cache for the new version before A stores.  A's stale arrays
        # must not be readmitted just because the live version matches the
        # cache's again.
        import repro.engine.csr as csr_mod
        from repro.engine import CompiledGraph

        graph = CompiledGraph.from_instance(Instance([("u", "a", "v")]))
        label = graph.label_id("a")
        original = csr_mod.LabelEdges.__init__
        fired = []

        def hooked(edges_self, src, dst):
            if not fired:
                fired.append(True)
                graph.add_edge("u", "a", "w")  # version bump mid-build
                graph.numpy_label_edges(label)  # reader B: reset + recache
            original(edges_self, src, dst)

        monkeypatch.setattr(csr_mod.LabelEdges, "__init__", hooked)
        graph.numpy_label_edges(label)  # reader A: must not poison the cache
        monkeypatch.setattr(csr_mod.LabelEdges, "__init__", original)
        cached = graph.numpy_label_edges(label)
        assert graph.node_id("w") in cached.dst.tolist()

    def test_compile_cache_safe_under_concurrent_compiles(self):
        # Many distinct queries from many threads: the LRU mutates heavily.
        instance, _ = web(20)
        engine = Engine.open(instance, cache_capacity=4)
        queries = ["a", "a b", "a b c", "b*", "c b a", "(a + b)*"]
        [source] = sources_of(instance, 1)
        expected = {query: engine.answer_set(query, source) for query in queries}
        errors: "list[BaseException]" = []

        def worker(offset: int) -> None:
            try:
                for index in range(18):
                    query = queries[(offset + index) % len(queries)]
                    assert engine.answer_set(query, source) == expected[query]
            except BaseException as error:
                errors.append(error)

        workers = [
            threading.Thread(target=worker, args=(index,)) for index in range(6)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        assert not errors, errors


# ---------------------------------------------------------------------------
# Streaming: submit_stream / AnswerStream.
# ---------------------------------------------------------------------------
class TestStreaming:
    @pytest.mark.parametrize("shards", [None, 3])
    def test_streamed_answers_equal_batch_answers(self, shards):
        instance, _ = web(40)
        if shards is None:
            engine = Engine.open(instance)
        else:
            engine = ShardedEngine.open(instance, shards=shards)
        sources = sources_of(instance, 4)
        expected = engine.query_batch("a (b + c)*", sources)

        async def scenario():
            async with engine.as_server(max_delay=0.005) as server:
                streams = {
                    source: server.submit_stream(QueryRequest(query="a (b + c)*", sources=(source,)))
                    for source in sources
                }
                collected = {}
                for source, stream in streams.items():
                    collected[source] = [answer async for answer in stream]
                results = {
                    source: await stream.result()
                    for source, stream in streams.items()
                }
                return collected, results

        collected, results = asyncio.run(scenario())
        for source in sources:
            # Exactly-once: no duplicates in the incremental feed.
            assert len(collected[source]) == len(set(collected[source]))
            assert set(collected[source]) == {
                str(oid) for oid in expected[source]
            }
            # The resolved set is identical to submit()'s contract.
            assert results[source] == expected[source]

    def test_streams_coalesce_with_plain_requests(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        [one, two] = sources_of(instance, 2)

        async def scenario():
            async with engine.as_server(max_delay=0.01) as server:
                stream = server.submit_stream(QueryRequest(query="a (b + c)*", sources=(one,)))
                plain = server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(two,)))
                streamed = [answer async for answer in stream]
                return streamed, await plain, server.stats

        streamed, plain, stats = asyncio.run(scenario())
        # One shared evaluation served both request kinds.
        assert engine.stats.batch_evaluations == 1
        assert stats.streamed == 1
        assert stats.submitted == 2
        assert stats.served == 2
        assert plain == engine.query_batch("a (b + c)*", [two])[two]
        assert set(streamed) == {
            str(oid) for oid in engine.query_batch("a (b + c)*", [one])[one]
        }

    def test_empty_answer_set_completes_stream(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                stream = server.submit_stream(QueryRequest(query="b b", sources=("u",)))
                streamed = [answer async for answer in stream]
                return streamed, await stream.result()

        streamed, answers = asyncio.run(scenario())
        assert streamed == []
        assert answers == set()

    def test_stream_error_raises_in_iterator_and_result(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        class Boom(RuntimeError):
            pass

        def explode(*args, **kwargs):
            raise Boom("evaluation failed")

        engine.query_batch_streaming = explode

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                stream = server.submit_stream(QueryRequest(query="a", sources=("u",)))
                with pytest.raises(Boom):
                    async for _ in stream:
                        pass
                with pytest.raises(Boom):
                    await stream.result()
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.failed == 1
        assert stats.submitted == stats.served + stats.failed

    def test_stream_degrades_without_streaming_engine(self):
        # An engine exposing only query_batch still serves streams: every
        # answer arrives at completion, through the same iterator.
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)
        expected = engine.query_batch("a (b + c)*", [source])[source]

        class BatchOnly:
            def __init__(self, inner):
                self._inner = inner
                self.metrics = inner.metrics

            def admission(self, query):
                return self._inner.admission(query)

            def query_batch(self, query, sources):
                return self._inner.query_batch(query, sources)

        async def scenario():
            async with QueryServer(
                BatchOnly(engine), max_delay=0.001
            ) as server:
                stream = server.submit_stream(QueryRequest(query="a (b + c)*", sources=(source,)))
                streamed = [answer async for answer in stream]
                return streamed, await stream.result()

        streamed, answers = asyncio.run(scenario())
        assert answers == expected
        assert set(streamed) == {str(oid) for oid in expected}

    def test_first_answer_histogram_observed(self):
        from repro.engine import set_telemetry_enabled

        previous = set_telemetry_enabled(True)
        try:
            self._first_answer_scenario()
        finally:
            set_telemetry_enabled(previous)

    def _first_answer_scenario(self):
        instance, _ = web(25)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                stream = server.submit_stream(QueryRequest(query="a (b + c)*", sources=(source,)))
                async for _ in stream:
                    pass
                await stream.result()
                return server.metrics.registry.snapshot()

        snapshot = asyncio.run(scenario())
        hist = snapshot["serving_first_answer_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] > 0.0


# ---------------------------------------------------------------------------
# Admission accounting regressions (the three bugfix sweeps of PR 7).
# ---------------------------------------------------------------------------
class TestAccountingRegressions:
    def test_submit_many_duplicate_sources_exact_accounting(self):
        # Regression: duplicates used to admit one request (and register
        # one future) per occurrence, then collapse via dict(zip(...)) —
        # submitted counted phantom requests no caller could observe.
        instance, _ = web(20)
        engine = Engine.open(instance)
        [one, two] = sources_of(instance, 2)
        sources = [one, two, one, one, two]

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                answers = await server.submit_many(QueryRequest(query="a (b + c)*", sources=tuple(sources)))
                return answers, server.stats

        answers, stats = asyncio.run(scenario())
        assert set(answers) == {one, two}
        assert stats.submitted == 2  # distinct sources, not occurrences
        assert stats.served == 2
        assert stats.failed == 0
        assert stats.submitted == stats.served + stats.failed
        assert answers == engine.query_batch("a (b + c)*", [one, two])

    def test_duplicate_source_requests_advance_size_trigger(self):
        # Regression: the size trigger counted distinct sources while the
        # stats counted futures — a bucket of N requests on one source
        # never size-flushed.  The policy unit is now requests everywhere.
        instance, _ = web(20)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)

        async def scenario():
            async with engine.as_server(max_batch=3, max_delay=30.0) as server:
                futures = [
                    server.submit_nowait(QueryRequest(query="a b", sources=(source,))) for _ in range(3)
                ]
                # The third request hit max_batch: flushed by size, no timer.
                assert server.stats.size_flushes == 1
                await asyncio.gather(*futures)
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.size_flushes == 1
        assert stats.batches == 1
        assert stats.coalesced == 3
        assert stats.max_batch_size == 3  # same unit as the trigger
        assert stats.submitted == stats.served + stats.failed == 3

    def test_merged_request_rides_in_flight_batch(self):
        instance, _ = web(25)
        engine = Engine.open(instance)
        [one, two] = sources_of(instance, 2)

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                # max_delay=0 flushes immediately: the first request's batch
                # is in flight when the second (same key, same source)
                # arrives, so it merges instead of opening a new bucket.
                first = server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(one,)))
                merged = server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(one,)))
                other = server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(two,)))
                results = await asyncio.gather(first, merged, other)
                return results, server.stats

        (first, merged, other), stats = asyncio.run(scenario())
        assert first == merged
        assert stats.merged == 1
        assert stats.batches == 2  # the merged request opened no batch
        assert stats.submitted == stats.served + stats.failed == 3
        assert engine.stats.batch_evaluations == 2

    def test_streams_never_merge_into_in_flight_batches(self):
        # A stream arriving after its key flushed must re-evaluate: the
        # rounds it would have streamed already happened.
        instance, _ = web(25)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)
        expected = engine.query_batch("a (b + c)*", [source])[source]

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                plain = server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(source,)))
                stream = server.submit_stream(QueryRequest(query="a (b + c)*", sources=(source,)))
                streamed = [answer async for answer in stream]
                return await plain, streamed, server.stats

        plain, streamed, stats = asyncio.run(scenario())
        assert plain == expected
        assert set(streamed) == {str(oid) for oid in expected}
        assert stats.merged == 0
        assert stats.batches == 2


# ---------------------------------------------------------------------------
# Page + stream modifiers on the line protocol.
# ---------------------------------------------------------------------------
class TestPageProtocol:
    QUERY = "a (b + c)*"

    def _server(self, instance, engine, **policy):
        policy.setdefault("max_delay", 0.002)
        return engine.as_server(**policy)

    def test_pages_concatenate_to_the_full_sorted_set(self):
        instance, _ = web(40)
        engine = Engine.open(instance)
        # Pick the richest source so the answer set really paginates.
        candidates = sources_of(instance, 20)
        reference = engine.query_batch(self.QUERY, candidates)
        source = max(candidates, key=lambda oid: len(reference[oid]))
        expected = sorted(str(oid) for oid in reference[source])
        assert len(expected) > 5  # the workload must actually paginate

        async def scenario():
            async with self._server(instance, engine) as server:
                pages, cursor, hops = [], None, 0
                while True:
                    suffix = f" CURSOR {cursor}" if cursor else ""
                    response = await respond_line(
                        server,
                        f"p{hops}\t{source}\t{self.QUERY}\tLIMIT 3{suffix}",
                    )
                    fields = response.split("\t")
                    assert not fields[1].startswith("error:"), response
                    pages.extend(fields[1].split())
                    hops += 1
                    if len(fields) == 3:
                        assert fields[2].startswith("CURSOR ")
                        cursor = fields[2][len("CURSOR "):]
                    else:
                        return pages, hops

        pages, hops = asyncio.run(scenario())
        assert pages == expected  # sorted order, nothing lost or duplicated
        assert hops == -(-len(expected) // 3)  # ceil(n / page size)

    def test_last_page_has_no_cursor_and_short_page_is_exact(self):
        instance = Instance([("u", "a", "v"), ("u", "a", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with self._server(instance, engine) as server:
                return await respond_line(server, f"r\tu\ta\tLIMIT 10")

        response = asyncio.run(scenario())
        assert response == "r\tv w"  # fits one page: no CURSOR field

    def test_malformed_limit_modifiers_answer_errors(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with self._server(instance, engine) as server:
                return [
                    await respond_line(server, f"r1\tu\ta\tLIMIT"),
                    await respond_line(server, f"r2\tu\ta\tLIMIT zero"),
                    await respond_line(server, f"r3\tu\ta\tLIMIT 0"),
                    await respond_line(server, f"r4\tu\ta\tLIMIT 2 KURSOR x"),
                    await respond_line(server, f"r5\tu\ta\tPAGES 2"),
                ]

        responses = asyncio.run(scenario())
        for response in responses:
            ident, body = response.split("\t", 1)
            assert body.startswith("error:"), response

    def test_invalid_cursor_answers_error_not_crash(self):
        instance = Instance([("u", "a", "v"), ("u", "a", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with self._server(instance, engine) as server:
                garbage = await respond_line(
                    server, "r1\tu\ta\tLIMIT 1 CURSOR :::not-base64:::"
                )
                # A well-formed token minted for a DIFFERENT (query, source)
                # must be rejected too: mint one for source u, replay it
                # against source w... which requires a real first page.
                first = await respond_line(server, "r2\tu\ta\tLIMIT 1")
                token = first.split("\t")[2][len("CURSOR "):]
                replayed = await respond_line(
                    server, f"r3\tw\ta\tLIMIT 1 CURSOR {token}"
                )
                mismatched = await respond_line(
                    server, f"r4\tu\ta a\tLIMIT 1 CURSOR {token}"
                )
                return garbage, replayed, mismatched

        garbage, replayed, mismatched = asyncio.run(scenario())
        assert "error:" in garbage and "cursor" in garbage
        assert "error:" in replayed and "cursor" in replayed
        assert "error:" in mismatched and "cursor" in mismatched

    def test_stream_modifier_emits_chunks_then_full_response(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)
        expected = {
            str(oid) for oid in engine.query_batch(self.QUERY, [source])[source]
        }

        async def scenario():
            async with self._server(instance, engine) as server:
                chunks = []
                response = await respond_line(
                    server, f"s\t{source}\t{self.QUERY}\tSTREAM", chunks.append
                )
                return chunks, response

        chunks, response = asyncio.run(scenario())
        assert response == f"s\t{' '.join(sorted(expected))}"
        parsed = [chunk.split("\t") for chunk in chunks]
        assert all(fields[:2] == ["s", "+"] for fields in parsed)
        assert {fields[2] for fields in parsed} == expected
        assert len(parsed) == len(expected)  # exactly once each

    def test_stream_modifier_without_emit_degrades_to_full_response(self):
        # Ordered batch fronts (serve_request_lines) have no partial
        # channel: STREAM answers like a plain request.
        instance = Instance([("u", "a", "v"), ("u", "a", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with self._server(instance, engine) as server:
                return await serve_request_lines(server, ["r\tu\ta\tSTREAM"])

        [response] = asyncio.run(scenario())
        assert response == "r\tv w"

    def test_stream_over_tcp_interleaves_chunks(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)
        expected = {
            str(oid) for oid in engine.query_batch(self.QUERY, [source])[source]
        }

        async def scenario():
            async with self._server(instance, engine) as server:
                listener = await serve_tcp(server, "127.0.0.1", 0)
                port = listener.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(f"s\t{source}\t{self.QUERY}\tSTREAM\n".encode())
                await writer.drain()
                writer.write_eof()
                payload = (await reader.read()).decode("utf-8")
                writer.close()
                await writer.wait_closed()
                listener.close()
                await listener.wait_closed()
                return payload

        lines = asyncio.run(scenario()).splitlines()
        chunks = [line for line in lines if line.split("\t")[1:2] == ["+"]]
        finals = [line for line in lines if line.split("\t")[1:2] != ["+"]]
        assert {chunk.split("\t")[2] for chunk in chunks} == expected
        assert finals == [f"s\t{' '.join(sorted(expected))}"]

    def test_mid_stream_disconnect_leaves_server_healthy(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        [source] = sources_of(instance, 1)
        expected = engine.query_batch(self.QUERY, [source])[source]

        async def scenario():
            async with self._server(instance, engine) as server:
                listener = await serve_tcp(server, "127.0.0.1", 0)
                port = listener.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(f"s\t{source}\t{self.QUERY}\tSTREAM\n".encode())
                await writer.drain()
                # Hang up without reading anything; the serving task must
                # finish the request (accounting stays exact) instead of
                # dying on the dead transport.
                writer.close()
                await writer.wait_closed()
                # The same server keeps serving new connections.
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(f"ok\t{source}\t{self.QUERY}\n".encode())
                await writer.drain()
                writer.write_eof()
                payload = (await reader.read()).decode("utf-8")
                writer.close()
                await writer.wait_closed()
                listener.close()
                await listener.wait_closed()
                return payload, server.stats

        payload, stats = asyncio.run(scenario())
        answered = dict(
            line.split("\t", 1)
            for line in payload.splitlines()
            if "\t+\t" not in line
        )
        assert set(answered["ok"].split()) == {str(oid) for oid in expected}
        assert stats.submitted == stats.served + stats.failed
        assert stats.failed == 0


# ---------------------------------------------------------------------------
# Conjunctive queries through the admission queue and the wire protocol.
# ---------------------------------------------------------------------------
class TestConjunctiveServing:
    CRPQ = "MATCH x -[a]-> y, y -[(b + c)*]-> z RETURN x, z"

    def test_submit_conjunctive_matches_engine(self):
        instance, _ = web(40)
        engine = Engine.open(instance)
        expected = engine.query_conjunctive(self.CRPQ)

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                result = await server.submit_conjunctive(self.CRPQ)
                return result, server.stats

        result, stats = asyncio.run(scenario())
        assert result.rows == expected.rows
        assert result.variables == expected.variables
        assert (stats.crpq_submitted, stats.crpq_served) == (1, 1)
        # Per-atom requests flow through the ordinary accounting.
        assert stats.submitted == stats.served + stats.failed
        assert stats.failed == 0

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_sharded_served_matches_direct(self, backend):
        instance, _ = web(40)
        direct = Engine.open(instance).query_conjunctive(self.CRPQ).rows
        engine = ShardedEngine.open(instance, shards=3, backend=backend)

        async def scenario():
            async with engine.as_server(max_delay=0.002, concurrency=2) as server:
                return await server.submit_conjunctive(self.CRPQ)

        try:
            assert asyncio.run(scenario()).rows == direct
        finally:
            engine.close()

    def test_submit_routes_conjunctive_requests(self):
        from repro.engine import ConjunctiveResult
        from repro.engine.request import CRPQRequest, QueryRequest

        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                via_submit = await server.submit(
                    QueryRequest(query="MATCH x -[a b]-> y RETURN y")
                )
                via_request = await server.submit(
                    CRPQRequest(query="MATCH x -[a b]-> y RETURN y", source="u")
                )
                return via_submit, via_request

        via_submit, via_request = asyncio.run(scenario())
        assert isinstance(via_submit, ConjunctiveResult)
        assert via_submit.rows == (("w",),)
        assert via_request.rows == (("w",),)

    def test_crpq_atom_coalesces_with_scalar_traffic(self):
        # The satellite contract: a CRPQ atom gets the admission key an
        # identical scalar request gets, so the two share one batch.  The
        # scalar request opens the 'a' bucket (max_delay far away); the
        # CRPQ's only atom keys 'a' too and closes it via the size flush.
        from repro.engine.request import QueryRequest

        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_batch=2, max_delay=30.0) as server:
                scalar = server.submit_nowait(
                    QueryRequest(query="a", sources=("u",))
                )
                crpq = await server.submit_conjunctive(
                    "MATCH x -[a]-> y WHERE x = u RETURN y"
                )
                return await scalar, crpq, server.stats

        scalar, crpq, stats = asyncio.run(scenario())
        assert scalar == {"v"}
        assert crpq.rows == (("v",),)
        assert stats.batches == 1  # ONE shared flush for both
        assert stats.coalesced == 2
        assert stats.size_flushes == 1
        assert engine.stats.batch_evaluations == 1

    def test_conjunctive_rejected_where_it_cannot_resolve(self):
        from repro.engine.request import QueryRequest

        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)
        request = QueryRequest(query="MATCH x -[a]-> y RETURN y")

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                with pytest.raises(ReproError, match="submit_conjunctive"):
                    server.submit_nowait(request)
                with pytest.raises(ReproError, match="cannot stream"):
                    server.submit_stream(request)
                with pytest.raises(ReproError, match="conjunctive"):
                    await server.submit_many(request)

        asyncio.run(scenario())

    def test_v1_crpq_lines(self):
        instance = Instance(
            [("u", "a", "v"), ("u", "a", "w"), ("v", "b", "t")]
        )
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                unbound = await respond_line(
                    server, "1\t-\tMATCH x -[a]-> y RETURN x, y"
                )
                bound = await respond_line(
                    server, "2\tu\tMATCH x -[a b]-> y RETURN y"
                )
                return unbound, bound, server.stats

        unbound, bound, stats = asyncio.run(scenario())
        assert unbound == "1\tu,v u,w"  # '-' leaves every variable free
        assert bound == "2\tt"  # the source column binds the first variable
        assert stats.submitted == stats.served + stats.failed
        assert stats.failed == 0

    def test_v2_lines_scalar_and_crpq(self):
        import json

        instance = Instance([("u", "a", "v"), ("v", "b", "w")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                scalar = await respond_line(
                    server,
                    "V2\t" + json.dumps(
                        {"id": "s1", "query": "a b", "source": "u"}
                    ),
                )
                crpq = await respond_line(
                    server,
                    "V2\t" + json.dumps(
                        {
                            "id": "c1",
                            "crpq": "MATCH x -[a]-> y, y -[b]-> z RETURN x, z",
                        }
                    ),
                )
                return scalar, crpq

        scalar, crpq = asyncio.run(scenario())
        assert scalar == "s1\tw"
        assert crpq == "c1\tu,w"

    def test_v2_validation_errors(self):
        import json

        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                payloads = [
                    "not json at all",
                    json.dumps({"query": "a"}),  # missing id
                    json.dumps({"id": "x"}),  # neither query nor crpq
                    json.dumps({"id": "x", "query": "a", "crpq": "MATCH x -[a]-> y"}),
                    json.dumps({"id": "x", "crpq": "a b"}),  # not MATCH syntax
                    json.dumps({"id": "x", "query": "a", "bogus": 1}),
                    json.dumps({"id": "x", "query": "a", "stream": "yes"}),
                    json.dumps(
                        {"id": "x", "query": "a", "source": "u", "sources": ["u"]}
                    ),
                ]
                return [await respond_line(server, f"V2\t{p}") for p in payloads]

        responses = asyncio.run(scenario())
        for response in responses:
            assert "\terror: bad v2 request" in response, response

    def test_crpq_pages_concatenate_and_cursor_is_bound(self):
        instance = Instance(
            [("u", "a", "v"), ("u", "a", "w"), ("s", "a", "t")]
        )
        engine = Engine.open(instance)
        crpq = "MATCH x -[a]-> y RETURN x, y"
        expected = [
            ",".join(map(str, row))
            for row in engine.query_conjunctive(crpq).rows
        ]

        async def scenario():
            async with engine.as_server(max_delay=0.002) as server:
                rows, cursor, hops = [], None, 0
                while True:
                    suffix = f" CURSOR {cursor}" if cursor else ""
                    response = await respond_line(
                        server, f"p{hops}\t-\t{crpq}\tLIMIT 2{suffix}"
                    )
                    fields = response.split("\t")
                    assert not fields[1].startswith("error:"), response
                    rows.extend(fields[1].split())
                    hops += 1
                    if len(fields) == 3:
                        cursor = fields[2][len("CURSOR "):]
                    else:
                        break
                # A scalar request must not accept a CRPQ cursor.
                stolen = await respond_line(
                    server, f"x\tu\ta\tLIMIT 2 CURSOR {cursor or 'gone'}"
                )
                return rows, hops, stolen

        rows, hops, stolen = asyncio.run(scenario())
        assert rows == expected
        assert hops == 2  # 3 rows, page size 2
        assert "error: invalid cursor" in stolen

    def test_crpq_stream_modifier_is_rejected(self):
        instance = Instance([("u", "a", "v")])
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                return await respond_line(
                    server, "1\t-\tMATCH x -[a]-> y RETURN y\tSTREAM"
                )

        response = asyncio.run(scenario())
        assert response.startswith("1\terror:")
        assert "stream" in response
