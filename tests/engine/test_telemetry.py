"""Tests for the telemetry substrate (``repro.engine.telemetry``).

Covers the metrics registry (counter/gauge/histogram semantics, percentile
math against a sorted-list reference, Prometheus and text rendering), the
tracing layer (span parentage, ring-buffer and per-trace bounds, the
disabled-mode NULL_SPAN fast path), instrumentation through all three
session kinds (Engine, ShardedEngine, QueryServer) under both executor
backends, the line protocol's control verbs, and the HTTP export surface.
``scripts/check.sh obs`` runs this file in both numpy arms.
"""

import asyncio
import json
import urllib.request

import pytest

from repro.engine import (
    NULL_SPAN,
    Engine,
    Histogram,
    MetricsRegistry,
    QueryRequest,
    ShardedEngine,
    Telemetry,
    TelemetryHTTPServer,
    Tracer,
    numpy_available,
    render_text,
    set_telemetry_enabled,
    telemetry_enabled,
)
from repro.engine.serving import handle_control
from repro.engine.telemetry import Trace
from repro.exceptions import ReproError
from repro.graph import figure2_graph, web_like_graph

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


@pytest.fixture
def telemetry_on():
    """Force capture on for the test, restoring the prior state after."""
    previous = set_telemetry_enabled(True)
    yield
    set_telemetry_enabled(previous)


@pytest.fixture
def telemetry_off():
    previous = set_telemetry_enabled(False)
    yield
    set_telemetry_enabled(previous)


def web(nodes=30, seed=7):
    instance, _ = web_like_graph(nodes, ["a", "b", "c"], seed=seed)
    return instance


# ---------------------------------------------------------------------------
# Metrics registry.
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", "total", labelnames=("backend",))
        assert registry.counter("requests") is counter
        counter.inc(1, "numpy")
        counter.inc(2, "numpy")
        counter.inc(5, "python")
        assert counter.value("numpy") == 3
        assert counter.value("python") == 5
        assert registry.snapshot()["requests"] == {"numpy": 3, "python": 5}

    def test_counter_label_arity_enforced(self):
        counter = MetricsRegistry().counter("c", "", labelnames=("x",))
        with pytest.raises(ReproError, match="wants labels"):
            counter.inc(1)

    def test_gauge_reads_callback_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge("level", "", lambda: box["value"])
        assert registry.snapshot()["level"] == 1
        box["value"] = 7
        assert registry.snapshot()["level"] == 7

    def test_gauge_last_registration_wins(self):
        # A new QueryServer over the same engine re-registers the serving
        # gauges; the snapshot must follow the newest callback.
        registry = MetricsRegistry()
        registry.gauge("served", "", lambda: 1)
        registry.gauge("served", "", lambda: 2)
        assert registry.snapshot()["served"] == 2
        assert len(registry) == 1

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "")
        with pytest.raises(ReproError, match="already a counter"):
            registry.gauge("x", "", lambda: 0)
        with pytest.raises(ReproError, match="already a counter"):
            registry.histogram("x", "")
        registry.histogram("h", "")
        with pytest.raises(ReproError, match="already a histogram"):
            registry.counter("h", "")

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError, match="ascending"):
            Histogram("h", "", buckets=(1.0, 0.5))


class TestHistogramPercentiles:
    def _reference(self, values, quantile):
        """Nearest-rank reference: the value at rank ceil(q*n)."""
        import math

        ordered = sorted(values)
        rank = max(1, math.ceil(quantile * len(ordered)))
        return ordered[rank - 1]

    @pytest.mark.parametrize("quantile", [0.5, 0.95, 0.99])
    def test_interpolation_close_to_sorted_reference(self, telemetry_on, quantile):
        import random

        rng = random.Random(42)
        buckets = tuple(0.001 * (2 ** i) for i in range(14))
        hist = Histogram("h", "", buckets=buckets)
        values = [rng.uniform(0.0005, 4.0) for _ in range(500)]
        for value in values:
            hist.observe(value)
        estimate = hist.percentile(quantile)
        reference = self._reference(values, quantile)
        # Bucket interpolation is an estimate: require it to land within
        # one bucket's width of the true rank value.
        position = min(
            range(len(buckets)), key=lambda i: abs(buckets[i] - reference)
        )
        width = buckets[min(position + 1, len(buckets) - 1)] - buckets[max(position - 1, 0)]
        assert abs(estimate - reference) <= width
        # And never outside the observed range.
        assert min(values) <= estimate <= max(values)

    def test_exact_bucket_math(self, telemetry_on):
        # 50 in (0, 0.001], 40 in (0.001, 0.25], 10 in (0.25, 0.5]:
        # p50 sits exactly at the first bucket's upper bound.
        hist = Histogram("h", "", buckets=(0.001, 0.25, 0.5))
        for _ in range(50):
            hist.observe(0.0005)
        for _ in range(40):
            hist.observe(0.2)
        for _ in range(10):
            hist.observe(0.4)
        assert hist.percentile(0.50) == pytest.approx(0.001)
        assert hist.percentile(0.95) == pytest.approx(0.375)
        # The raw interpolation says 0.475, but estimates are clamped to
        # the observed range and the largest observation was 0.4.
        assert hist.percentile(0.99) == pytest.approx(0.4)

    def test_overflow_bucket_interpolates_toward_max(self, telemetry_on):
        hist = Histogram("h", "", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)  # overflow
        assert hist.percentile(1.0) == pytest.approx(3.0)
        assert hist.percentile(0.99) <= 3.0

    def test_overflow_only_distribution_uses_observed_min(self, telemetry_on):
        # Every observation beyond the last bound: interpolation must run
        # within [min, max], not upward from the bucket bound 2.0 — a value
        # that was never observed (the old estimate for p50 here was 501.0,
        # i.e. 2.0 + 998 * 0.5).
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(10.0)
        hist.observe(1000.0)
        assert hist.percentile(0.0) == pytest.approx(10.0)
        assert hist.percentile(0.5) == pytest.approx(505.0)  # 10 + 990 * 0.5
        assert hist.percentile(1.0) == pytest.approx(1000.0)

    def test_overflow_only_single_value_exact_at_every_quantile(
        self, telemetry_on
    ):
        hist = Histogram("h", "", buckets=(1.0,))
        for _ in range(3):
            hist.observe(50.0)
        for quantile in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(quantile) == pytest.approx(50.0)

    def test_single_value_in_bounded_bucket_exact(self, telemetry_on):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(1.5)
        for quantile in (0.0, 0.5, 0.99, 1.0):
            assert hist.percentile(quantile) == pytest.approx(1.5)

    def test_empty_histogram_zero_at_every_quantile(self):
        # Pinned: no samples means 0.0 everywhere — never inf/nan and never
        # a bucket bound.
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        for quantile in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(quantile) == 0.0

    def test_empty_histogram_reports_zero(self):
        hist = Histogram("h", "")
        assert hist.percentile(0.99) == 0.0
        assert hist.summary() == {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_quantile_domain_checked(self):
        with pytest.raises(ReproError, match="quantile"):
            Histogram("h", "").percentile(1.5)

    def test_observe_noop_when_disabled(self, telemetry_off):
        hist = Histogram("h", "")
        hist.observe(0.1)
        assert hist.count == 0 and hist.sum == 0.0


class TestRendering:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("hits", "cache hits").inc(3)
        registry.gauge("depth", "queue depth", lambda: 2)
        registry.gauge(
            "runs", "per backend", lambda: {"numpy": 4}, labelnames=("backend",)
        )
        hist = registry.histogram("latency", "seconds", buckets=(0.1, 1.0))
        previous = set_telemetry_enabled(True)
        try:
            hist.observe(0.05)
            hist.observe(0.5)
        finally:
            set_telemetry_enabled(previous)
        return registry

    def test_prometheus_exposition_format(self):
        text = self._populated().render_prometheus()
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert "hits 3" in text
        assert "depth 2" in text
        assert 'runs{backend="numpy"} 4' in text
        assert "# TYPE latency histogram" in text
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1"} 2' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_count 2" in text
        assert text.endswith("\n")

    def test_render_text_stable_lines(self):
        lines = render_text(self._populated().snapshot())
        # Metric names come out sorted; histogram stat lines keep the fixed
        # count/sum/p50/p95/p99 order under their name.
        names = [
            "latency" if line.startswith("latency_")
            else line.split("{")[0].split(" ")[0]
            for line in lines
        ]
        assert names == sorted(names)
        assert "hits 3" in lines
        assert "runs{numpy} 4" in lines
        assert "latency_count 2" in lines
        assert any(line.startswith("latency_p99 ") for line in lines)


# ---------------------------------------------------------------------------
# Tracing.
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_parentage_via_context(self, telemetry_on):
        tele = Telemetry()
        with tele.span("root") as root:
            with tele.span("child") as child:
                grandchild = tele.span("grandchild")
                grandchild.end()
        spans = root.trace.spans
        assert [span.name for span in spans] == ["root", "child", "grandchild"]
        assert spans[0].parent_id is None
        assert spans[1].parent_id == spans[0].span_id
        assert spans[2].parent_id == spans[1].span_id

    def test_root_end_records_into_tracer(self, telemetry_on):
        tele = Telemetry()
        with tele.span("request"):
            pass
        trace = tele.tracer.last()
        assert trace is not None and trace.root.name == "request"
        assert tele.tracer.recorded == 1

    def test_span_under_crosses_threads(self, telemetry_on):
        import threading

        tele = Telemetry()
        with tele.span("batch") as batch:
            seen = []

            def worker():
                span = tele.span_under(batch, "local", shard=1)
                with tele.under(span):
                    inner = tele.span("nested")
                    inner.end()
                span.end()
                seen.append((span, inner))

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        span, inner = seen[0]
        assert span.parent_id == batch.span_id
        assert inner.parent_id == span.span_id
        assert span.trace is batch.trace

    def test_children_durations_sum_within_root(self, telemetry_on):
        tele = Telemetry()
        with tele.span("root") as root:
            for _ in range(3):
                with tele.span("step"):
                    sum(range(1000))
        children = [s for s in root.trace.spans if s.parent_id == root.span_id]
        assert sum(s.duration for s in children) <= root.duration + 1e-9

    def test_ring_buffer_bounded(self, telemetry_on):
        tracer = Tracer(capacity=4, slow_capacity=2)
        tele = Telemetry(tracer=tracer)
        for index in range(10):
            with tele.span("r", index=index):
                pass
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert [t.root.attributes["index"] for t in tracer.traces()] == [6, 7, 8, 9]
        assert len(tracer.slowest(100)) == 2

    def test_slow_log_keeps_worst_not_newest(self, telemetry_on):
        tracer = Tracer(capacity=2, slow_capacity=1)
        tele = Telemetry(tracer=tracer)
        slow = tele.span("slow")
        slow.start -= 10.0  # fake a 10s request
        slow.end()
        for _ in range(5):
            with tele.span("fast"):
                pass
        [worst] = tracer.slowest(1)
        assert worst.root.name == "slow"
        # Evicted from the ring but still reachable by id via the slow log.
        assert tracer.get(worst.trace_id) is worst

    def test_per_trace_span_cap(self, telemetry_on):
        from repro.engine.telemetry import Span

        tele = Telemetry()
        trace = Trace(tele.tracer, max_spans=8)
        root = Span(trace, "root", None)
        for _ in range(20):
            root.child("c").end()
        root.end()
        assert len(trace.spans) == trace.max_spans
        assert trace.dropped == 21 - trace.max_spans
        assert any("dropped" in line for line in trace.render())

    def test_render_tree_indents_children(self, telemetry_on):
        tele = Telemetry()
        with tele.span("root") as root:
            with tele.span("child", shard=0):
                pass
        lines = root.trace.render()
        assert lines[0].startswith(f"trace {root.trace.trace_id} (root,")
        assert lines[1].startswith("  root ")
        assert lines[2].startswith("    child ") and "{shard=0}" in lines[2]

    def test_exception_annotates_span(self, telemetry_on):
        tele = Telemetry()
        with pytest.raises(ValueError):
            with tele.span("boom") as span:
                raise ValueError("nope")
        assert "ValueError" in span.attributes["error"]
        assert span.duration is not None


class TestDisabledMode:
    def test_span_returns_null_singleton(self, telemetry_off):
        tele = Telemetry()
        first = tele.span("a")
        second = tele.span("b")
        assert first is NULL_SPAN and second is NULL_SPAN
        assert tele.span_under(NULL_SPAN, "c") is NULL_SPAN
        with tele.under(NULL_SPAN) as active:
            assert active is NULL_SPAN
        assert not NULL_SPAN  # falsy, so `if span:` guards stay cheap

    def test_null_span_is_inert(self, telemetry_off):
        with NULL_SPAN as span:
            assert span.set(x=1) is span
            assert span.child("c") is span
            assert span.event("e", 0.0, 0.0) is span
            assert span.end() == 0.0
        assert NULL_SPAN.attributes == {}

    def test_disabled_sessions_record_nothing(self, telemetry_off):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a b*", "o1")
        assert engine.metrics.tracer.recorded == 0
        snapshot = engine.telemetry()
        assert snapshot["telemetry_enabled"] == 0
        assert snapshot["engine_query_seconds"]["count"] == 0
        # The registry gauges still read live stats even while disabled.
        assert snapshot["engine_single_evaluations"] == 1

    def test_flag_roundtrip(self):
        previous = set_telemetry_enabled(False)
        try:
            assert telemetry_enabled() is False
            assert set_telemetry_enabled(True) is False
            assert telemetry_enabled() is True
        finally:
            set_telemetry_enabled(previous)


# ---------------------------------------------------------------------------
# Session instrumentation: Engine / ShardedEngine / QueryServer.
# ---------------------------------------------------------------------------
class TestSessionInstrumentation:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_engine_trace_shape(self, telemetry_on, backend):
        instance, _ = figure2_graph()
        engine = Engine.open(instance, backend=backend)
        engine.query("a b*", "o1")
        trace = engine.metrics.tracer.last()
        names = [span.name for span in trace.spans]
        assert names[0] == "engine.query"
        assert "engine.compile" in names and "engine.run" in names
        assert all(
            span.parent_id == trace.root.span_id for span in trace.spans[1:]
        )
        run = next(s for s in trace.spans if s.name == "engine.run")
        assert run.attributes["backend"] == backend

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_engine_histograms_fill(self, telemetry_on, backend):
        instance, _ = figure2_graph()
        engine = Engine.open(instance, backend=backend)
        engine.query_batch("a b*", ["o1", "o2"])
        engine.query("b", "o2")
        snapshot = engine.telemetry()
        assert snapshot["engine_query_seconds"]["count"] == 2
        assert snapshot["engine_run_seconds"]["count"] == 2
        assert snapshot["engine_compile_seconds"]["count"] == 2
        assert snapshot["engine_query_seconds"]["sum"] > 0

    def test_compile_span_marks_cache_hits(self, telemetry_on):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a b*", "o1")
        engine.query("a b*", "o2")
        compiles = [
            span
            for trace in engine.metrics.tracer.traces()
            for span in trace.spans
            if span.name == "engine.compile"
        ]
        assert [span.attributes["cached"] for span in compiles] == [False, True]

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_sharded_trace_has_superstep_tree(self, telemetry_on, backend):
        instance = web(30)
        sharded = ShardedEngine.open(instance, shards=3, backend=backend)
        source = sorted(instance.objects, key=repr)[0]
        sharded.query("a (b + c)*", source)
        trace = sharded.metrics.tracer.last()
        assert trace.root.name == "sharded.query"
        supersteps = [s for s in trace.spans if s.name == "sharded.superstep"]
        locals_ = [s for s in trace.spans if s.name == "sharded.local_fixpoint"]
        assert supersteps and locals_
        superstep_ids = {s.span_id for s in supersteps}
        assert all(s.parent_id in superstep_ids for s in locals_)
        assert sharded.stats.last_run.supersteps == len(supersteps)
        assert {s.attributes["shard"] for s in locals_} <= set(range(3))

    def test_sharded_concurrent_scheduler_joins_trace(self, telemetry_on):
        instance = web(30)
        sharded = ShardedEngine.open(instance, shards=3, concurrency=2)
        try:
            source = sorted(instance.objects, key=repr)[0]
            sharded.query("a (b + c)*", source)
            trace = sharded.metrics.tracer.last()
            locals_ = [s for s in trace.spans if s.name == "sharded.local_fixpoint"]
            assert locals_  # worker-thread spans landed in the loop's trace
        finally:
            sharded.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_server_trace_children_sum_within_total(self, telemetry_on, backend):
        instance = web(30)
        engine = Engine.open(instance, backend=backend)
        sources = sorted(instance.objects, key=repr)[:4]

        async def scenario():
            async with engine.as_server(max_batch=16, max_delay=0.005) as server:
                await server.submit_many(QueryRequest(query="a (b + c)*", sources=tuple(sources)))

        asyncio.run(scenario())
        trace = engine.metrics.tracer.last()
        assert trace.root.name == "serve.batch"
        children = [
            s for s in trace.spans if s.parent_id == trace.root.span_id
        ]
        names = [s.name for s in children]
        assert "admission_wait" in names
        assert "evaluate" in names and "fanout" in names
        assert sum(s.duration for s in children) <= trace.duration + 1e-9
        snapshot = engine.telemetry()
        assert snapshot["serving_request_seconds"]["count"] == len(sources)
        assert snapshot["serving_flush_seconds"]["count"] == 1

    def test_server_over_sharded_engine_nests_supersteps(self, telemetry_on):
        instance = web(30)
        sharded = ShardedEngine.open(instance, shards=2)
        source = sorted(instance.objects, key=repr)[0]

        async def scenario():
            async with sharded.as_server(max_delay=0.001) as server:
                await server.submit(QueryRequest(query="a (b + c)*", sources=(source,)))

        asyncio.run(scenario())
        trace = sharded.metrics.tracer.last()
        assert trace.root.name == "serve.batch"
        names = {span.name for span in trace.spans}
        # The pool thread re-activates the batch span, so the sharded
        # engine's own spans join the same trace.
        assert "sharded.query" in names and "sharded.superstep" in names


# ---------------------------------------------------------------------------
# Control verbs.
# ---------------------------------------------------------------------------
class TestControlVerbs:
    def _serve_and(self, verbs, telemetry_needed=True):
        instance = web(20)
        engine = Engine.open(instance)
        sources = sorted(instance.objects, key=repr)[:3]
        answers = {}

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                await server.submit_many(QueryRequest(query="a (b + c)*", sources=tuple(sources)))
                for verb in verbs:
                    answers[verb] = handle_control(server, verb)

        asyncio.run(scenario())
        return engine, answers

    def test_stats_returns_registry_snapshot(self, telemetry_on):
        engine, answers = self._serve_and(["!stats"])
        verb, payload = answers["!stats"].split("\t", 1)
        assert verb == "!stats"
        snapshot = json.loads(payload)
        assert snapshot["serving_submitted"] == 3
        assert snapshot["serving_served"] == 3
        assert snapshot["serving_failed"] == 0
        assert snapshot["engine_graph_builds"] == 1

    def test_slow_returns_span_breakdowns_that_sum(self, telemetry_on):
        engine, answers = self._serve_and(["!slow 5"])
        verb, payload = answers["!slow 5"].split("\t", 1)
        assert verb == "!slow"
        traces = json.loads(payload)
        assert traces
        for trace in traces:
            root = trace["spans"][0]
            children = [
                s for s in trace["spans"] if s["parent_id"] == root["span_id"]
            ]
            total = sum(s["duration_s"] for s in children)
            assert total <= trace["duration_s"] + 1e-9

    def test_trace_round_trips_by_id(self, telemetry_on):
        engine, answers = self._serve_and(["!stats"])
        recorded = engine.metrics.tracer.last()

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                return handle_control(server, f"!trace {recorded.trace_id}")

        reply = asyncio.run(scenario())
        verb, payload = reply.split("\t", 1)
        assert verb == "!trace"
        assert json.loads(payload)["trace_id"] == recorded.trace_id

    def test_error_replies(self, telemetry_on):
        engine, answers = self._serve_and(
            ["!trace", "!trace t999999", "!slow zero", "!bogus"]
        )
        assert answers["!trace"].startswith("!trace\terror: ")
        assert answers["!trace t999999"].startswith("!trace\terror: ")
        assert answers["!slow zero"].startswith("!slow\terror: ")
        assert "unknown control verb" in answers["!bogus"]

    def test_control_lines_served_inline(self, telemetry_on):
        from repro.engine.serving import respond_line

        instance, _ = figure2_graph()
        engine = Engine.open(instance)

        async def scenario():
            async with engine.as_server(max_delay=0.001) as server:
                request = await respond_line(server, "r1\to1\ta b*")
                stats = await respond_line(server, "!stats")
                return request, stats

        request, stats = asyncio.run(scenario())
        assert request == "r1\to2 o3"
        assert stats.startswith("!stats\t{")
        assert json.loads(stats.split("\t", 1)[1])["serving_served"] == 1


# ---------------------------------------------------------------------------
# Fuzz-adjacent invariant: admission arithmetic from the registry itself.
# ---------------------------------------------------------------------------
class TestAdmissionInvariant:
    def test_submitted_equals_served_plus_failed(self, telemetry_on):
        instance = web(25)
        engine = Engine.open(instance)
        sources = sorted(instance.objects, key=repr)[:5]

        async def scenario():
            async with engine.as_server(max_batch=4, max_delay=0.001) as server:
                good = [
                    server.submit_nowait(QueryRequest(query="a (b + c)*", sources=(source,)))
                    for source in sources
                ]
                # Parse errors fail fast at admission but still count as
                # submitted + failed.
                for source in sources[:2]:
                    with pytest.raises(Exception):
                        server.submit_nowait(QueryRequest(query="((", sources=(source,)))
                return await asyncio.gather(*good)

        asyncio.run(scenario())
        snapshot = engine.telemetry()
        assert (
            snapshot["serving_submitted"]
            == snapshot["serving_served"] + snapshot["serving_failed"]
        )
        assert snapshot["serving_failed"] == 2


# ---------------------------------------------------------------------------
# HTTP export.
# ---------------------------------------------------------------------------
class TestHTTPServer:
    def test_metrics_and_healthz(self, telemetry_on):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a b*", "o1")
        with TelemetryHTTPServer(engine.metrics) as http:
            host, port = http.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = response.read().decode("utf-8")
            assert "# TYPE engine_query_seconds histogram" in body
            assert "engine_graph_builds 1" in body
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            ) as response:
                assert response.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_scrape_sees_live_values(self, telemetry_on):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        with TelemetryHTTPServer(engine.metrics) as http:
            host, port = http.address

            def scrape():
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=5
                ) as response:
                    return response.read().decode("utf-8")

            assert "engine_single_evaluations 0" in scrape()
            engine.query("a b*", "o1")
            assert "engine_single_evaluations 1" in scrape()
