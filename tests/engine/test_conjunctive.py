"""Tests for conjunctive RPQs (``repro.engine.conjunctive``).

Parser surface (grammar, canonicalization, error reporting), cardinality
estimation over degree stats, join planning (greedy order, strategies,
acyclicity), the sans-io ``PlanExecution`` stepper, telemetry emitted by
``query_conjunctive``, and the differential arm: every backend's
``query_conjunctive`` — monolithic python/numpy and the sharded engine —
must return exactly the rows of the naive nested-loop reference, on
randomized graphs/queries and after interleaved edit scripts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _strategies import edit_scripts, regexes, small_instances
from repro.engine import Engine, ShardedEngine, numpy_available
from repro.engine.conjunctive import (
    Atom,
    ConjunctiveQuery,
    PlanExecution,
    is_crpq_text,
    nested_loop_rows,
    parse_crpq,
    plan_join,
)
from repro.engine.request import CRPQRequest, QueryRequest
from repro.exceptions import ReproError
from repro.graph import web_like_graph
from repro.optimize import DegreeStats, estimate_cardinality
from repro.regex import parse
from repro.regex.ast import Symbol

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


def web(nodes=30, seed=7, labels=("a", "b", "c")):
    instance, root = web_like_graph(nodes, list(labels), seed=seed)
    return instance, root


# ---------------------------------------------------------------------------
# Surface syntax.
# ---------------------------------------------------------------------------
class TestIsCrpqText:
    def test_detects_match_keyword(self):
        assert is_crpq_text("MATCH x -[a]-> y")
        assert is_crpq_text("  MATCH\n x -[a]-> y RETURN x")
        assert not is_crpq_text("a (b + c)*")
        assert not is_crpq_text("MATCHBOX b")  # a label, not the keyword


class TestParser:
    def test_single_atom_defaults(self):
        query = parse_crpq("MATCH x -[a b*]-> y")
        assert query.atoms == (Atom("x", parse("a b*"), "y"),)
        assert query.bindings == ()
        assert query.returns == ("x", "y")  # RETURN defaults to all vars

    def test_full_form(self):
        query = parse_crpq(
            "MATCH x -[a]-> y, y -[b + c]-> z WHERE x = n0 AND z = n4 RETURN y"
        )
        assert [atom.text() for atom in query.atoms] == [
            "x -[a]-> y",
            "y -[b + c]-> z",
        ]
        assert query.bindings == (("x", "n0"), ("z", "n4"))
        assert query.returns == ("y",)

    def test_where_accepts_comma_separators(self):
        query = parse_crpq("MATCH x -[a]-> y WHERE x = s, y = t RETURN x")
        assert query.bindings == (("x", "s"), ("y", "t"))

    def test_keywords_inside_expression_slot_are_labels(self):
        # WHERE/RETURN inside -[...]-> are ordinary regex labels, not clauses.
        query = parse_crpq("MATCH x -[WHERE RETURN]-> y")
        assert query.atoms[0].expression == parse("WHERE RETURN")
        assert query.returns == ("x", "y")

    def test_to_text_roundtrip(self):
        text = "MATCH x -[a (b + c)*]-> y, y -[b]-> z WHERE z = n2 RETURN x, z"
        query = parse_crpq(text)
        assert parse_crpq(query.to_text()) == query

    def test_queries_are_hashable_and_canonical(self):
        one = parse_crpq("MATCH x -[a]-> y WHERE x = s AND y = t")
        # Same bindings in the other order, plus a harmless duplicate.
        two = ConjunctiveQuery(
            atoms=one.atoms, bindings=(("y", "t"), ("x", "s"), ("x", "s"))
        )
        assert one == two
        assert hash(one) == hash(two)

    def test_with_source_binds_first_variable(self):
        query = parse_crpq("MATCH x -[a]-> y, y -[b]-> z RETURN z")
        assert query.with_source("root").bindings == (("x", "root"),)

    @pytest.mark.parametrize(
        ("text", "message"),
        [
            ("a b", "MATCH keyword"),
            ("MATCH x -[a-> y", "unterminated atom expression"),
            ("MATCH x a y", "malformed atom"),
            ("MATCH x -[a +]-> y", "bad expression in atom"),
            ("MATCH x -[a]-> y,", "empty atom"),
            ("MATCH x -[a]-> y RETURN x WHERE y = t", "misplaced RETURN"),
            ("MATCH x -[a]-> y WHERE q = t", "unknown variable 'q'"),
            ("MATCH x -[a]-> y RETURN q", "unknown variable 'q'"),
            ("MATCH x -[a]-> y WHERE x = s AND x = t", "bound to both"),
            ("MATCH x -[a]-> y WHERE x == s", "malformed WHERE condition"),
            ("MATCH x -[a]-> y RETURN x,", "malformed RETURN variable"),
        ],
    )
    def test_errors(self, text, message):
        with pytest.raises(ReproError, match=message):
            parse_crpq(text)

    def test_query_needs_an_atom(self):
        with pytest.raises(ReproError, match="at least one atom"):
            ConjunctiveQuery(atoms=())


# ---------------------------------------------------------------------------
# Cardinality estimation + degree stats.
# ---------------------------------------------------------------------------
class TestCardinality:
    STATS = DegreeStats(num_nodes=10, label_counts={"a": 20, "b": 4, "rare": 1})

    def test_symbol_is_label_count(self):
        assert estimate_cardinality(Symbol("a"), self.STATS) == 20.0
        assert estimate_cardinality(Symbol("rare"), self.STATS) == 1.0
        assert estimate_cardinality(Symbol("unknown"), self.STATS) == 0.0

    def test_union_adds_and_concat_composes(self):
        union = estimate_cardinality(parse("a + b"), self.STATS)
        assert union == 24.0
        concat = estimate_cardinality(parse("a b"), self.STATS)
        assert concat == pytest.approx(20 * 4 / 10)

    def test_star_grows_but_is_capped(self):
        star = estimate_cardinality(parse("a*"), self.STATS)
        assert star > estimate_cardinality(Symbol("a"), self.STATS)
        assert star <= self.STATS.num_nodes**2
        assert estimate_cardinality(parse("(a + b)* a*"), self.STATS) <= 100.0

    def test_degree_stats_track_live_edges(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        stats = engine.degree_stats()
        source, label, destination = next(iter(instance.edges()))
        engine.remove_edge(source, label, destination)
        after = engine.degree_stats()
        assert after.count(label) == stats.count(label) - 1
        assert after.num_edges == stats.num_edges - 1

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_degree_stats_match_monolithic(self, shards):
        instance, _ = web(24)
        mono = Engine.open(instance).degree_stats()
        engine = ShardedEngine.open(instance, shards=shards)
        try:
            sharded = engine.degree_stats()
        finally:
            engine.close()
        assert sharded.num_nodes == mono.num_nodes
        assert dict(sharded.label_counts) == dict(mono.label_counts)


# ---------------------------------------------------------------------------
# Join planning.
# ---------------------------------------------------------------------------
class TestPlanner:
    STATS = DegreeStats(
        num_nodes=100, label_counts={"rare": 2, "common": 900}
    )

    def chain(self):
        # The selective atom comes first syntactically AND is the right
        # greedy seed: starting from rare's two pairs lets the common atom
        # run source-bound instead of from the whole domain.
        return parse_crpq("MATCH x -[rare]-> y, y -[common]-> z RETURN x, z")

    def test_optimized_starts_with_the_selective_atom(self):
        plan = plan_join(self.chain(), self.STATS)
        assert plan.order[0].atom.text() == "x -[rare]-> y"
        assert plan.strategy == "optimized"

    def test_declared_keeps_syntactic_order(self):
        query = parse_crpq("MATCH x -[common]-> y, y -[rare]-> z RETURN x, z")
        plan = plan_join(query, self.STATS, strategy="declared")
        assert [p.atom.text() for p in plan.order] == [
            "x -[common]-> y",
            "y -[rare]-> z",
        ]

    def test_worst_costs_more_than_optimized(self):
        best = plan_join(self.chain(), self.STATS)
        worst = plan_join(self.chain(), self.STATS, strategy="worst")
        assert worst.order[0].atom.text() == "y -[common]-> z"
        # Running the common atom first pays its full domain scan before
        # any selection; the greedy order is an order of magnitude cheaper.
        assert worst.estimated_cost > 10 * best.estimated_cost

    def test_bound_source_prefers_seeded_atom(self):
        query = parse_crpq(
            "MATCH x -[common]-> y, y -[common]-> z WHERE x = n0 RETURN z"
        )
        plan = plan_join(query, self.STATS)
        # With x bound, evaluating x's atom first costs pairs/n per row;
        # the unbound spelling would pay the full domain.
        assert plan.order[0].atom.source == "x"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError, match="unknown plan strategy"):
            plan_join(self.chain(), self.STATS, strategy="fastest")

    def test_prepared_must_align(self):
        with pytest.raises(ReproError, match="align"):
            plan_join(self.chain(), self.STATS, prepared=[Symbol("a")])

    @pytest.mark.parametrize(
        ("text", "acyclic"),
        [
            ("MATCH x -[a]-> y, y -[b]-> z", True),
            ("MATCH x -[a]-> y, y -[b]-> z, z -[c]-> x", False),
            ("MATCH x -[a]-> y, x -[b]-> y", True),  # parallel pair
            ("MATCH x -[a]-> x, x -[b]-> y", True),  # self-loop atom
        ],
    )
    def test_acyclicity(self, text, acyclic):
        plan = plan_join(parse_crpq(text), self.STATS)
        assert plan.acyclic is acyclic

    def test_describe_is_json_ready(self):
        plan = plan_join(self.chain(), self.STATS)
        for step in plan.describe():
            assert set(step) == {
                "atom", "prepared", "estimated_pairs", "estimated_cost"
            }


# ---------------------------------------------------------------------------
# The sans-io stepper.
# ---------------------------------------------------------------------------
def execute_by_hand(query_text, pair_maps, domain=("s", "t", "u")):
    """Drive a PlanExecution feeding canned pair maps (declared order)."""
    query = parse_crpq(query_text)
    stats = DegreeStats(num_nodes=len(domain), label_counts={})
    plan = plan_join(query, stats, strategy="declared", domain=tuple(domain))
    execution = PlanExecution(plan)
    fed = 0
    while (request := execution.pending()) is not None:
        execution.feed(pair_maps[fed])
        fed += 1
    return execution


class TestPlanExecution:
    def test_chain_join(self):
        execution = execute_by_hand(
            "MATCH x -[a]-> y, y -[b]-> z RETURN x, z",
            [{"s": {"t"}, "u": {"t"}}, {"t": {"u"}}],
        )
        assert execution.result_rows() == (("s", "u"), ("u", "u"))

    def test_empty_intermediate_short_circuits(self):
        execution = execute_by_hand(
            "MATCH x -[a]-> y, y -[b]-> z RETURN z",
            [{}],  # first atom yields nothing; second never requested
        )
        assert execution.done
        assert execution.result_rows() == ()
        assert len(execution.steps) == 1

    def test_bound_target_filters(self):
        execution = execute_by_hand(
            "MATCH x -[a]-> y WHERE y = t RETURN x",
            [{"s": {"t"}, "u": {"v"}}],
        )
        assert execution.result_rows() == (("s",),)

    def test_self_loop_atom(self):
        execution = execute_by_hand(
            "MATCH x -[a]-> x RETURN x",
            [{"s": {"s", "t"}, "t": {"s"}, "u": {"u"}}],
        )
        assert execution.result_rows() == (("s",), ("u",))

    def test_reverse_binding_uses_target_index(self):
        # Second atom's *target* is bound but its source is new: the join
        # must build the reverse index rather than re-seed the domain.
        execution = execute_by_hand(
            "MATCH x -[a]-> y, w -[b]-> x RETURN w",
            [{"s": {"t"}}, {"u": {"s"}, "t": {"v"}}],
        )
        assert execution.result_rows() == (("u",),)

    def test_pending_sources_come_from_bound_column(self):
        query = parse_crpq("MATCH x -[a]-> y, y -[b]-> z RETURN z")
        stats = DegreeStats(num_nodes=3, label_counts={})
        plan = plan_join(query, stats, strategy="declared", domain=("s",))
        execution = PlanExecution(plan)
        execution.feed({"s": {"t2", "t1"}})
        request = execution.pending()
        assert request.sources == ("t1", "t2")  # sorted, deduplicated

    def test_unbound_atom_without_domain_raises(self):
        query = parse_crpq("MATCH x -[a]-> y RETURN y")
        plan = plan_join(query, DegreeStats(num_nodes=1, label_counts={}))
        with pytest.raises(ReproError, match="no domain"):
            PlanExecution(plan).pending()

    def test_feed_after_done_raises(self):
        execution = execute_by_hand("MATCH x -[a]-> y RETURN y", [{"s": {"t"}}])
        with pytest.raises(ReproError, match="finished"):
            execution.feed({})

    def test_result_rows_before_done_raises(self):
        query = parse_crpq("MATCH x -[a]-> y RETURN y")
        plan = plan_join(
            query, DegreeStats(num_nodes=1, label_counts={}), domain=("s",)
        )
        with pytest.raises(ReproError, match="pending"):
            PlanExecution(plan).result_rows()


# ---------------------------------------------------------------------------
# Engine integration: equivalence, request forms, telemetry.
# ---------------------------------------------------------------------------
class TestQueryConjunctive:
    CHAIN = "MATCH x -[a]-> y, y -[(b + c)*]-> z RETURN x, z"

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_matches_nested_loop_reference(self, backend):
        instance, _ = web(40)
        engine = Engine.open(instance, backend=backend)
        result = engine.query_conjunctive(self.CHAIN)
        assert result.rows == nested_loop_rows(parse_crpq(self.CHAIN), instance)
        assert result.variables == ("x", "z")

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_sharded_matches_monolithic(self, backend):
        instance, _ = web(40)
        expected = Engine.open(instance).query_conjunctive(self.CHAIN).rows
        engine = ShardedEngine.open(instance, shards=3, backend=backend)
        try:
            assert engine.query_conjunctive(self.CHAIN).rows == expected
        finally:
            engine.close()

    def test_strategies_agree_on_rows(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        rows = {
            strategy: engine.query_conjunctive(self.CHAIN, strategy=strategy).rows
            for strategy in ("optimized", "declared", "worst")
        }
        assert rows["optimized"] == rows["declared"] == rows["worst"]

    def test_accepts_every_request_form(self):
        instance, root = web(30)
        engine = Engine.open(instance)
        text = "MATCH x -[a]-> y RETURN x, y"
        parsed = parse_crpq(text)
        by_text = engine.query_conjunctive(text)
        assert engine.query_conjunctive(parsed).rows == by_text.rows
        assert engine.query_conjunctive(QueryRequest(query=text)).rows == by_text.rows
        bound = engine.query_conjunctive(CRPQRequest(query=text, source=root))
        assert bound.rows == engine.query_conjunctive(parsed.with_source(root)).rows

    def test_where_binding_restricts_rows(self):
        instance, root = web(30)
        engine = Engine.open(instance)
        everyone = engine.query_conjunctive("MATCH x -[a b]-> y RETURN x, y")
        rooted = engine.query_conjunctive(
            parse_crpq("MATCH x -[a b]-> y RETURN x, y").with_source(root)
        )
        assert set(rooted.rows) == {
            row for row in everyone.rows if row[0] == root
        }

    def test_scalar_query_rejected(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        with pytest.raises(ReproError, match="MATCH"):
            engine.query_conjunctive("a (b + c)*")

    def test_emits_spans_and_counters(self):
        instance, _ = web(30)
        engine = Engine.open(instance)
        result = engine.query_conjunctive(self.CHAIN)
        trace = engine.metrics.tracer.last()
        names = [span.name for span in trace.spans]
        assert names[0] == "crpq.query"
        assert "crpq.plan" in names
        assert names.count("crpq.atom") == len(result.steps)
        assert names.count("crpq.join") == len(result.steps)
        snapshot = engine.telemetry()
        assert snapshot["crpq_queries"] == 1
        assert snapshot["crpq_atom_batches"] == len(result.steps)
        assert snapshot["crpq_join_rows"] == sum(
            step.rows_out for step in result.steps
        )

    def test_plan_reflects_constraint_rewrite(self):
        # Under a b = c the prepared atom is the rewritten expression; the
        # plan must estimate and report what will actually run.
        from repro.constraints import ConstraintSet, parse_constraint

        instance, _ = web(30)
        constraints = ConstraintSet([parse_constraint("a b = c")])
        engine = Engine.open(instance, constraints=constraints)
        plan = engine.plan_conjunctive("MATCH x -[a b]-> y RETURN x, y")
        assert plan.describe()[0]["prepared"] == "c"

    def test_result_as_dicts(self):
        instance, _ = web(20)
        engine = Engine.open(instance)
        result = engine.query_conjunctive("MATCH x -[a]-> y RETURN x, y")
        assert result.as_dicts() == [
            {"x": row[0], "y": row[1]} for row in result.rows
        ]
        assert len(result) == len(result.rows)


# ---------------------------------------------------------------------------
# Hypothesis differential arm: engines == nested-loop reference.
# ---------------------------------------------------------------------------
VARIABLES = ("x", "y", "z")


@st.composite
def conjunctive_queries(draw, max_atoms=3, max_leaves=3):
    """Random small CRPQs over the shared test alphabet.

    Variables come from a three-name pool so atoms share endpoints often
    (that is where join bugs live); bindings pick node ids that may or may
    not exist, and RETURN is a random non-empty subset of the variables.
    """
    atom_count = draw(st.integers(min_value=1, max_value=max_atoms))
    atoms = tuple(
        Atom(
            source=draw(st.sampled_from(VARIABLES)),
            expression=draw(regexes(max_leaves=max_leaves)),
            target=draw(st.sampled_from(VARIABLES)),
        )
        for _ in range(atom_count)
    )
    variables = ConjunctiveQuery(atoms=atoms).variables
    bindings = tuple(
        (var, draw(st.integers(min_value=0, max_value=5)))
        for var in draw(
            st.lists(st.sampled_from(variables), unique=True, max_size=2)
        )
    )
    returns = tuple(
        draw(
            st.lists(
                st.sampled_from(variables),
                unique=True,
                min_size=1,
                max_size=len(variables),
            )
        )
    )
    return ConjunctiveQuery(atoms=atoms, bindings=bindings, returns=returns)


@given(small_instances(max_nodes=5, max_edges=10), conjunctive_queries())
@settings(max_examples=50, deadline=None)
def test_query_conjunctive_matches_nested_loop(graph_and_source, query):
    instance, _ = graph_and_source
    expected = nested_loop_rows(query, instance)
    for backend in EXECUTOR_BACKENDS:
        engine = Engine.open(instance.copy(), backend=backend)
        for strategy in ("optimized", "worst"):
            result = engine.query_conjunctive(query, strategy=strategy)
            assert result.rows == expected, (backend, strategy)


@given(small_instances(max_nodes=5, max_edges=8), conjunctive_queries(max_atoms=2))
@settings(max_examples=25, deadline=None)
def test_sharded_query_conjunctive_matches_nested_loop(graph_and_source, query):
    instance, _ = graph_and_source
    expected = nested_loop_rows(query, instance)
    engine = ShardedEngine.open(instance.copy(), shards=2)
    try:
        assert engine.query_conjunctive(query).rows == expected
    finally:
        engine.close()


@given(
    small_instances(max_nodes=5, max_edges=6),
    conjunctive_queries(max_atoms=2, max_leaves=2),
    edit_scripts(max_nodes=5, max_ops=8),
)
@settings(max_examples=30, deadline=None)
def test_query_conjunctive_tracks_interleaved_edits(
    graph_and_source, query, script
):
    """Incremental adds/deletes keep the join aligned with the reference."""
    instance, _ = graph_and_source
    engines = {
        backend: Engine.open(instance.copy(), backend=backend)
        for backend in EXECUTOR_BACKENDS
    }
    mirror = instance.copy()
    for kind, source, label, destination in script:
        if kind == "add":
            if not mirror.has_edge(source, label, destination):
                mirror.add_edge(source, label, destination)
                for engine in engines.values():
                    engine.add_edge(source, label, destination)
        elif mirror.has_edge(source, label, destination):
            mirror.remove_edge(source, label, destination)
            for engine in engines.values():
                engine.remove_edge(source, label, destination)

    expected = nested_loop_rows(query, mirror)
    for backend, engine in engines.items():
        assert engine.query_conjunctive(query).rows == expected, backend
        # The planner's degree stats must also have tracked the edits.
        stats = engine.degree_stats()
        assert stats.num_edges == mirror.edge_count(), backend
