"""Unit tests for the ``seeds=`` / ``known=`` executor parameters.

PR 4 grew both executors a superstep-continuation surface — ``seeds``
injects source bits at arbitrary ``(state, node)`` pairs, ``known``
pre-loads (or, given a frontier handle, *continues*) previously derived
facts without re-propagating them, and ``BatchRun.frontier`` exports the
cumulative state.  The sharded engine is its main consumer, but the
parameters are public API on :func:`repro.engine.executor.run_batch`;
these tests pin their semantics directly, on both backends:

* empty / no-op seeds,
* seeds interacting with tombstoned (incrementally removed) edges,
* semi-naive ``known`` (facts never re-propagate),
* frontier-handle continuation across runs,
* stale handles — ``known`` reuse across a graph version bump must raise.
"""

import pytest

from repro.engine import CompiledGraph, lower_query, numpy_available, run_batch
from repro.graph import Instance

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)

pytestmark = pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)


def chain_graph():
    """x --a--> y --b--> z, compiled; returns (graph, node ids by oid)."""
    instance = Instance([("x", "a", "y"), ("y", "b", "z")])
    graph = CompiledGraph.from_instance(instance)
    ids = {oid: graph.node_id(oid) for oid in ("x", "y", "z")}
    return graph, ids


class TestSeeds:
    def test_empty_seeds_with_no_sources_is_an_empty_run(self, backend):
        graph, _ = chain_graph()
        compiled = lower_query("a b", graph)
        run = run_batch(graph, compiled, (), seeds={}, backend=backend)
        assert run.answers == []
        assert run.visited_pairs == 0

    def test_empty_seeds_do_not_change_a_sourced_run(self, backend):
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        plain = run_batch(graph, compiled, [ids["x"]], backend=backend)
        seeded = run_batch(graph, compiled, [ids["x"]], seeds={}, backend=backend)
        assert seeded.answers == plain.answers == [{ids["z"]}]
        assert seeded.visited_pairs == plain.visited_pairs

    def test_seed_at_mid_state_propagates_from_there(self, backend):
        # Seeding bit 0 at (state-after-a, y) answers as if 'x' had walked
        # the 'a' edge already: only the 'b' hop remains.
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        reference = run_batch(graph, compiled, [ids["x"]], backend=backend)
        mid_state = next(
            target
            for label_id, target in compiled.moves[compiled.initial]
            if graph.labels.value_of(label_id) == "a"
        )
        run = run_batch(
            graph,
            compiled,
            (),
            seeds={(mid_state, ids["y"]): 1},
            num_bits=1,
            backend=backend,
        )
        assert run.frontier.mask_at(mid_state, ids["y"]) == 1
        accepting_hits = [
            (state, node)
            for state, node, mask in run.frontier.items()
            if compiled.accepting[state] and mask & 1
        ]
        assert [node for _, node in accepting_hits] == [ids["z"]]
        assert reference.answers == [{ids["z"]}]

    def test_seeds_do_not_traverse_tombstoned_edges(self, backend):
        # Remove y --b--> z, then seed past the removed edge's *source*: the
        # dead edge must not be walked, but the seeded fact itself stands.
        graph, ids = chain_graph()
        graph.remove_edge("y", "b", "z")
        compiled = lower_query("a b", graph)
        mid_state = next(
            (
                target
                for label_id, target in compiled.moves[compiled.initial]
                if graph.labels.value_of(label_id) == "a"
            ),
            None,
        )
        if mid_state is None:
            # Liveness pruning may kill the whole query once 'b' has no live
            # edges; that is itself the right behaviour: nothing to seed.
            run = run_batch(graph, compiled, [ids["x"]], backend=backend)
            assert run.answers == [set()]
            return
        run = run_batch(
            graph,
            compiled,
            (),
            seeds={(mid_state, ids["y"]): 1},
            num_bits=1,
            backend=backend,
        )
        assert run.frontier.mask_at(mid_state, ids["y"]) == 1
        assert all(node != ids["z"] for _, node, _ in run.frontier.items())

    def test_seed_on_node_whose_inbound_edge_was_tombstoned(self, backend):
        # x --a--> y is removed; seeding directly at (initial, y) still
        # reaches z through the live b edge (the tombstone only kills the
        # *edge*, not the node).
        graph, ids = chain_graph()
        graph.remove_edge("x", "a", "y")
        compiled = lower_query("a* b", graph)
        from_x = run_batch(graph, compiled, [ids["x"]], backend=backend)
        assert from_x.answers == [set()]
        seeded = run_batch(
            graph,
            compiled,
            (),
            seeds={(compiled.initial, ids["y"]): 1},
            num_bits=1,
            backend=backend,
        )
        answers = {
            node
            for state, node, mask in seeded.frontier.items()
            if compiled.accepting[state] and mask & 1
        }
        assert answers == {ids["z"]}

    def test_seeds_with_high_global_bits(self, backend):
        # Bit 70 exercises the multi-word mask path of the numpy executor
        # (and is a plain big int for the python one).
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        bit = 70
        run = run_batch(
            graph,
            compiled,
            (),
            seeds={(compiled.initial, ids["x"]): 1 << bit},
            num_bits=bit + 1,
            backend=backend,
        )
        reached = {
            (state, node)
            for state, node, mask in run.frontier.items()
            if mask >> bit & 1 and compiled.accepting[state]
        }
        assert {node for _, node in reached} == {ids["z"]}


class TestKnown:
    def test_known_facts_do_not_repropagate(self, backend):
        # 'known' marks (initial, x) as already handled: with no fresh seeds
        # the fixpoint has nothing to expand, so z is never re-derived.
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        run = run_batch(
            graph,
            compiled,
            (),
            known={(compiled.initial, ids["x"]): 1},
            num_bits=1,
            backend=backend,
        )
        assert run.visited_pairs == 0
        assert all(node != ids["z"] for _, node, _ in run.frontier.items())

    def test_frontier_handle_continues_across_runs(self, backend):
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        first = run_batch(graph, compiled, [ids["x"]], backend=backend)
        mid_state = next(
            target
            for label_id, target in compiled.moves[compiled.initial]
            if graph.labels.value_of(label_id) == "a"
        )
        # Continue the handle with a new bit seeded mid-chain; old facts stay.
        second = run_batch(
            graph,
            compiled,
            (),
            seeds={(mid_state, ids["y"]): 1 << 1},
            known=first.frontier,
            num_bits=2,
            backend=backend,
        )
        frontier = second.frontier
        assert frontier.mask_at(compiled.initial, ids["x"]) & 1
        accepting = [
            (node, mask)
            for state, node, mask in frontier.items()
            if compiled.accepting[state]
        ]
        assert accepting == [(ids["z"], 0b11)]

    def test_stale_frontier_after_add_edge_raises(self, backend):
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        run = run_batch(graph, compiled, [ids["x"]], backend=backend)
        graph.add_edge("x", "a", "z")  # version bump
        with pytest.raises(ValueError, match="stale"):
            run_batch(
                graph, compiled, (), known=run.frontier, num_bits=1,
                backend=backend,
            )

    def test_stale_frontier_after_remove_edge_raises(self, backend):
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        run = run_batch(graph, compiled, [ids["x"]], backend=backend)
        graph.remove_edge("y", "b", "z")
        with pytest.raises(ValueError, match="stale"):
            run_batch(
                graph, compiled, (), known=run.frontier, num_bits=1,
                backend=backend,
            )

    def test_mismatched_shape_still_raises(self, backend):
        graph, ids = chain_graph()
        other = CompiledGraph.from_instance(
            Instance([("p", "a", "q"), ("q", "b", "r"), ("r", "a", "p")])
        )
        compiled = lower_query("a b", graph)
        other_compiled = lower_query("a b a b", other)
        run = run_batch(other, other_compiled, [0], backend=backend)
        with pytest.raises(ValueError, match="frontier"):
            run_batch(
                graph, compiled, [ids["x"]], known=run.frontier,
                backend=backend,
            )

    def test_witnesses_reject_frontier_parameters(self, backend):
        graph, ids = chain_graph()
        compiled = lower_query("a b", graph)
        with pytest.raises(ValueError, match="witnesses"):
            run_batch(
                graph,
                compiled,
                [ids["x"]],
                witnesses=True,
                seeds={(compiled.initial, ids["y"]): 1},
                backend=backend,
            )
