"""Differential fuzz harness: python executor ≡ numpy executor ≡ baseline.

Hypothesis generates random instances, regexes, and interleaved
``add_edge``/``remove_edge`` scripts; every example is evaluated through all
three paths — the pure-Python executor, the numpy-vectorized executor (when
available), and ``evaluate_baseline`` — and the reached sets must agree
exactly, in every mode (single-source, batched, all-pairs), including the
``visited_pairs``/``visited_objects`` statistics between the two compiled
executors.  The sharded engine joins the same equivalence class: for shard
counts {1, 2, 7} its scatter-gather answers are pinned to the monolithic
engine (and through it the baseline), including after interleaved edits
routed to the owning shard.  The serving layer joins it too: answers fanned
out by the admission queue under concurrent submission are pinned to the
direct sharded calls and the baseline.  Together the tests run well over
200 examples.
"""

import pytest
from hypothesis import given, settings

from _strategies import edit_scripts, regexes, small_instances
from repro.engine import (
    CompiledGraph,
    Engine,
    QueryRequest,
    ShardedEngine,
    lower_query,
    numpy_available,
    run_all_pairs,
    run_single,
)
from repro.query import RegularPathQuery, evaluate_baseline

EXECUTOR_BACKENDS = (
    ("python", "packed", "numpy") if numpy_available() else ("python", "packed")
)
SHARD_COUNTS = (1, 2, 7)


def _runs_by_backend(run_fn, *args, **kwargs):
    return {
        backend: run_fn(*args, backend=backend, **kwargs)
        for backend in EXECUTOR_BACKENDS
    }


def _assert_runs_agree(runs, context):
    reference = runs["python"]
    for backend, run in runs.items():
        assert run.answers == reference.answers, (context, backend)
        assert run.visited_pairs == reference.visited_pairs, (context, backend)
        assert run.visited_objects == reference.visited_objects, (context, backend)


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=120, deadline=None)
def test_executors_and_baseline_agree_on_all_modes(graph_and_source, expression):
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    graph = CompiledGraph.from_instance(instance)
    compiled = lower_query(rpq, graph)

    # All-pairs: one batched traversal per backend, checked per source
    # against both the other backend and the baseline evaluator.
    batch_runs = _runs_by_backend(run_all_pairs, graph, compiled)
    for backend, run in batch_runs.items():
        assert run.answers == batch_runs["python"].answers, backend
        assert run.visited_pairs == batch_runs["python"].visited_pairs, backend
        assert run.visited_objects == batch_runs["python"].visited_objects, backend
    for node in range(graph.num_nodes):
        oid = graph.oid_of(node)
        expected = evaluate_baseline(rpq, oid, instance).answers

        single_runs = _runs_by_backend(run_single, graph, compiled, node)
        _assert_runs_agree(single_runs, oid)
        assert graph.oids_of(single_runs["python"].answers) == expected, oid
        assert graph.oids_of(batch_runs["python"].answers[node]) == expected, oid


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=10),
)
@settings(max_examples=120, deadline=None)
def test_executors_agree_after_interleaved_edits(graph_and_source, expression, script):
    """Incremental adds AND tombstone deletes keep all three paths aligned."""
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    engines = {
        backend: Engine.open(instance.copy(), backend=backend)
        for backend in EXECUTOR_BACKENDS
    }
    mirror = instance.copy()  # evolves alongside, evaluated by the baseline

    for kind, source, label, destination in script:
        if kind == "add":
            if not mirror.has_edge(source, label, destination):
                mirror.add_edge(source, label, destination)
                for engine in engines.values():
                    engine.add_edge(source, label, destination)
        else:
            if mirror.has_edge(source, label, destination):
                mirror.remove_edge(source, label, destination)
                for engine in engines.values():
                    engine.remove_edge(source, label, destination)

    results = {
        backend: engine.query_all(rpq) for backend, engine in engines.items()
    }
    for backend, per_source in results.items():
        assert per_source == results["python"], backend
    for oid in mirror.objects:
        expected = evaluate_baseline(rpq, oid, mirror).answers
        assert results["python"][oid] == expected, oid

    # The whole point of the incremental paths: no engine ever rebuilt.
    for backend, engine in engines.items():
        assert engine.stats.graph_builds == 1, backend


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=14),
)
@settings(max_examples=60, deadline=None)
def test_compiled_graph_tracks_instance_through_edits(graph_and_source, expression, script):
    """CompiledGraph edits + compaction stay consistent with a fresh compile."""
    instance, _ = graph_and_source
    graph = CompiledGraph.from_instance(instance)
    for kind, source, label, destination in script:
        if kind == "add":
            if not instance.has_edge(source, label, destination):
                instance.add_edge(source, label, destination)
                graph.add_edge(source, label, destination)
        else:
            if instance.has_edge(source, label, destination):
                instance.remove_edge(source, label, destination)
                graph.remove_edge(source, label, destination)
    assert graph.edge_count() == instance.edge_count()

    rpq = RegularPathQuery.of(expression)
    compiled = lower_query(rpq, graph)
    before = {
        node: run_single(graph, compiled, node, backend="python").answers
        for node in range(graph.num_nodes)
    }
    graph.compact()
    assert graph.overflow_edge_count() == 0
    assert graph.tombstone_count() == 0
    assert graph.edge_count() == instance.edge_count()
    compiled = lower_query(rpq, graph)  # label ids are stable across compact
    for node, answers in before.items():
        for backend in EXECUTOR_BACKENDS:
            run = run_single(graph, compiled, node, backend=backend)
            assert run.answers == answers, (node, backend)


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=60, deadline=None)
def test_sharded_engine_matches_monolithic_and_baseline(graph_and_source, expression):
    """``ShardedEngine`` ≡ monolithic ``Engine`` ≡ ``evaluate_baseline``.

    Every example is partitioned 1 / 2 / 7 ways (hash shard map) and served
    through both executors; the gathered all-pairs answers must agree with
    the monolithic engine, and the monolithic engine with the baseline.
    """
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    mono = Engine.open(instance)
    expected = mono.query_all(rpq)
    for oid in instance.objects:
        assert expected[oid] == evaluate_baseline(rpq, oid, instance).answers, oid
    for shards in SHARD_COUNTS:
        for backend in EXECUTOR_BACKENDS:
            sharded = ShardedEngine.open(instance, shards=shards, backend=backend)
            assert sharded.query_all(rpq) == expected, (shards, backend)


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=10),
)
@settings(max_examples=40, deadline=None)
def test_sharded_engine_tracks_interleaved_edits(graph_and_source, expression, script):
    """Edits routed to the owning shard keep sharded ≡ monolithic ≡ baseline.

    The same add/remove script is applied to a baseline mirror and to one
    sharded engine per (shard count, backend); every engine must stay
    incremental (no shard graph ever rebuilds) and agree on all-pairs
    answers afterwards.
    """
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    engines = {
        (shards, backend): ShardedEngine.open(
            instance.copy(), shards=shards, backend=backend
        )
        for shards in SHARD_COUNTS
        for backend in EXECUTOR_BACKENDS
    }
    mirror = instance.copy()

    for kind, source, label, destination in script:
        if kind == "add":
            if not mirror.has_edge(source, label, destination):
                mirror.add_edge(source, label, destination)
                for engine in engines.values():
                    engine.add_edge(source, label, destination)
        else:
            if mirror.has_edge(source, label, destination):
                mirror.remove_edge(source, label, destination)
                for engine in engines.values():
                    engine.remove_edge(source, label, destination)

    expected = {
        oid: evaluate_baseline(rpq, oid, mirror).answers for oid in mirror.objects
    }
    for key, engine in engines.items():
        assert engine.query_all(rpq) == expected, key
        # The whole point of the routed mutations: no shard ever rebuilt.
        assert all(
            shard.stats.graph_builds == 1 for shard in engine.shard_engines
        ), key


@given(
    small_instances(max_nodes=6, max_edges=12),
    regexes(max_leaves=4),
    regexes(max_leaves=4),
)
@settings(max_examples=25, deadline=None)
def test_served_answers_match_direct_and_baseline(
    graph_and_source, expr_one, expr_two
):
    """Served ≡ direct ``ShardedEngine`` ≡ baseline under concurrent admission.

    Every example submits two queries from every source *concurrently*
    through the admission queue (small max_batch, so coalescing, size
    flushes and delay flushes all occur) and pins the fanned-out answers to
    the direct sharded calls — and, per source, to ``evaluate_baseline``.
    """
    import asyncio

    instance, _ = graph_and_source
    sources = sorted(instance.objects, key=repr)
    sharded = ShardedEngine.open(instance, shards=2)
    queries = (expr_one, expr_two)
    direct = {
        query_index: sharded.query_batch(query, sources)
        for query_index, query in enumerate(queries)
    }

    async def scenario():
        async with sharded.as_server(max_batch=3, max_delay=0.001) as server:
            futures = {
                (query_index, source): server.submit_nowait(QueryRequest(query=query, sources=(source,)))
                for query_index, query in enumerate(queries)
                for source in sources
            }
            return {key: await future for key, future in futures.items()}

    served = asyncio.run(scenario())
    # Admission arithmetic, read back from the telemetry registry itself:
    # every admitted request resolved exactly once, one way or the other.
    snapshot = sharded.metrics.snapshot()
    assert snapshot["serving_submitted"] == len(queries) * len(sources)
    assert (
        snapshot["serving_submitted"]
        == snapshot["serving_served"] + snapshot["serving_failed"]
    )
    assert snapshot["serving_failed"] == 0
    for query_index in range(len(queries)):
        for source in sources:
            assert served[(query_index, source)] == direct[query_index][source], (
                query_index,
                source,
            )
    rpq = RegularPathQuery.of(expr_one)
    for source in sources:
        assert direct[0][source] == evaluate_baseline(rpq, source, instance).answers


@given(
    small_instances(max_nodes=6, max_edges=12),
    regexes(max_leaves=4),
)
@settings(max_examples=25, deadline=None)
def test_streamed_answers_match_batch_submit_and_baseline(
    graph_and_source, expression
):
    """Streamed ≡ batch ``submit`` ≡ direct ≡ baseline, per source.

    Every example submits the query from every source twice — once through
    ``submit_stream`` (collecting the incremental feed *and* the resolved
    set) and once through ``submit_nowait`` — coalescing into the same
    shared batches, and pins all four views of the answer set to each
    other: no duplicate streamed facts, no missing ones, exact accounting.
    """
    import asyncio

    instance, _ = graph_and_source
    sources = sorted(instance.objects, key=repr)
    sharded = ShardedEngine.open(instance, shards=2)
    direct = sharded.query_batch(expression, sources)

    async def scenario():
        async with sharded.as_server(max_batch=3, max_delay=0.001) as server:
            streams = {
                source: server.submit_stream(QueryRequest(query=expression, sources=(source,)))
                for source in sources
            }
            plain = {
                source: server.submit_nowait(QueryRequest(query=expression, sources=(source,)))
                for source in sources
            }
            collected = {}
            for source, stream in streams.items():
                incremental = [answer async for answer in stream]
                collected[source] = (incremental, await stream.result())
            resolved = {source: await f for source, f in plain.items()}
            return collected, resolved, server.stats

    collected, resolved, stats = asyncio.run(scenario())
    assert stats.submitted == stats.served + stats.failed
    assert stats.failed == 0
    assert stats.streamed == len(sources)
    rpq = RegularPathQuery.of(expression)
    for source in sources:
        incremental, full = collected[source]
        # Exactly-once in wire space: no duplicate even across oid types.
        assert len(incremental) == len({str(a) for a in incremental}), source
        assert set(map(str, incremental)) == {
            str(oid) for oid in direct[source]
        }, source
        assert full == direct[source], source
        assert resolved[source] == direct[source], source
        assert direct[source] == evaluate_baseline(rpq, source, instance).answers


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=6),
)
@settings(max_examples=25, deadline=None)
def test_page_concatenation_matches_full_set_across_cursors(
    graph_and_source, expression, script
):
    """Cursor pages concatenate to the full set, even with interleaved edits.

    Quiescent pagination must concatenate to *exactly* the full sorted
    answer set (before the edit script and again after it).  With one edit
    applied between every two pages, each page evaluates a different graph;
    the pinned invariants are the ones resumption guarantees: pages stay
    strictly sorted (no duplicate, no regression), every answer present in
    *every* snapshot is delivered, and nothing is delivered that no
    snapshot contained.
    """
    import asyncio

    from repro.engine.serving import respond_line

    instance, _ = graph_and_source
    engine = Engine.open(instance)
    mirror = instance.copy()
    source = sorted(instance.objects, key=repr)[0]

    async def snapshot(server):
        # The full-set reference *through the protocol itself*, so pages and
        # reference agree on the wire form of sources and answers.
        response = await respond_line(server, f"f\t{source}\t{expression}")
        fields = response.split("\t")
        assert not fields[1].startswith("error:"), response
        return set(fields[1].split())

    edits = list(script)

    def apply_one_edit():
        while edits:
            kind, edit_source, label, destination = edits.pop(0)
            if kind == "add" and not mirror.has_edge(
                edit_source, label, destination
            ):
                mirror.add_edge(edit_source, label, destination)
                engine.add_edge(edit_source, label, destination)
                return
            if kind != "add" and mirror.has_edge(edit_source, label, destination):
                mirror.remove_edge(edit_source, label, destination)
                engine.remove_edge(edit_source, label, destination)
                return

    async def paginate(server, between_pages=None):
        pages, snapshots, cursor = [], [], None
        while True:
            snapshots.append(await snapshot(server))
            suffix = f" CURSOR {cursor}" if cursor else ""
            response = await respond_line(
                server, f"p\t{source}\t{expression}\tLIMIT 2{suffix}"
            )
            fields = response.split("\t")
            assert not fields[1].startswith("error:"), response
            pages.extend(fields[1].split())
            if len(fields) != 3:
                return pages, snapshots
            cursor = fields[2][len("CURSOR "):]
            if between_pages is not None:
                between_pages()

    async def scenario():
        async with engine.as_server(max_batch=4, max_delay=0.001) as server:
            quiescent, _ = await paginate(server)
            assert quiescent == sorted(await snapshot(server))
            edited, snapshots = await paginate(server, apply_one_edit)
            while edits:  # flush whatever the pagination didn't consume
                apply_one_edit()
            final, _ = await paginate(server)
            assert final == sorted(await snapshot(server))
            return edited, snapshots

    edited, snapshots = asyncio.run(scenario())
    # Strictly ascending: resume-after-cursor can neither duplicate an
    # answer nor step backwards, whatever the edits did.
    assert all(a < b for a, b in zip(edited, edited[1:]))
    always = set.intersection(*snapshots)
    ever = set.union(*snapshots)
    assert always <= set(edited) <= ever


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_fuzz_covers_numpy_backend():
    """Guard: the harness above really is differential, not python-only."""
    assert "numpy" in EXECUTOR_BACKENDS
