"""Differential fuzz harness: python executor ≡ numpy executor ≡ baseline.

Hypothesis generates random instances, regexes, and interleaved
``add_edge``/``remove_edge`` scripts; every example is evaluated through all
three paths — the pure-Python executor, the numpy-vectorized executor (when
available), and ``evaluate_baseline`` — and the reached sets must agree
exactly, in every mode (single-source, batched, all-pairs), including the
``visited_pairs``/``visited_objects`` statistics between the two compiled
executors.  The sharded engine joins the same equivalence class: for shard
counts {1, 2, 7} its scatter-gather answers are pinned to the monolithic
engine (and through it the baseline), including after interleaved edits
routed to the owning shard.  The serving layer joins it too: answers fanned
out by the admission queue under concurrent submission are pinned to the
direct sharded calls and the baseline.  Together the tests run well over
200 examples.
"""

import pytest
from hypothesis import given, settings

from _strategies import edit_scripts, regexes, small_instances
from repro.engine import (
    CompiledGraph,
    Engine,
    ShardedEngine,
    lower_query,
    numpy_available,
    run_all_pairs,
    run_batch,
    run_single,
)
from repro.query import RegularPathQuery, evaluate_baseline

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)
SHARD_COUNTS = (1, 2, 7)


def _runs_by_backend(run_fn, *args, **kwargs):
    return {
        backend: run_fn(*args, backend=backend, **kwargs)
        for backend in EXECUTOR_BACKENDS
    }


def _assert_runs_agree(runs, context):
    reference = runs["python"]
    for backend, run in runs.items():
        assert run.answers == reference.answers, (context, backend)
        assert run.visited_pairs == reference.visited_pairs, (context, backend)
        assert run.visited_objects == reference.visited_objects, (context, backend)


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=120, deadline=None)
def test_executors_and_baseline_agree_on_all_modes(graph_and_source, expression):
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    graph = CompiledGraph.from_instance(instance)
    compiled = lower_query(rpq, graph)

    # All-pairs: one batched traversal per backend, checked per source
    # against both the other backend and the baseline evaluator.
    batch_runs = _runs_by_backend(run_all_pairs, graph, compiled)
    for backend, run in batch_runs.items():
        assert run.answers == batch_runs["python"].answers, backend
        assert run.visited_pairs == batch_runs["python"].visited_pairs, backend
        assert run.visited_objects == batch_runs["python"].visited_objects, backend
    for node in range(graph.num_nodes):
        oid = graph.oid_of(node)
        expected = evaluate_baseline(rpq, oid, instance).answers

        single_runs = _runs_by_backend(run_single, graph, compiled, node)
        _assert_runs_agree(single_runs, oid)
        assert graph.oids_of(single_runs["python"].answers) == expected, oid
        assert graph.oids_of(batch_runs["python"].answers[node]) == expected, oid


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=10),
)
@settings(max_examples=120, deadline=None)
def test_executors_agree_after_interleaved_edits(graph_and_source, expression, script):
    """Incremental adds AND tombstone deletes keep all three paths aligned."""
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    engines = {
        backend: Engine.open(instance.copy(), backend=backend)
        for backend in EXECUTOR_BACKENDS
    }
    mirror = instance.copy()  # evolves alongside, evaluated by the baseline

    for kind, source, label, destination in script:
        if kind == "add":
            if not mirror.has_edge(source, label, destination):
                mirror.add_edge(source, label, destination)
                for engine in engines.values():
                    engine.add_edge(source, label, destination)
        else:
            if mirror.has_edge(source, label, destination):
                mirror.remove_edge(source, label, destination)
                for engine in engines.values():
                    engine.remove_edge(source, label, destination)

    results = {
        backend: engine.query_all(rpq) for backend, engine in engines.items()
    }
    for backend, per_source in results.items():
        assert per_source == results["python"], backend
    for oid in mirror.objects:
        expected = evaluate_baseline(rpq, oid, mirror).answers
        assert results["python"][oid] == expected, oid

    # The whole point of the incremental paths: no engine ever rebuilt.
    for backend, engine in engines.items():
        assert engine.stats.graph_builds == 1, backend


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=14),
)
@settings(max_examples=60, deadline=None)
def test_compiled_graph_tracks_instance_through_edits(graph_and_source, expression, script):
    """CompiledGraph edits + compaction stay consistent with a fresh compile."""
    instance, _ = graph_and_source
    graph = CompiledGraph.from_instance(instance)
    for kind, source, label, destination in script:
        if kind == "add":
            if not instance.has_edge(source, label, destination):
                instance.add_edge(source, label, destination)
                graph.add_edge(source, label, destination)
        else:
            if instance.has_edge(source, label, destination):
                instance.remove_edge(source, label, destination)
                graph.remove_edge(source, label, destination)
    assert graph.edge_count() == instance.edge_count()

    rpq = RegularPathQuery.of(expression)
    compiled = lower_query(rpq, graph)
    before = {
        node: run_single(graph, compiled, node, backend="python").answers
        for node in range(graph.num_nodes)
    }
    graph.compact()
    assert graph.overflow_edge_count() == 0
    assert graph.tombstone_count() == 0
    assert graph.edge_count() == instance.edge_count()
    compiled = lower_query(rpq, graph)  # label ids are stable across compact
    for node, answers in before.items():
        for backend in EXECUTOR_BACKENDS:
            run = run_single(graph, compiled, node, backend=backend)
            assert run.answers == answers, (node, backend)


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=60, deadline=None)
def test_sharded_engine_matches_monolithic_and_baseline(graph_and_source, expression):
    """``ShardedEngine`` ≡ monolithic ``Engine`` ≡ ``evaluate_baseline``.

    Every example is partitioned 1 / 2 / 7 ways (hash shard map) and served
    through both executors; the gathered all-pairs answers must agree with
    the monolithic engine, and the monolithic engine with the baseline.
    """
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    mono = Engine.open(instance)
    expected = mono.query_all(rpq)
    for oid in instance.objects:
        assert expected[oid] == evaluate_baseline(rpq, oid, instance).answers, oid
    for shards in SHARD_COUNTS:
        for backend in EXECUTOR_BACKENDS:
            sharded = ShardedEngine.open(instance, shards=shards, backend=backend)
            assert sharded.query_all(rpq) == expected, (shards, backend)


@given(
    small_instances(max_nodes=5, max_edges=8),
    regexes(max_leaves=4),
    edit_scripts(max_nodes=5, max_ops=10),
)
@settings(max_examples=40, deadline=None)
def test_sharded_engine_tracks_interleaved_edits(graph_and_source, expression, script):
    """Edits routed to the owning shard keep sharded ≡ monolithic ≡ baseline.

    The same add/remove script is applied to a baseline mirror and to one
    sharded engine per (shard count, backend); every engine must stay
    incremental (no shard graph ever rebuilds) and agree on all-pairs
    answers afterwards.
    """
    instance, _ = graph_and_source
    rpq = RegularPathQuery.of(expression)
    engines = {
        (shards, backend): ShardedEngine.open(
            instance.copy(), shards=shards, backend=backend
        )
        for shards in SHARD_COUNTS
        for backend in EXECUTOR_BACKENDS
    }
    mirror = instance.copy()

    for kind, source, label, destination in script:
        if kind == "add":
            if not mirror.has_edge(source, label, destination):
                mirror.add_edge(source, label, destination)
                for engine in engines.values():
                    engine.add_edge(source, label, destination)
        else:
            if mirror.has_edge(source, label, destination):
                mirror.remove_edge(source, label, destination)
                for engine in engines.values():
                    engine.remove_edge(source, label, destination)

    expected = {
        oid: evaluate_baseline(rpq, oid, mirror).answers for oid in mirror.objects
    }
    for key, engine in engines.items():
        assert engine.query_all(rpq) == expected, key
        # The whole point of the routed mutations: no shard ever rebuilt.
        assert all(
            shard.stats.graph_builds == 1 for shard in engine.shard_engines
        ), key


@given(
    small_instances(max_nodes=6, max_edges=12),
    regexes(max_leaves=4),
    regexes(max_leaves=4),
)
@settings(max_examples=25, deadline=None)
def test_served_answers_match_direct_and_baseline(
    graph_and_source, expr_one, expr_two
):
    """Served ≡ direct ``ShardedEngine`` ≡ baseline under concurrent admission.

    Every example submits two queries from every source *concurrently*
    through the admission queue (small max_batch, so coalescing, size
    flushes and delay flushes all occur) and pins the fanned-out answers to
    the direct sharded calls — and, per source, to ``evaluate_baseline``.
    """
    import asyncio

    instance, _ = graph_and_source
    sources = sorted(instance.objects, key=repr)
    sharded = ShardedEngine.open(instance, shards=2)
    queries = (expr_one, expr_two)
    direct = {
        query_index: sharded.query_batch(query, sources)
        for query_index, query in enumerate(queries)
    }

    async def scenario():
        async with sharded.as_server(max_batch=3, max_delay=0.001) as server:
            futures = {
                (query_index, source): server.submit_nowait(query, source)
                for query_index, query in enumerate(queries)
                for source in sources
            }
            return {key: await future for key, future in futures.items()}

    served = asyncio.run(scenario())
    # Admission arithmetic, read back from the telemetry registry itself:
    # every admitted request resolved exactly once, one way or the other.
    snapshot = sharded.metrics.snapshot()
    assert snapshot["serving_submitted"] == len(queries) * len(sources)
    assert (
        snapshot["serving_submitted"]
        == snapshot["serving_served"] + snapshot["serving_failed"]
    )
    assert snapshot["serving_failed"] == 0
    for query_index in range(len(queries)):
        for source in sources:
            assert served[(query_index, source)] == direct[query_index][source], (
                query_index,
                source,
            )
    rpq = RegularPathQuery.of(expr_one)
    for source in sources:
        assert direct[0][source] == evaluate_baseline(rpq, source, instance).answers


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_fuzz_covers_numpy_backend():
    """Guard: the harness above really is differential, not python-only."""
    assert "numpy" in EXECUTOR_BACKENDS
