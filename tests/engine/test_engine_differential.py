"""Differential tests: the compiled engine vs the reference evaluator.

Every mode of the engine (single-source, multi-source batched, all-pairs)
must return exactly the answer sets of ``query.evaluation.evaluate_baseline``
on randomized graphs and queries, and single-source witnesses must be real:
each witness word must spell an actual path in the graph and belong to the
query language.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from _strategies import regexes, small_instances
from repro.engine import Engine
from repro.graph import layered_dag, random_graph, web_like_graph
from repro.query import RegularPathQuery, evaluate_baseline
from repro.regex import to_string
from repro.regex.ast import concat, star, union


def assert_witnesses_real(result, rpq, source, instance):
    for answer, word in result.witness_paths.items():
        assert answer in result.answers
        assert rpq.accepts_word(word)
        # The word must spell a path source -> answer in the graph.
        frontier = {source}
        for label in word:
            frontier = {
                target for node in frontier for target in instance.successors(node, label)
            }
        assert answer in frontier


# ---------------------------------------------------------------------------
# Hypothesis: random graphs x random regexes, all three modes.
# ---------------------------------------------------------------------------
@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=60)
def test_single_source_matches_baseline(graph_and_source, expression):
    instance, source = graph_and_source
    engine = Engine.open(instance)
    rpq = RegularPathQuery.of(expression)
    expected = evaluate_baseline(rpq, source, instance)
    got = engine.query(rpq, source)
    assert got.answers == expected.answers
    assert set(got.witness_paths) == got.answers
    assert_witnesses_real(got, rpq, source, instance)


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=40)
def test_all_sources_matches_baseline(graph_and_source, expression):
    instance, _ = graph_and_source
    engine = Engine.open(instance)
    rpq = RegularPathQuery.of(expression)
    results = engine.query_all(rpq)
    assert set(results) == set(instance.objects)
    for oid in instance.objects:
        assert results[oid] == evaluate_baseline(rpq, oid, instance).answers, to_string(
            expression
        )


@given(
    small_instances(max_nodes=6, max_edges=12),
    regexes(max_leaves=5),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4),
)
@settings(max_examples=40)
def test_multi_source_batch_matches_baseline(graph_and_source, expression, picks):
    instance, _ = graph_and_source
    objects = sorted(instance.objects, key=repr)
    sources = [objects[p % len(objects)] for p in picks]
    engine = Engine.open(instance)
    rpq = RegularPathQuery.of(expression)
    results = engine.query_batch(rpq, sources)
    for source in sources:
        assert results[source] == evaluate_baseline(rpq, source, instance).answers


# ---------------------------------------------------------------------------
# ε-heavy queries: expressions dominated by % / nullable subexpressions.
# ---------------------------------------------------------------------------
EPSILON_HEAVY = [
    "%",
    "% %",
    "% + a",
    "(% + a) (% + b)",
    "(%)* a (% + b)*",
    "a? b? c?",
    "(a?)* b?",
    "% (a + %) %",
]


def test_epsilon_heavy_queries_match_baseline():
    instance, source = random_graph(30, 2, ["a", "b", "c"], seed=17)
    engine = Engine.open(instance)
    for text in EPSILON_HEAVY:
        rpq = RegularPathQuery.of(text)
        expected = evaluate_baseline(rpq, source, instance)
        got = engine.query(rpq, source)
        assert got.answers == expected.answers, text
        # ε-accepting queries must answer the source with the empty witness.
        if rpq.accepts_word(()):
            assert got.witness_paths[source] == ()


def test_empty_answer_sets_match_baseline():
    instance, source = layered_dag(3, 3, ["a", "b"], seed=2)
    engine = Engine.open(instance)
    for text in ("~", "c", "a c", "b b b b b b b b b b"):
        expected = evaluate_baseline(text, source, instance)
        got = engine.query(text, source)
        assert got.answers == expected.answers == set(), text
        assert got.witness_paths == {}


# ---------------------------------------------------------------------------
# Larger deterministic graphs (beyond what hypothesis explores).
# ---------------------------------------------------------------------------
def test_web_like_graph_all_modes_agree():
    instance, source = web_like_graph(120, ["a", "b", "c"], seed=23)
    engine = Engine.open(instance)
    queries = ["a (b + c)* a", "c* b", "(a b)* c?", "% + a", "(a + b + c)*"]
    objects = sorted(instance.objects, key=repr)
    probe = objects[::7]
    for text in queries:
        rpq = RegularPathQuery.of(text)
        batch = engine.query_batch(rpq, probe)
        for oid in probe:
            expected = evaluate_baseline(rpq, oid, instance).answers
            assert engine.query(rpq, oid).answers == expected, text
            assert batch[oid] == expected, text


def test_incremental_edges_visible_to_all_modes():
    instance, source = random_graph(40, 2, ["a", "b"], seed=31)
    engine = Engine.open(instance)
    engine.add_edge(source, "z", "island")
    engine.add_edge("island", "z", "island2")
    rpq = RegularPathQuery.of("z z?")
    expected = evaluate_baseline(rpq, source, instance)
    assert engine.query(rpq, source).answers == expected.answers == {"island", "island2"}
    assert engine.query_batch(rpq, [source, "island"])["island"] == {"island2"}


def test_randomized_construction_stress():
    # Random regexes built programmatically (not via the parser) to cover
    # printer/parser-independent paths, compared on a fixed graph.
    import random

    rng = random.Random(99)
    instance, source = random_graph(25, 3, ["a", "b", "c"], seed=41)
    engine = Engine.open(instance)
    from repro.regex.ast import Epsilon, Symbol

    def rand_expr(depth):
        if depth == 0 or rng.random() < 0.3:
            return rng.choice([Symbol("a"), Symbol("b"), Symbol("c"), Epsilon()])
        pick = rng.random()
        if pick < 0.4:
            return concat(rand_expr(depth - 1), rand_expr(depth - 1))
        if pick < 0.8:
            return union(rand_expr(depth - 1), rand_expr(depth - 1))
        return star(rand_expr(depth - 1))

    for _ in range(25):
        expression = rand_expr(3)
        rpq = RegularPathQuery.of(expression)
        expected = evaluate_baseline(rpq, source, instance)
        got = engine.query(rpq, source)
        assert got.answers == expected.answers, to_string(expression)
        assert_witnesses_real(got, rpq, source, instance)
