"""Unit tests for the compiled engine's building blocks."""

import pytest

from repro.engine import (
    CompiledGraph,
    Engine,
    Interner,
    QueryCompiler,
    lower_query,
    run_single,
)
from repro.exceptions import InstanceError
from repro.graph import Instance, figure2_graph, random_graph
from repro.query import evaluate_baseline


class TestInterner:
    def test_ids_are_dense_and_stable(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert interner.value_of(1) == "b"
        assert interner.id_of("c") is None
        assert "a" in interner and "c" not in interner
        assert list(interner) == ["a", "b"]
        assert len(interner) == 2


class TestCompiledGraph:
    def test_compiles_instance_shape(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        assert graph.num_nodes == len(instance)
        assert graph.edge_count() == instance.edge_count()
        assert set(graph.labels) == set(instance.labels())

    def test_successors_match_instance(self):
        instance, _ = random_graph(25, 3, ["a", "b"], seed=5)
        graph = CompiledGraph.from_instance(instance)
        for oid in instance.objects:
            node = graph.node_id(oid)
            for label in ("a", "b"):
                lid = graph.label_id(label)
                expected = sorted(instance.successors(oid, label), key=repr)
                got = sorted(
                    (graph.oid_of(t) for t in graph.successors(node, lid)), key=repr
                )
                assert got == expected

    def test_deterministic_rebuild(self):
        instance, _ = random_graph(15, 2, ["a", "b"], seed=9)
        first = CompiledGraph.from_instance(instance)
        second = CompiledGraph.from_instance(instance)
        assert first.nodes.values() == second.nodes.values()
        assert first.labels.values() == second.labels.values()

    def test_incremental_add_edge_lands_in_overflow(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        before = graph.version
        graph.add_edge("o1", "a", "o3")
        assert graph.version > before
        assert graph.overflow_edge_count() == 1
        lid = graph.label_id("a")
        assert graph.node_id("o3") in set(graph.successors(graph.node_id("o1"), lid))
        # Duplicate adds are idempotent.
        graph.add_edge("o1", "a", "o3")
        assert graph.overflow_edge_count() == 1

    def test_incremental_add_new_label_and_node(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        graph.add_edge("o3", "zz", "fresh")
        lid = graph.label_id("zz")
        assert lid is not None
        assert graph.oid_of(next(iter(graph.successors(graph.node_id("o3"), lid)))) == "fresh"

    def test_compact_folds_overflow(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        graph.add_edge("o1", "a", "o3")
        graph.add_edge("o3", "zz", "fresh")
        graph.compact()
        assert graph.overflow_edge_count() == 0
        lid = graph.label_id("zz")
        assert graph.oid_of(next(iter(graph.successors(graph.node_id("o3"), lid)))) == "fresh"

    def test_rejects_bad_labels(self):
        graph = CompiledGraph.from_instance(Instance())
        with pytest.raises(InstanceError):
            graph.add_edge("x", "", "y")


class TestLowering:
    def test_table_shape_and_acceptance(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        compiled = lower_query("a b*", graph)
        assert compiled.label_count == graph.num_labels
        assert not compiled.accepts_empty_word()
        # From the initial state, 'a' must be live and 'b' dead.
        a, b = graph.label_id("a"), graph.label_id("b")
        assert compiled.table[compiled.initial][a] >= 0
        assert compiled.table[compiled.initial][b] == -1

    def test_graph_only_labels_are_dead_everywhere(self):
        instance = Instance([("x", "a", "y"), ("y", "unrelated", "z")])
        graph = CompiledGraph.from_instance(instance)
        compiled = lower_query("a*", graph)
        unrelated = graph.label_id("unrelated")
        assert all(row[unrelated] == -1 for row in compiled.table)

    def test_empty_language_has_no_live_moves(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        compiled = lower_query("~", graph)
        assert not compiled.accepts_empty_word()
        assert all(not moves for moves in compiled.moves)

    def test_dead_states_cut_hopeless_exploration(self):
        # 'a c' can never complete on a graph without 'c' edges: after the
        # liveness pruning the initial state has no live moves at all.
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        compiled = lower_query("a c", graph)
        run = run_single(graph, compiled, graph.node_id("o1"))
        assert run.answers == set()
        assert run.visited_pairs == 1  # only the start pair

    def test_compiler_lru_hits_and_label_invalidation(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        compiler = QueryCompiler(capacity=4)
        first = compiler.compile("a b*", graph)
        second = compiler.compile("a b*", graph)
        assert first is second
        assert (compiler.hits, compiler.misses) == (1, 1)
        # A genuinely new label must invalidate (different key => recompile).
        graph.add_edge("o1", "zz", "o2")
        third = compiler.compile("a b*", graph)
        assert third is not first
        assert compiler.misses == 2

    def test_compiler_evicts_least_recently_used(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        compiler = QueryCompiler(capacity=2)
        compiler.compile("a", graph)
        compiler.compile("b", graph)
        compiler.compile("a b", graph)  # evicts "a"
        assert len(compiler) == 2
        compiler.compile("a", graph)
        assert compiler.misses == 4


class TestEngineSession:
    def test_matches_baseline_on_figure2(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        for query in ("a b*", "a", "%", "(a + b)*", "b"):
            assert engine.query(query, source).answers == (
                evaluate_baseline(query, source, instance).answers
            )

    def test_refresh_detects_out_of_band_mutation(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        assert engine.query("c", source).answers == set()
        instance.add_edge(source, "c", "o3")  # bypasses the engine
        assert engine.query("c", source).answers == {"o3"}
        assert engine.stats.graph_builds == 2

    def test_rebuild_invalidates_cached_tables(self):
        # A rebuild can reassign label ids (interning follows edge order), so
        # cached transition tables keyed by label *count* alone would go
        # stale: here removing the only 'a' edge that sorts first makes 'b'
        # intern as label 0 on rebuild, with the label count unchanged.
        instance = Instance([(0, "a", 9), (1, "b", 2), (2, "a", 3)])
        engine = Engine.open(instance)
        assert engine.query("b", 1).answers == {2}
        instance.remove_edge(0, "a", 9)  # bypasses the engine
        assert engine.query("b", 1).answers == {2}
        assert engine.stats.graph_builds == 2

    def test_query_all_sees_objects_added_out_of_band(self):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        engine.query_all("a")
        instance.add_edge("new1", "a", "new2")  # bypasses the engine
        results = engine.query_all("a")
        assert results["new1"] == {"new2"}
        assert set(results) == set(instance.objects)

    def test_add_edge_is_incremental(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        engine.add_edge(source, "c", "o3")
        assert engine.query("c", source).answers == {"o3"}
        assert engine.stats.graph_builds == 1  # no rebuild
        assert instance.has_edge(source, "c", "o3")

    def test_unknown_source(self):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        assert engine.query("a*", "ghost").answers == {"ghost"}
        assert engine.query("a", "ghost").answers == set()

    def test_batch_shares_one_compile(self):
        instance, _ = random_graph(30, 2, ["a", "b"], seed=2)
        engine = Engine.open(instance)
        results = engine.query_batch("a b*", sorted(instance.objects, key=repr))
        assert set(results) == set(instance.objects)
        assert engine.compiler.misses == 1

    def test_query_all_covers_every_object(self):
        instance, _ = random_graph(20, 2, ["a", "b"], seed=3)
        engine = Engine.open(instance)
        results = engine.query_all("a*")
        assert set(results) == set(instance.objects)
        for oid, answers in results.items():
            assert oid in answers  # 'a*' accepts epsilon

    def test_constraint_prerewrite_keeps_answers(self):
        from repro.constraints import ConstraintSet
        from repro.optimize import materialize_cache

        instance, source = figure2_graph()
        cached_instance, record = materialize_cache(instance, source, "a b*", "hot")
        constraints = ConstraintSet([record.constraint()])
        engine = Engine.open(cached_instance, constraints=constraints)
        plain = Engine.open(cached_instance)
        result = engine.query("a b*", source)
        assert result.answers == plain.query("a b*", source).answers
        assert engine.stats.rewrites_applied == 1

    def test_describe_mentions_cache_activity(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a", source)
        engine.query("a", source)
        text = engine.describe()
        assert "cache hits: 1" in text


class TestPlannerBackend:
    def test_engine_backend_agrees_with_baseline(self):
        from repro.constraints import ConstraintSet
        from repro.optimize import plan_and_evaluate

        instance, source = figure2_graph()
        baseline = plan_and_evaluate("a b*", source, instance, ConstraintSet())
        compiled = plan_and_evaluate(
            "a b*", source, instance, ConstraintSet(), backend="engine"
        )
        assert compiled.answers == baseline.answers
        assert compiled.backend == "engine"
        assert "backend: engine" in compiled.summary()

    def test_unknown_backend_rejected(self):
        from repro.constraints import ConstraintSet
        from repro.optimize import plan_and_evaluate

        instance, source = figure2_graph()
        with pytest.raises(ValueError):
            plan_and_evaluate("a", source, instance, ConstraintSet(), backend="turbo")


class TestEvaluateDelegation:
    def test_large_instances_route_through_shared_engine(self):
        from repro.engine.session import _SHARED_ENGINE_ATTR
        from repro.query import evaluate

        instance, source = random_graph(80, 2, ["a", "b"], seed=4)
        result = evaluate("a b*", source, instance)
        engine = getattr(instance, _SHARED_ENGINE_ATTR)
        assert engine is not None
        assert engine.stats.single_evaluations == 1
        assert result.answers == evaluate_baseline("a b*", source, instance).answers
        # Second call reuses both the engine and the compiled query.
        evaluate("a b*", source, instance)
        assert engine.compiler.hits == 1

    def test_small_instances_stay_on_baseline(self):
        from repro.engine.session import _SHARED_ENGINE_ATTR
        from repro.query import evaluate

        instance, source = figure2_graph()
        evaluate("a b*", source, instance)
        assert getattr(instance, _SHARED_ENGINE_ATTR, None) is None

    def test_budgeted_calls_stay_on_baseline(self):
        from repro.engine.session import _SHARED_ENGINE_ATTR
        from repro.query import evaluate

        instance, source = random_graph(80, 2, ["a", "b"], seed=4)
        evaluate("a", source, instance, max_objects=1000)
        assert getattr(instance, _SHARED_ENGINE_ATTR, None) is None

    def test_delegated_mutation_is_picked_up(self):
        from repro.query import evaluate

        instance, source = random_graph(80, 2, ["a", "b"], seed=4)
        assert evaluate("zz", source, instance).answers == set()
        instance.add_edge(source, "zz", "fresh")
        assert evaluate("zz", source, instance).answers == {"fresh"}

    def test_all_sources_delegates_and_agrees(self):
        from repro.query import evaluate_all_sources

        instance, _ = random_graph(70, 2, ["a", "b"], seed=6)
        results = evaluate_all_sources("a b*", instance)
        for oid in sorted(instance.objects, key=repr)[:10]:
            assert results[oid] == evaluate_baseline("a b*", oid, instance).answers


class TestCompiledGraphDeletes:
    def test_remove_csr_edge_tombstones_it(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        source, label, destination = next(instance.edges())
        before = graph.edge_count()
        graph.remove_edge(source, label, destination)
        assert graph.edge_count() == before - 1
        assert graph.tombstone_count() == 1
        lid = graph.label_id(label)
        assert graph.node_id(destination) not in set(
            graph.successors(graph.node_id(source), lid)
        )

    def test_remove_overflow_edge_drops_it_directly(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        graph.add_edge("o1", "a", "o3")
        assert graph.overflow_edge_count() == 1
        graph.remove_edge("o1", "a", "o3")
        assert graph.overflow_edge_count() == 0
        assert graph.tombstone_count() == 0
        assert graph.edge_count() == instance.edge_count()

    def test_remove_unknown_edge_raises(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        with pytest.raises(InstanceError):
            graph.remove_edge("o1", "zz", "o2")
        with pytest.raises(InstanceError):
            graph.remove_edge("o1", "a", "o1")

    def test_readd_revives_tombstoned_slot(self):
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        edge = next(instance.edges())
        graph.remove_edge(*edge)
        graph.add_edge(*edge)
        assert graph.tombstone_count() == 0
        assert graph.overflow_edge_count() == 0
        assert graph.edge_count() == instance.edge_count()
        lid = graph.label_id(edge[1])
        assert graph.node_id(edge[2]) in set(
            graph.successors(graph.node_id(edge[0]), lid)
        )

    def test_compact_after_deletes_drops_tombstones(self):
        # Regression: compaction must fold overflow in AND tombstones out,
        # with edge_count/overflow_edge_count/tombstone_count all consistent.
        instance, _ = figure2_graph()
        graph = CompiledGraph.from_instance(instance)
        removed = next(instance.edges())
        graph.remove_edge(*removed)
        graph.add_edge("o1", "zz", "fresh")
        expected_edges = instance.edge_count()  # -1 removed, +1 added
        assert graph.edge_count() == expected_edges
        graph.compact()
        assert graph.tombstone_count() == 0
        assert graph.overflow_edge_count() == 0
        assert graph.edge_count() == expected_edges
        source, label, destination = removed
        lid = graph.label_id(label)
        assert graph.node_id(destination) not in set(
            graph.successors(graph.node_id(source), lid)
        )
        assert graph.oid_of(
            next(iter(graph.successors(graph.node_id("o1"), graph.label_id("zz"))))
        ) == "fresh"

    def test_many_removals_trigger_auto_compaction(self):
        instance, _ = random_graph(60, 4, ["a", "b"], seed=12)
        graph = CompiledGraph.from_instance(instance)
        edges = list(instance.edges())
        for edge in edges[: len(edges) // 2]:
            graph.remove_edge(*edge)
        # The tombstone threshold mirrors the overflow one; after deleting
        # half the graph the structure must have compacted at least once.
        assert graph.tombstone_count() <= max(64, graph.edge_count() // 4)
        remaining = set(edges[len(edges) // 2 :])
        assert {
            (graph.oid_of(s), graph.labels.value_of(l), graph.oid_of(d))
            for s, l, d in graph.iter_edges()
        } == remaining


class TestEngineIncrementalRemove:
    def test_remove_edge_is_incremental(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        engine.add_edge(source, "c", "o3")
        assert engine.query("c", source).answers == {"o3"}
        engine.remove_edge(source, "c", "o3")
        assert engine.query("c", source).answers == set()
        assert engine.stats.graph_builds == 1
        assert engine.stats.incremental_removals == 1

    def test_remove_edge_keeps_compiled_tables_valid(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        assert engine.query("a b*", source).answers == {"o2", "o3"}
        compiles_before = engine.compiler.misses
        engine.remove_edge("o2", "b", "o3")
        assert engine.query("a b*", source).answers == {"o2"}
        # No new label ids => the cached transition table was reused.
        assert engine.compiler.misses == compiles_before

    def test_stats_report_backend_runs(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance, backend="python")
        engine.query("a", source)
        engine.query_all("a")
        assert engine.stats.backend_runs == {"python": 2}
        assert "backend runs: python=2" in engine.describe()


class TestIsolatedObjectFastPath:
    """Regression: ``Instance.add_object`` of an isolated node must not force
    a full rebuild (``graph_builds`` jumping to 2) nor wipe the query cache —
    the node interner grows in place instead."""

    def test_add_object_keeps_graph_and_cache(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        engine.query("a b*", source)
        compiles = engine.compiler.misses
        graph_before = engine.graph
        instance.add_object("lonely")  # bypasses the engine
        result = engine.query("a b*", source)
        assert result.answers == {"o2", "o3"}
        assert engine.stats.graph_builds == 1  # no rebuild
        assert engine.graph is graph_before  # same compiled graph object
        assert engine.compiler.misses == compiles  # cache stayed warm
        assert engine.compiler.hits >= 1
        assert engine.stats.interner_growths == 1

    def test_added_object_is_queryable(self):
        instance, _ = figure2_graph()
        engine = Engine.open(instance)
        engine.query_all("a")
        instance.add_object("lonely")
        assert engine.query("a*", "lonely").answers == {"lonely"}
        assert engine.query("a", "lonely").answers == set()
        results = engine.query_all("a*")
        assert "lonely" in results
        assert engine.stats.graph_builds == 1

    def test_edge_mutation_still_rebuilds(self):
        instance, source = figure2_graph()
        engine = Engine.open(instance)
        instance.add_object("lonely")
        instance.add_edge(source, "c", "lonely")  # edge change => rebuild
        assert engine.query("c", source).answers == {"lonely"}
        assert engine.stats.graph_builds == 2


class TestFingerprintCacheKey:
    """Regression: the compile cache is keyed by the label interner
    fingerprint, so correctness does not depend on a manual ``clear()``
    around rebuilds that preserve the label *count* but permute ids."""

    def test_permuted_label_order_cannot_share_tables(self):
        # Two graphs over the same two labels, interned in opposite orders
        # (interning follows the repr-sorted edge iteration order).
        first = CompiledGraph.from_instance(Instance([(0, "a", 1), (1, "b", 2)]))
        second = CompiledGraph.from_instance(Instance([(0, "b", 1), (1, "a", 2)]))
        assert first.num_labels == second.num_labels
        assert first.labels_fingerprint() != second.labels_fingerprint()
        compiler = QueryCompiler()
        table_first = compiler.compile("a", first)
        table_second = compiler.compile("a", second)
        assert compiler.misses == 2  # no stale sharing
        assert table_first is not table_second
        run_first = run_single(first, table_first, first.node_id(0))
        run_second = run_single(second, table_second, second.node_id(1))
        assert {first.oid_of(node) for node in run_first.answers} == {1}
        assert {second.oid_of(node) for node in run_second.answers} == {2}

    def test_rebuild_with_permuted_interning_answers_correctly(self):
        # Removing the repr-first 'a' edge makes 'b' intern as label 0 on
        # rebuild while the label count stays 2; answers must stay right
        # even though refresh() no longer clears the cache manually.
        instance = Instance([(0, "a", 9), (1, "b", 2), (2, "a", 3)])
        engine = Engine.open(instance)
        assert engine.query("b", 1).answers == {2}
        instance.remove_edge(0, "a", 9)  # bypasses the engine
        assert engine.query("b", 1).answers == {2}
        assert engine.query("a", 2).answers == {3}
        assert engine.stats.graph_builds == 2

    def test_order_preserving_rebuild_keeps_cache_warm(self):
        instance = Instance([(0, "a", 1), (1, "b", 2)])
        engine = Engine.open(instance)
        engine.query("a b", 0)
        compiles = engine.compiler.misses
        instance.add_edge(2, "b", 0)  # bypasses the engine; same label order
        assert engine.query("a b", 0).answers == {2}
        assert engine.stats.graph_builds == 2
        assert engine.compiler.misses == compiles  # fingerprint unchanged


class TestSharedEngineLifetime:
    """Regression: ``shared_engine`` must not create an
    ``Instance -> Engine -> Instance`` reference cycle."""

    def test_dropped_instance_frees_engine_without_gc(self):
        import weakref

        from repro.engine.session import shared_engine

        instance, _ = random_graph(40, 2, ["a", "b"], seed=11)
        engine = shared_engine(instance)
        assert shared_engine(instance) is engine  # memoized
        engine_ref = weakref.ref(engine)
        graph_ref = weakref.ref(engine.graph)
        del engine
        del instance
        # Plain refcounting must suffice: no gc.collect() heroics.
        assert engine_ref() is None
        assert graph_ref() is None

    def test_shared_engine_still_serves_and_refreshes(self):
        from repro.engine.session import shared_engine

        instance, source = random_graph(40, 2, ["a", "b"], seed=11)
        engine = shared_engine(instance)
        baseline = evaluate_baseline("a b*", source, instance).answers
        assert engine.query("a b*", source).answers == baseline
        instance.add_edge(source, "zz", "fresh")
        assert engine.query("zz", source).answers == {"fresh"}

    def test_engine_outliving_instance_keeps_serving_reads(self):
        from repro.engine.session import shared_engine
        from repro.exceptions import ReproError

        instance, source = random_graph(40, 2, ["a", "b"], seed=11)
        expected = evaluate_baseline("a b*", source, instance).answers
        engine = shared_engine(instance)
        del instance  # caller kept only the engine
        # A dead instance can never mutate, so the frozen compiled graph
        # keeps answering queries; only mutation and save must raise.
        assert engine.query("a b*", source).answers == expected
        assert engine.query_batch("a", [source])
        with pytest.raises(ReproError, match="garbage-collected"):
            engine.add_edge(source, "zz", "fresh")
