"""Tests for the structured request surface (``repro.engine.request``).

``normalize`` is the single entry every layer lowers through, so its
canonicalization rules (conjunctive bodies parsed with sources folded into
bindings, scalar bodies untouched), its validation errors, and — crucially —
the one-release deprecation contract are pinned here: each legacy positional
``QueryServer.submit*`` spelling must emit a ``DeprecationWarning`` *and*
return exactly what the structured spelling returns.
"""

import asyncio

import pytest

from repro.engine import Engine
from repro.engine.conjunctive import ConjunctiveQuery, parse_crpq
from repro.engine.request import CRPQRequest, QueryRequest, normalize
from repro.exceptions import ReproError
from repro.graph import web_like_graph


def web(nodes=30, seed=7):
    instance, root = web_like_graph(nodes, ["a", "b", "c"], seed=seed)
    return instance, root


CRPQ_TEXT = "MATCH x -[a]-> y, y -[b]-> z RETURN x, z"


# ---------------------------------------------------------------------------
# QueryRequest construction and validation.
# ---------------------------------------------------------------------------
class TestQueryRequest:
    def test_sources_coerced_to_tuple(self):
        request = QueryRequest(query="a b", sources=["s1", "s2"])
        assert request.sources == ("s1", "s2")

    def test_frozen(self):
        request = QueryRequest(query="a")
        with pytest.raises(AttributeError):
            request.limit = 3

    def test_limit_must_be_positive(self):
        with pytest.raises(ReproError, match="positive integer"):
            QueryRequest(query="a", limit=0)
        with pytest.raises(ReproError, match="positive integer"):
            QueryRequest(query="a", limit="5")

    def test_cursor_requires_limit(self):
        with pytest.raises(ReproError, match="cursor"):
            QueryRequest(query="a", cursor="abc")

    def test_stream_excludes_pagination(self):
        with pytest.raises(ReproError, match="mutually exclusive"):
            QueryRequest(query="a", limit=2, stream=True)

    def test_is_conjunctive_detects_text_and_parsed_forms(self):
        assert QueryRequest(query=CRPQ_TEXT).is_conjunctive
        assert QueryRequest(query=parse_crpq(CRPQ_TEXT)).is_conjunctive
        assert not QueryRequest(query="a (b + c)*").is_conjunctive
        # A scalar label that merely *starts* with the letters MATCH is not
        # conjunctive syntax (the keyword needs trailing whitespace).
        assert not QueryRequest(query="MATCHBOX").is_conjunctive

    def test_source_accessor(self):
        assert QueryRequest(query="a", sources=("s",)).source == "s"
        assert QueryRequest(query="a").source is None
        with pytest.raises(ReproError, match="use .sources"):
            QueryRequest(query="a", sources=("s", "t")).source


# ---------------------------------------------------------------------------
# normalize lowering rules.
# ---------------------------------------------------------------------------
class TestNormalize:
    def test_scalar_string_with_source(self):
        request = normalize("a b", "s1")
        assert request == QueryRequest(query="a b", sources=("s1",))

    def test_scalar_keeps_expression_unparsed(self):
        # Engines parse scalar expressions themselves; normalize must not.
        request = normalize("a (b + c)*", sources=("s1", "s2"))
        assert request.query == "a (b + c)*"
        assert request.sources == ("s1", "s2")

    def test_source_and_sources_are_exclusive(self):
        with pytest.raises(ReproError, match="not both"):
            normalize("a", "s1", sources=("s2",))

    def test_conjunctive_text_is_parsed_and_source_folded(self):
        request = normalize(CRPQ_TEXT, "root")
        assert isinstance(request.query, ConjunctiveQuery)
        assert request.sources == ()  # folded into WHERE bindings
        assert request.query.bindings == (("x", "root"),)

    def test_conjunctive_rejects_multiple_sources(self):
        with pytest.raises(ReproError, match="at most one source"):
            normalize(CRPQ_TEXT, sources=("s1", "s2"))

    def test_crpq_request_folds_its_source(self):
        request = normalize(CRPQRequest(query=CRPQ_TEXT, source="root"))
        assert request.query == parse_crpq(CRPQ_TEXT).with_source("root")
        with pytest.raises(ReproError, match="already carries"):
            normalize(CRPQRequest(query=CRPQ_TEXT), "root2")

    def test_idempotent(self):
        for raw in ("a b", CRPQ_TEXT, CRPQRequest(query=CRPQ_TEXT, source="r")):
            once = normalize(raw, "s1") if isinstance(raw, str) else normalize(raw)
            assert normalize(once) == once

    def test_query_request_passthrough_rejects_conflicts(self):
        request = QueryRequest(query="a", sources=("s1",))
        with pytest.raises(ReproError, match="already carries sources"):
            normalize(request, "s2")
        with pytest.raises(ReproError, match="on the request itself"):
            normalize(QueryRequest(query="a"), limit=3)

    def test_query_request_conjunctive_body_is_canonicalized(self):
        request = normalize(QueryRequest(query=CRPQ_TEXT, sources=("root",)))
        assert isinstance(request.query, ConjunctiveQuery)
        assert request.sources == ()
        assert request.query.bindings == (("x", "root"),)

    def test_pagination_fields_thread_through(self):
        request = normalize("a", "s", limit=5, cursor=None)
        assert (request.limit, request.cursor, request.stream) == (5, None, False)
        streaming = normalize("a", "s", stream=True)
        assert streaming.stream


# ---------------------------------------------------------------------------
# The deprecation contract: legacy positional == structured, with a warning.
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def test_submit_legacy_equals_structured_and_warns(self):
        instance, _ = web()
        engine = Engine.open(instance)
        source = sorted(instance.objects, key=repr)[0]

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                with pytest.warns(DeprecationWarning, match="QueryRequest"):
                    legacy = await server.submit("a (b + c)*", source)
                structured = await server.submit(
                    QueryRequest(query="a (b + c)*", sources=(source,))
                )
                return legacy, structured

        legacy, structured = asyncio.run(scenario())
        assert legacy == structured

    def test_submit_many_legacy_equals_structured_and_warns(self):
        instance, _ = web()
        engine = Engine.open(instance)
        sources = sorted(instance.objects, key=repr)[:5]

        async def scenario():
            async with engine.as_server(max_delay=0.01) as server:
                with pytest.warns(DeprecationWarning, match="QueryRequest"):
                    legacy = await server.submit_many("a b", sources)
                structured = await server.submit_many(
                    QueryRequest(query="a b", sources=tuple(sources))
                )
                return legacy, structured

        legacy, structured = asyncio.run(scenario())
        assert legacy == structured

    def test_submit_nowait_and_stream_warn(self):
        instance, _ = web()
        engine = Engine.open(instance)
        source = sorted(instance.objects, key=repr)[0]

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                with pytest.warns(DeprecationWarning, match="QueryRequest"):
                    nowait = await server.submit_nowait("a", source)
                with pytest.warns(DeprecationWarning, match="QueryRequest"):
                    streamed = await server.submit_stream("a", source).result()
                return nowait, streamed

        nowait, streamed = asyncio.run(scenario())
        assert nowait == streamed

    def test_structured_requests_do_not_warn(self):
        import warnings

        instance, _ = web()
        engine = Engine.open(instance)
        source = sorted(instance.objects, key=repr)[0]

        async def scenario():
            async with engine.as_server(max_delay=0.0) as server:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", DeprecationWarning)
                    return await server.submit(
                        QueryRequest(query="a", sources=(source,))
                    )

        asyncio.run(scenario())  # raises if any DeprecationWarning fired

    def test_engine_query_batch_accepts_requests_without_warning(self):
        import warnings

        instance, _ = web()
        engine = Engine.open(instance)
        sources = sorted(instance.objects, key=repr)[:3]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            classic = engine.query_batch("a b", sources)
            structured = engine.query_batch(
                QueryRequest(query="a b", sources=tuple(sources))
            )
        assert classic == structured

    def test_engine_query_batch_rejects_double_sources(self):
        instance, _ = web()
        engine = Engine.open(instance)
        request = QueryRequest(query="a", sources=("s",))
        with pytest.raises(ReproError, match="inside the QueryRequest"):
            engine.query_batch(request, ["s"])

    def test_engine_query_batch_rejects_conjunctive(self):
        instance, _ = web()
        engine = Engine.open(instance)
        with pytest.raises(ReproError, match="query_conjunctive"):
            engine.query_batch(QueryRequest(query=CRPQ_TEXT))
