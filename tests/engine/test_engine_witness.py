"""Witness-path validation for both executors, single and batched mode.

Every witness any mode returns is checked two ways against ground truth:
its label word is replayed edge-by-edge on the ``Instance`` (the path must
actually exist from the source and land on the answer), and the word itself
must be accepted by the query's DFA (via ``RegularPathQuery.accepts_word``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _strategies import regexes, small_instances
from repro.engine import (
    CompiledGraph,
    Engine,
    lower_query,
    numpy_available,
    run_batch,
)
from repro.graph import figure2_graph, random_graph
from repro.query import RegularPathQuery

EXECUTOR_BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


def assert_word_spells_path(instance, source, target, word):
    frontier = {source}
    for label in word:
        frontier = {
            successor
            for node in frontier
            for successor in instance.successors(node, label)
        }
    assert target in frontier, (source, target, word)


def assert_result_witnesses_real(result, rpq, source, instance):
    assert set(result.witness_paths) == result.answers
    for answer, word in result.witness_paths.items():
        assert rpq.accepts_word(word), (answer, word)
        assert_word_spells_path(instance, source, answer, word)


# ---------------------------------------------------------------------------
# Single-source mode, per backend.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_single_source_witnesses_replay(backend):
    instance, source = random_graph(30, 2, ["a", "b", "c"], seed=11)
    engine = Engine.open(instance, backend=backend)
    for text in ("a b*", "(a + b)* c", "%", "a? b? c?", "(a b)* c?"):
        rpq = RegularPathQuery.of(text)
        result = engine.query(rpq, source)
        assert_result_witnesses_real(result, rpq, source, instance)
    assert set(engine.stats.backend_runs) == {backend}


@given(small_instances(max_nodes=6, max_edges=12), regexes(max_leaves=5))
@settings(max_examples=40, deadline=None)
def test_single_source_witnesses_replay_fuzzed(graph_and_source, expression):
    instance, source = graph_and_source
    rpq = RegularPathQuery.of(expression)
    for backend in EXECUTOR_BACKENDS:
        engine = Engine.open(instance, backend=backend)
        result = engine.query(rpq, source)
        assert_result_witnesses_real(result, rpq, source, instance)


# ---------------------------------------------------------------------------
# Batched mode: witnesses reconstructed on demand from the shared traversal.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_batched_witnesses_replay(backend):
    instance, _ = random_graph(25, 2, ["a", "b"], seed=4)
    engine = Engine.open(instance, backend=backend)
    sources = sorted(instance.objects, key=repr)
    for text in ("a b*", "(a + b)*", "b a? b?"):
        rpq = RegularPathQuery.of(text)
        results = engine.query_batch_results(rpq, sources)
        assert set(results) == set(sources)
        total = 0
        for source, result in results.items():
            assert result.answers == engine.answer_set(rpq, source)
            assert_result_witnesses_real(result, rpq, source, instance)
            total += len(result.witness_paths)
        assert total > 0, text


@given(
    small_instances(max_nodes=6, max_edges=12),
    regexes(max_leaves=5),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_batched_witnesses_replay_fuzzed(graph_and_source, expression, picks):
    instance, _ = graph_and_source
    objects = sorted(instance.objects, key=repr)
    sources = [objects[pick % len(objects)] for pick in picks]
    rpq = RegularPathQuery.of(expression)
    for backend in EXECUTOR_BACKENDS:
        engine = Engine.open(instance, backend=backend)
        results = engine.query_batch_results(rpq, sources)
        for source in sources:
            assert_result_witnesses_real(results[source], rpq, source, instance)


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_batched_witnesses_at_executor_level(backend):
    """run_batch(witnesses=True) resolves label-id words for every answer."""
    instance, _ = figure2_graph()
    graph = CompiledGraph.from_instance(instance)
    rpq = RegularPathQuery.of("a b*")
    compiled = lower_query(rpq, graph)
    sources = list(range(graph.num_nodes))
    run = run_batch(graph, compiled, sources, witnesses=True, backend=backend)
    label_of = graph.labels.value_of
    resolved = 0
    for position, source in enumerate(run.sources):
        for target in run.answers[position]:
            word_ids = run.witness(source, target)
            assert word_ids is not None
            word = tuple(label_of(label_id) for label_id in word_ids)
            assert rpq.accepts_word(word)
            assert_word_spells_path(
                instance, graph.oid_of(source), graph.oid_of(target), word
            )
            resolved += 1
    assert resolved > 0
    # Non-answers (and unknown sources) resolve to None.
    for position, source in enumerate(run.sources):
        non_answers = set(range(graph.num_nodes)) - run.answers[position]
        for target in sorted(non_answers)[:2]:
            assert run.witness(source, target) is None


def test_witness_requires_opt_in():
    instance, _ = figure2_graph()
    graph = CompiledGraph.from_instance(instance)
    compiled = lower_query("a", graph)
    run = run_batch(graph, compiled, [0], backend="python")
    with pytest.raises(ValueError):
        run.witness(0, 1)


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_witness_rejects_stale_graph(backend):
    """Mutating the graph between the run and witness() raises, not mis-resolves."""
    instance, _ = figure2_graph()
    graph = CompiledGraph.from_instance(instance)
    compiled = lower_query("a b*", graph)
    run = run_batch(
        graph, compiled, list(range(graph.num_nodes)), witnesses=True, backend=backend
    )
    source, label, destination = next(instance.edges())
    graph.remove_edge(source, label, destination)
    with pytest.raises(ValueError, match="mutated"):
        run.witness(0, 1)


# ---------------------------------------------------------------------------
# Witnesses survive incremental deletes: tombstoned edges must never appear.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_witnesses_avoid_tombstoned_edges(backend):
    instance, _ = random_graph(20, 3, ["a", "b"], seed=8)
    engine = Engine.open(instance, backend=backend)
    rpq = RegularPathQuery.of("(a + b)* a")
    engine.query_all(rpq)  # warm the traversal once before mutating
    removed = list(instance.edges())[::3]
    for edge in removed:
        engine.remove_edge(*edge)
    assert engine.stats.graph_builds == 1
    sources = sorted(instance.objects, key=repr)
    results = engine.query_batch_results(rpq, sources)
    for source, result in results.items():
        # Replay against the *mutated* instance: a witness that used a
        # deleted edge would fail the path replay.
        assert_result_witnesses_real(result, rpq, source, instance)
        single = engine.query(rpq, source)
        assert single.answers == result.answers
        assert_result_witnesses_real(single, rpq, source, instance)
