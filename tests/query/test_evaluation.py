"""Tests for regular path queries and their centralized evaluation."""

import pytest

from repro.exceptions import InstanceError
from repro.graph import infinite_binary_web, random_graph
from repro.query import (
    RegularPathQuery,
    answer_set,
    answer_set_by_quotients,
    evaluate,
    evaluate_all_sources,
    evaluate_by_quotients,
    queries_agree_on,
)
from repro.regex import language_up_to, parse


def brute_force_answers(query_text, source, instance, max_length=8):
    """Ground-truth evaluation: enumerate words and follow concrete paths."""
    from repro.graph import path_labels_exist

    expression = parse(query_text)
    answers = set()
    for word in language_up_to(expression, max_length):
        answers |= path_labels_exist(instance, source, word)
    return answers


class TestRegularPathQuery:
    def test_from_string_and_str(self):
        query = RegularPathQuery.from_string("a b*")
        assert str(query) == "a b*"

    def test_accepts_word(self):
        query = RegularPathQuery.from_string("a b* c")
        assert query.accepts_word(("a", "c"))
        assert not query.accepts_word(("a", "b"))

    def test_equivalence_is_language_equality(self):
        assert RegularPathQuery.from_string("(a b)* a").equivalent_to("a (b a)*")
        assert not RegularPathQuery.from_string("(a b)*").equivalent_to("a (b a)*")

    def test_containment(self):
        assert RegularPathQuery.from_string("a b").contained_in("a (b + c)")
        assert not RegularPathQuery.from_string("a (b + c)").contained_in("a b")

    def test_is_recursive(self):
        assert RegularPathQuery.from_string("a b*").is_recursive()
        assert not RegularPathQuery.from_string("a (b + c)").is_recursive()
        assert not RegularPathQuery.from_string("(% + ~)*").is_recursive()

    def test_alphabet(self):
        assert RegularPathQuery.from_string("a (b + c)*").alphabet() == frozenset(
            {"a", "b", "c"}
        )


class TestEvaluation:
    def test_figure2_query(self, figure2):
        instance, source = figure2
        assert answer_set("a b*", source, instance) == {"o2", "o3"}

    def test_epsilon_query_returns_source(self, figure2):
        instance, source = figure2
        assert answer_set("%", source, instance) == {source}

    def test_empty_query_returns_nothing(self, figure2):
        instance, source = figure2
        assert answer_set("~", source, instance) == set()

    def test_unreachable_labels(self, figure2):
        instance, source = figure2
        assert answer_set("z*z", source, instance) == set()

    def test_witness_paths_spell_accepted_words(self, figure2):
        instance, source = figure2
        result = evaluate("a b*", source, instance)
        query = RegularPathQuery.from_string("a b*")
        for answer, path in result.witness_paths.items():
            assert query.accepts_word(path)
            assert answer in result.answers

    def test_statistics_populated(self, figure2):
        instance, source = figure2
        result = evaluate("a b*", source, instance)
        assert result.visited_objects >= 3
        assert result.visited_pairs >= result.visited_objects - 1

    @pytest.mark.parametrize(
        "query_text",
        ["a (b + c)*", "(a + b)* c", "a b a", "(a b)* + (c)*", "b* a b*"],
    )
    def test_matches_brute_force_on_random_graphs(self, query_text):
        for seed in range(3):
            instance, source = random_graph(12, 2, ["a", "b", "c"], seed=seed)
            expected = brute_force_answers(query_text, source, instance, max_length=12)
            assert answer_set(query_text, source, instance) == expected

    def test_quotient_evaluator_agrees_with_product_evaluator(self):
        for seed in range(3):
            instance, source = random_graph(10, 2, ["a", "b"], seed=seed)
            for query_text in ["a b*", "(a + b)* a", "a (b a)*"]:
                assert answer_set(query_text, source, instance) == answer_set_by_quotients(
                    query_text, source, instance
                )

    def test_quotient_evaluator_reports_finitely_many_quotients(self, figure2):
        instance, source = figure2
        result = evaluate_by_quotients("a b*", source, instance)
        assert result.answers == {"o2", "o3"}
        assert 1 <= result.distinct_quotients <= 4

    def test_evaluate_all_sources(self, figure2):
        instance, _ = figure2
        table = evaluate_all_sources("b", instance)
        assert table["o2"] == {"o3"}
        assert table["o3"] == {"o2"}
        assert table["o1"] == set()

    def test_queries_agree_on_specific_instance_but_not_in_general(self, figure2):
        instance, source = figure2
        # On Figure 2, "a" and "a b" return different answers...
        assert not queries_agree_on("a", "a b", source, instance)
        # ...but the inequivalent queries "a b b" and "a" agree on this
        # particular instance (both reach exactly o2) -- the kind of
        # instance-specific coincidence that path constraints generalize.
        assert queries_agree_on("a b b", "a", source, instance)
        assert not RegularPathQuery.from_string("a b b").equivalent_to("a")


class TestLazyEvaluation:
    def test_requires_budget_on_lazy_instances(self):
        lazy, root = infinite_binary_web()
        with pytest.raises(InstanceError):
            evaluate("a b", root, lazy)

    def test_terminating_query_on_infinite_web(self):
        lazy, root = infinite_binary_web()
        result = evaluate("a b", root, lazy, max_objects=50)
        assert result.answers == {"ab"}

    def test_exhaustive_query_on_infinite_web_exceeds_budget(self):
        lazy, root = infinite_binary_web()
        with pytest.raises(InstanceError):
            evaluate("(a + b)* a", root, lazy, max_objects=30)

    def test_baseline_entry_point_also_requires_budget(self):
        from repro.query import evaluate_baseline

        lazy, root = infinite_binary_web()
        with pytest.raises(InstanceError):
            evaluate_baseline("a b", root, lazy)
