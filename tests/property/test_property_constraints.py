"""Property-based tests for the constraint machinery.

These are the most important properties in the reproduction: they tie the
syntactic decision procedures of Section 4 to the brute-force semantics on
concrete instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    ConstraintSet,
    PrefixRewriteSystem,
    implies_path_inclusion,
    implies_word_inclusion,
    lemma44_witness,
    rewrite_to_word_nfa,
    satisfies_all,
    word_equality,
)
from repro.constraints.armstrong import WordEqualityTheory
from repro.query import answer_set
from repro.regex import word as word_expr

from _strategies import word_constraint_sets, words


@given(word_constraint_sets(), words(("a", "b"), max_size=3), words(("a", "b"), max_size=3))
@settings(max_examples=30)
def test_saturation_agrees_with_brute_force_rewriting(constraints, lhs, rhs):
    """RewriteTo(v) membership == breadth-first prefix rewriting reachability."""
    system = PrefixRewriteSystem.from_constraints(constraints)
    automaton = rewrite_to_word_nfa(system, rhs)
    brute_force = system.rewrites_to(lhs, rhs, max_steps=3000, max_word_length=9)
    assert automaton.accepts(lhs) == brute_force


@given(
    word_constraint_sets(max_constraints=2, max_word_length=2, allow_epsilon_rhs=False),
    words(("a", "b"), max_size=2),
    words(("a", "b"), max_size=2),
)
@settings(max_examples=25)
def test_word_implication_soundness_on_the_lemma44_witness(constraints, lhs, rhs):
    """If E |= u <= v, then u(o,I) ⊆ v(o,I) on the Lemma 4.4 instance for E."""
    bound = max(len(lhs), len(rhs), constraints.max_word_length()) + 1
    witness = lemma44_witness(constraints, bound, alphabet={"a", "b"})
    assert satisfies_all(witness.instance, witness.source, constraints)
    if implies_word_inclusion(constraints, lhs, rhs):
        lhs_answers = answer_set(word_expr(lhs), witness.source, witness.instance)
        rhs_answers = answer_set(word_expr(rhs), witness.source, witness.instance)
        assert lhs_answers <= rhs_answers


@given(
    word_constraint_sets(max_constraints=2, max_word_length=2, allow_epsilon_rhs=False),
    words(("a", "b"), max_size=3),
    words(("a", "b"), max_size=3),
)
@settings(max_examples=25)
def test_word_implication_completeness_on_the_lemma44_witness(constraints, lhs, rhs):
    """If E ⊭ u <= v then the Lemma 4.4 witness violates u <= v (completeness)."""
    bound = max(len(lhs), len(rhs), constraints.max_word_length()) + 1
    witness = lemma44_witness(constraints, bound, alphabet={"a", "b"})
    if not implies_word_inclusion(constraints, lhs, rhs):
        lhs_answers = answer_set(word_expr(lhs), witness.source, witness.instance)
        rhs_answers = answer_set(word_expr(rhs), witness.source, witness.instance)
        assert not (lhs_answers <= rhs_answers)


@given(
    st.lists(
        st.tuples(words(("a", "b"), max_size=2), words(("a", "b"), max_size=2)),
        min_size=1,
        max_size=2,
    ),
    words(("a", "b"), max_size=3),
    words(("a", "b"), max_size=3),
)
@settings(max_examples=25)
def test_word_equality_theory_matches_symmetric_rewriting(pairs, u, v):
    constraints = ConstraintSet()
    for lhs, rhs in pairs:
        if not lhs and not rhs:
            lhs = ("a",)
        constraints.add(word_equality(lhs, rhs))
    theory = WordEqualityTheory(constraints, alphabet={"a", "b"})
    system = PrefixRewriteSystem.from_constraints(constraints)
    brute_force = system.rewrites_to(u, v, max_steps=3000, max_word_length=9)
    assert theory.equivalent(u, v) == brute_force


@given(word_constraint_sets(max_constraints=2, max_word_length=2))
@settings(max_examples=20)
def test_path_by_word_subsumes_word_implication(constraints):
    """On word conclusions the PSPACE procedure and the PTIME one agree."""
    probes = [((), ("a",)), (("a",), ("b",)), (("a", "b"), ("b",)), (("b", "b"), ("a",))]
    for lhs, rhs in probes:
        word_level = implies_word_inclusion(constraints, lhs, rhs)
        path_level = implies_path_inclusion(
            constraints, word_expr(lhs), word_expr(rhs)
        ).implied
        assert word_level == path_level


@given(word_constraint_sets(max_constraints=2, max_word_length=2, equalities=True))
@settings(max_examples=20)
def test_armstrong_sphere_satisfies_its_equalities(constraints):
    theory = WordEqualityTheory(constraints, alphabet={"a", "b"})
    radius = min(theory.default_sphere_radius(), 4)
    sphere, source = theory.sphere(radius)
    # The sphere restricted to radius-1 paths satisfies every equality whose
    # words fit well inside the sphere; checking all of E on the full sphere
    # can fail only at the boundary, so probe with the sphere's own radius
    # minus the constraint length.
    if radius >= constraints.max_word_length() + 1:
        inner_radius = radius - constraints.max_word_length()
        for constraint in constraints:
            lhs, rhs = constraint.word_sides()
            if max(len(lhs), len(rhs)) <= inner_radius:
                lhs_answers = answer_set(word_expr(lhs), source, sphere)
                rhs_answers = answer_set(word_expr(rhs), source, sphere)
                assert lhs_answers == rhs_answers
