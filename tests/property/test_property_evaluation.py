"""Property-based tests for query evaluation across all four evaluators."""

from hypothesis import given, settings

from repro.datalog import (
    answers_from,
    edb_from_instance,
    evaluate_seminaive,
    quotient_translation,
    state_translation,
)
from repro.distributed import run_distributed_query
from repro.graph import path_labels_exist
from repro.query import answer_set, answer_set_by_quotients
from repro.regex import language_up_to

from _strategies import regexes, small_instances


def brute_force(expression, source, instance, max_length=8):
    answers = set()
    for word in language_up_to(expression, max_length):
        answers |= path_labels_exist(instance, source, word)
    return answers


@given(regexes(max_leaves=4), small_instances())
@settings(max_examples=30)
def test_product_evaluator_matches_brute_force(expression, instance_and_source):
    instance, source = instance_and_source
    # Bound chosen so that every simple path plus a couple of cycle traversals
    # is covered: |V| * (expression size) is a generous over-approximation for
    # graphs this small.
    bound = max(8, len(instance) * 2 + 2)
    assert answer_set(expression, source, instance) == brute_force(
        expression, source, instance, bound
    )


@given(regexes(max_leaves=4), small_instances())
@settings(max_examples=25)
def test_quotient_evaluator_matches_product_evaluator(expression, instance_and_source):
    instance, source = instance_and_source
    assert answer_set_by_quotients(expression, source, instance) == answer_set(
        expression, source, instance
    )


@given(regexes(max_leaves=4), small_instances())
@settings(max_examples=20)
def test_datalog_translations_match_product_evaluator(expression, instance_and_source):
    instance, source = instance_and_source
    expected = answer_set(expression, source, instance)
    for translate in (quotient_translation, state_translation):
        translated = translate(expression)
        database, _ = evaluate_seminaive(
            translated.program, edb_from_instance(instance, source)
        )
        assert answers_from(database, translated.answer_predicate) == expected


@given(regexes(max_leaves=4), small_instances())
@settings(max_examples=20)
def test_distributed_evaluator_matches_product_evaluator(expression, instance_and_source):
    instance, source = instance_and_source
    expected = answer_set(expression, source, instance)
    result = run_distributed_query(
        expression, source, instance, asker="client", max_messages=20_000
    )
    assert result.answers == expected
    assert result.terminated
