"""Property-based tests for the regex/automata substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    accepted_language_up_to,
    complement_nfa,
    equivalent,
    includes,
    intersection_nfa,
    is_empty,
    is_finite_language,
    minimize_dfa,
    nfa_to_dfa,
    nfa_to_regex,
    regex_to_glushkov_nfa,
    regex_to_nfa,
    union_nfa,
)
from repro.regex import (
    derivative,
    language_up_to,
    matches,
    parse,
    simplify,
    to_string,
)

from _strategies import regexes, words


@given(regexes(), words(max_size=4))
def test_thompson_membership_equals_derivative_membership(expression, word):
    """The automaton route and the derivative route agree on membership."""
    assert regex_to_nfa(expression).accepts(word) == matches(expression, word)


@given(regexes(), words(max_size=4))
def test_glushkov_equals_thompson_membership(expression, word):
    assert regex_to_glushkov_nfa(expression).accepts(word) == matches(expression, word)


@given(regexes())
def test_simplify_preserves_language(expression):
    assert equivalent(regex_to_nfa(expression), regex_to_nfa(simplify(expression)))


@given(regexes())
def test_printer_parser_round_trip(expression):
    assert equivalent(regex_to_nfa(parse(to_string(expression))), regex_to_nfa(expression))


@given(regexes(), st.sampled_from(["a", "b", "c"]), words(max_size=3))
def test_derivative_is_the_language_quotient(expression, label, word):
    """w ∈ L(p)/l iff l·w ∈ L(p)."""
    quotient = derivative(expression, label)
    assert matches(quotient, word) == matches(expression, (label,) + tuple(word))


@given(regexes())
@settings(max_examples=25)
def test_state_elimination_round_trip(expression):
    nfa = regex_to_nfa(expression)
    assert equivalent(regex_to_nfa(nfa_to_regex(nfa)), nfa)


@given(regexes())
@settings(max_examples=25)
def test_minimized_dfa_preserves_language(expression):
    nfa = regex_to_nfa(expression)
    assert equivalent(minimize_dfa(nfa_to_dfa(nfa)).to_nfa(), nfa)


@given(regexes(), regexes())
@settings(max_examples=25)
def test_union_and_intersection_are_boolean(first, second):
    first_nfa, second_nfa = regex_to_nfa(first), regex_to_nfa(second)
    union = union_nfa(first_nfa, second_nfa)
    intersection = intersection_nfa(first_nfa, second_nfa)
    first_words = language_up_to(first, 3)
    second_words = language_up_to(second, 3)
    assert accepted_language_up_to(union, 3) == first_words | second_words
    assert accepted_language_up_to(intersection, 3) == first_words & second_words


@given(regexes(), words(max_size=4))
@settings(max_examples=25)
def test_complement_flips_membership(expression, word):
    nfa = regex_to_nfa(expression)
    complement = complement_nfa(nfa, alphabet={"a", "b", "c"})
    assert nfa.accepts(word) != complement.accepts(word)


@given(regexes(), regexes())
@settings(max_examples=25)
def test_inclusion_is_consistent_with_bounded_languages(first, second):
    if includes(regex_to_nfa(second), regex_to_nfa(first)):
        assert language_up_to(first, 3) <= language_up_to(second, 3)


@given(regexes())
def test_empty_iff_no_short_words_and_finite(expression):
    nfa = regex_to_nfa(expression)
    if is_empty(nfa):
        assert language_up_to(expression, 3) == set()
    if is_finite_language(nfa):
        # A finite language is fully contained within words shorter than the
        # number of useful states.
        bound = len(nfa.trim())
        assert accepted_language_up_to(nfa, bound) == accepted_language_up_to(
            nfa, bound + 2
        )
