"""Tests for Brzozowski derivatives, quotients, and the language helpers."""

from repro.regex import (
    all_quotients,
    denotes_finite_language,
    derivative,
    derivative_word,
    enumerate_words,
    expression_length_bounds,
    is_recursion_free,
    language_up_to,
    matches,
    parse,
    shortest_word,
    simplify,
)
from repro.regex.ast import EmptySet, Epsilon, Symbol


class TestDerivative:
    def test_symbol(self):
        assert derivative(Symbol("a"), "a") == Epsilon()
        assert derivative(Symbol("a"), "b") == EmptySet()

    def test_quotient_semantics_on_examples(self):
        # (a b)* / a = b (a b)*
        expression = parse("(a b)*")
        quotient = simplify(derivative(expression, "a"))
        assert matches(quotient, ("b",))
        assert matches(quotient, ("b", "a", "b"))
        assert not matches(quotient, ())

    def test_derivative_word(self):
        expression = parse("a b* c")
        residual = derivative_word(expression, ("a", "b", "b"))
        assert matches(residual, ("c",))
        assert not matches(residual, ())

    def test_matches_agrees_with_language_enumeration(self):
        expression = parse("a (b + c)* a")
        words = language_up_to(expression, 4)
        for word in words:
            assert matches(expression, word)
        assert ("a", "b", "a") in words
        assert ("a",) not in words

    def test_quotient_by_word_equals_paper_definition(self):
        # L/l = {w | l·w ∈ L} -- check extensionally on bounded words.
        expression = parse("a b* + c")
        quotient = simplify(derivative(expression, "a"))
        expected = {word[1:] for word in language_up_to(expression, 4) if word[:1] == ("a",)}
        assert language_up_to(quotient, 3) == expected


class TestAllQuotients:
    def test_finitely_many_quotients(self):
        expression = parse("(a + b)* a (a + b)")
        table = all_quotients(expression)
        # The set of simplified derivatives is finite and small for this input.
        assert 1 <= len(table) <= 32
        # Every entry maps every alphabet label to another entry.
        for row in table.values():
            for successor in row.values():
                assert successor in table

    def test_quotients_contain_the_expression_itself(self):
        expression = simplify(parse("a b*"))
        assert expression in all_quotients(expression)

    def test_single_word_quotients(self):
        table = all_quotients(parse("a b c"))
        nullable = [q for q in table if q.nullable()]
        assert Epsilon() in nullable


class TestLanguageHelpers:
    def test_is_recursion_free(self):
        assert is_recursion_free(parse("a b + c"))
        assert not is_recursion_free(parse("a b*"))

    def test_denotes_finite_language(self):
        assert denotes_finite_language(parse("a (b + c) d"))
        assert not denotes_finite_language(parse("a b* c"))
        # A star over the empty language is still finite.
        assert denotes_finite_language(parse("~* a"))

    def test_enumerate_words_shortlex(self):
        words = list(enumerate_words(parse("a* b"), 3))
        assert words == sorted(words, key=lambda w: (len(w), w))
        assert ("b",) in words and ("a", "a", "b") in words

    def test_shortest_word(self):
        assert shortest_word(parse("a a + b")) == ("b",)
        assert shortest_word(parse("a*")) == ()
        assert shortest_word(parse("~")) is None

    def test_expression_length_bounds(self):
        assert expression_length_bounds(parse("a b + c")) == (1, 2)
        assert expression_length_bounds(parse("a b*")) == (1, None)
        assert expression_length_bounds(parse("~")) == (-1, None)
        assert expression_length_bounds(parse("%")) == (0, 0)
