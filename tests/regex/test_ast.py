"""Tests for the regular-expression AST and smart constructors."""

import pytest

from repro.regex.ast import (
    Concat,
    EmptySet,
    Epsilon,
    Star,
    Symbol,
    Union,
    concat,
    concat_all,
    star,
    sym,
    union,
    union_all,
    word,
)


class TestNodes:
    def test_symbol_requires_nonempty_label(self):
        with pytest.raises(ValueError):
            Symbol("")

    def test_symbol_is_word(self):
        assert Symbol("a").as_word() == ("a",)
        assert Symbol("a").is_word()

    def test_epsilon_is_the_empty_word(self):
        assert Epsilon().as_word() == ()
        assert Epsilon().nullable()

    def test_empty_set_is_not_a_word(self):
        assert EmptySet().as_word() is None
        assert not EmptySet().nullable()

    def test_concat_word(self):
        expression = concat(Symbol("a"), concat(Symbol("b"), Symbol("c")))
        assert expression.as_word() == ("a", "b", "c")

    def test_union_is_not_a_word_in_general(self):
        assert union(Symbol("a"), Symbol("b")).as_word() is None

    def test_union_of_identical_words_is_a_word(self):
        assert Union(Symbol("a"), Symbol("a")).as_word() == ("a",)

    def test_star_of_epsilon_is_the_empty_word(self):
        assert Star(Epsilon()).as_word() == ()

    def test_star_is_not_a_word_in_general(self):
        assert Star(Symbol("a")).as_word() is None

    def test_nullable(self):
        assert Star(Symbol("a")).nullable()
        assert not Concat(Symbol("a"), Star(Symbol("b"))).nullable()
        assert Concat(Star(Symbol("a")), Star(Symbol("b"))).nullable()
        assert Union(Symbol("a"), Epsilon()).nullable()

    def test_alphabet(self):
        expression = union(concat(Symbol("a"), Symbol("b")), star(Symbol("c")))
        assert expression.alphabet() == frozenset({"a", "b", "c"})

    def test_size_counts_nodes(self):
        expression = Union(Symbol("a"), Concat(Symbol("b"), Symbol("c")))
        assert expression.size() == 5

    def test_subexpressions_preorder(self):
        expression = Concat(Symbol("a"), Symbol("b"))
        subs = list(expression.subexpressions())
        assert subs[0] == expression
        assert Symbol("a") in subs and Symbol("b") in subs


class TestSmartConstructors:
    def test_concat_unit_laws(self):
        assert concat(Epsilon(), Symbol("a")) == Symbol("a")
        assert concat(Symbol("a"), Epsilon()) == Symbol("a")

    def test_concat_zero_laws(self):
        assert concat(EmptySet(), Symbol("a")) == EmptySet()
        assert concat(Symbol("a"), EmptySet()) == EmptySet()

    def test_union_zero_and_idempotence(self):
        assert union(EmptySet(), Symbol("a")) == Symbol("a")
        assert union(Symbol("a"), Symbol("a")) == Symbol("a")

    def test_star_collapses(self):
        assert star(EmptySet()) == Epsilon()
        assert star(Epsilon()) == Epsilon()
        assert star(Star(Symbol("a"))) == Star(Symbol("a"))

    def test_word_from_string_and_list(self):
        assert word("a b c") == word(["a", "b", "c"])
        assert word("a b c").as_word() == ("a", "b", "c")
        assert word("") == Epsilon()

    def test_union_all_and_concat_all(self):
        assert union_all([]) == EmptySet()
        assert concat_all([]) == Epsilon()
        expression = union_all([Symbol("a"), Symbol("b")])
        assert expression.alphabet() == frozenset({"a", "b"})

    def test_operator_overloads(self):
        expression = (sym("a") | sym("b")) + sym("c")
        assert expression.alphabet() == frozenset({"a", "b", "c"})
        assert sym("a").plus().alphabet() == frozenset({"a"})
        assert sym("a").optional().nullable()

    def test_repeat(self):
        assert sym("a").repeat(0) == Epsilon()
        assert sym("a").repeat(3).as_word() == ("a", "a", "a")
        with pytest.raises(ValueError):
            sym("a").repeat(-1)

    def test_nodes_are_hashable_and_structural(self):
        assert hash(Symbol("a")) == hash(Symbol("a"))
        assert Concat(Symbol("a"), Symbol("b")) == Concat(Symbol("a"), Symbol("b"))
        assert {Symbol("a"), Symbol("a")} == {Symbol("a")}
