"""Tests for the regular path expression parser and printer round-trips."""

import pytest

from repro.exceptions import RegexSyntaxError
from repro.regex import (
    languages_equal_up_to,
    matches,
    parse,
    parse_word,
    to_string,
    word_to_string,
)
from repro.regex.ast import Concat, Epsilon, EmptySet, Star, Symbol, Union


class TestParsing:
    def test_single_label(self):
        assert parse("section") == Symbol("section")

    def test_multi_character_labels(self):
        expression = parse("CS-Department Courses cs345")
        assert expression.as_word() == ("CS-Department", "Courses", "cs345")

    def test_concatenation_by_juxtaposition(self):
        assert parse("a b") == Concat(Symbol("a"), Symbol("b"))

    def test_explicit_dot_concatenation(self):
        assert parse("a . b") == parse("a b")

    def test_union_plus_and_pipe(self):
        assert parse("a + b") == parse("a | b") == Union(Symbol("a"), Symbol("b"))

    def test_star(self):
        assert parse("a*") == Star(Symbol("a"))

    def test_plus_postfix(self):
        expression = parse("a^+")
        assert matches(expression, ("a",))
        assert matches(expression, ("a", "a"))
        assert not matches(expression, ())

    def test_optional(self):
        expression = parse("a?")
        assert matches(expression, ())
        assert matches(expression, ("a",))

    def test_epsilon_and_empty(self):
        assert parse("%") == Epsilon()
        assert parse("~") == EmptySet()
        assert parse("") == Epsilon()
        assert parse("   ") == Epsilon()

    def test_grouping(self):
        expression = parse("section (paragraph + figure) caption")
        assert matches(expression, ("section", "paragraph", "caption"))
        assert matches(expression, ("section", "figure", "caption"))
        assert not matches(expression, ("section", "caption"))

    def test_paper_engine_example(self):
        expression = parse("engine subpart* name")
        assert matches(expression, ("engine", "name"))
        assert matches(expression, ("engine", "subpart", "subpart", "name"))

    def test_precedence_star_binds_tighter_than_concat(self):
        expression = parse("a b*")
        assert matches(expression, ("a",))
        assert matches(expression, ("a", "b", "b"))
        assert not matches(expression, ("a", "b", "a"))

    def test_precedence_concat_binds_tighter_than_union(self):
        expression = parse("a b + c")
        assert matches(expression, ("a", "b"))
        assert matches(expression, ("c",))
        assert not matches(expression, ("a", "c"))

    def test_errors(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a b")
        with pytest.raises(RegexSyntaxError):
            parse("a )")
        with pytest.raises(RegexSyntaxError):
            parse("a ^ b")

    def test_parse_word(self):
        assert parse_word("a b c") == ("a", "b", "c")
        assert parse_word("") == ()
        with pytest.raises(RegexSyntaxError):
            parse_word("a b*")


class TestPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a b c",
            "a + b",
            "(a + b) c",
            "a b* + (c d)*",
            "(l a + l b)* d",
            "section (paragraph + figure) caption",
            "%",
            "~",
        ],
    )
    def test_round_trip_preserves_language(self, text):
        expression = parse(text)
        reparsed = parse(to_string(expression))
        assert languages_equal_up_to(expression, reparsed, 4)

    def test_word_to_string(self):
        assert word_to_string(()) == "%"
        assert word_to_string(("a", "b")) == "a b"
