"""Tests for algebraic simplification: language preservation and normalization."""

import pytest

from repro.regex import language_up_to, parse, simplify, to_string
from repro.regex.ast import Epsilon, EmptySet, Star, Symbol, Union, concat, star, union


class TestIdentities:
    def test_union_idempotence_and_flattening(self):
        expression = Union(Union(Symbol("a"), Symbol("a")), Symbol("a"))
        assert simplify(expression) == Symbol("a")

    def test_union_commutative_normal_form(self):
        first = simplify(union(Symbol("b"), Symbol("a")))
        second = simplify(union(Symbol("a"), Symbol("b")))
        assert first == second

    def test_epsilon_absorbed_by_nullable_operand(self):
        expression = union(Epsilon(), star(Symbol("a")))
        assert simplify(expression) == Star(Symbol("a"))

    def test_epsilon_kept_when_needed(self):
        expression = simplify(union(Epsilon(), Symbol("a")))
        assert expression.nullable()
        assert language_up_to(expression, 1) == {(), ("a",)}

    def test_concat_with_empty_set_is_empty(self):
        expression = concat(Symbol("a"), concat(EmptySet(), Symbol("b")))
        assert simplify(expression) == EmptySet()

    def test_star_of_union_with_epsilon(self):
        assert simplify(parse("(% + a)*")) == Star(Symbol("a"))

    def test_double_star(self):
        assert simplify(Star(Star(Symbol("a")))) == Star(Symbol("a"))

    def test_star_star_concat_collapses(self):
        assert simplify(parse("a* a*")) == Star(Symbol("a"))


class TestLanguagePreservation:
    @pytest.mark.parametrize(
        "text",
        [
            "a b* + (c d)*",
            "(a + b)* a",
            "((a + %) (b + ~))*",
            "a (b + c)* d + a d",
            "(l a + l b)* d",
            "% + ~ + a",
            "(a*)* b",
        ],
    )
    def test_simplify_preserves_bounded_language(self, text):
        expression = parse(text)
        simplified = simplify(expression)
        assert language_up_to(expression, 4) == language_up_to(simplified, 4)

    def test_simplify_is_idempotent(self):
        for text in ["a b* + (c d)*", "(a + b)* a", "% + a + a"]:
            once = simplify(parse(text))
            assert simplify(once) == once

    def test_simplified_form_does_not_grow(self):
        expression = parse("(a + a + a) (b + b) + ~")
        assert simplify(expression).size() <= expression.size()

    def test_printer_of_simplified_is_parseable(self):
        expression = simplify(parse("(a + %)* (b + ~)"))
        reparsed = parse(to_string(expression))
        assert language_up_to(expression, 3) == language_up_to(reparsed, 3)
