"""Tests for the cost model, caches, the rewriter and the planner (Section 3.2)."""


from repro.automata import equivalent, regex_to_nfa
from repro.constraints import (
    ConstraintSet,
    path_equality,
    satisfies,
    satisfies_all,
    word_equality,
)
from repro.graph import Instance, mirror_site_graph
from repro.optimize import (
    CostModel,
    QueryCache,
    install_mirror,
    materialize_cache,
    plan_and_evaluate,
    rewrite_query,
)
from repro.query import answer_set
from repro.regex import parse, to_string


class TestCostModel:
    def test_recursion_is_penalized(self):
        model = CostModel()
        assert model.estimate("a b*") > model.estimate("a b b b")
        assert model.compare("a + b", "(a + b)*") == -1

    def test_cached_labels_are_cheap(self):
        model = CostModel().with_cached({"l"})
        assert model.estimate("l a") < model.estimate("m a")

    def test_longer_queries_cost_more(self):
        model = CostModel()
        assert model.estimate("a b c") > model.estimate("a b")

    def test_trivial_expressions_are_free(self):
        model = CostModel()
        assert model.estimate("%") == 0.0
        assert model.estimate("~") == 0.0

    def test_compare_equal(self):
        model = CostModel()
        assert model.compare("a b", "b a") == 0


class TestCaches:
    def cached_ab_star_instance(self):
        instance = Instance([("o", "a", "x"), ("x", "b", "o"), ("x", "c", "z")])
        return materialize_cache(instance, "o", "(a b)*", "l")

    def test_materialize_cache_establishes_the_equality(self):
        cached_instance, record = self.cached_ab_star_instance()
        assert satisfies(cached_instance, "o", record.constraint())
        assert record.answer_count == len(answer_set("(a b)*", "o", cached_instance))

    def test_cache_does_not_modify_original(self):
        instance = Instance([("o", "a", "x"), ("x", "b", "o")])
        materialize_cache(instance, "o", "(a b)*", "l")
        assert "l" not in instance.labels()

    def test_query_cache_collects_constraints(self):
        instance = Instance([("o", "a", "x"), ("x", "b", "o"), ("o", "c", "y")])
        cache = QueryCache("o")
        instance, _ = cache.install(instance, "(a b)*", "l1")
        instance, _ = cache.install(instance, "c", "l2")
        constraints = cache.constraints()
        assert len(constraints) == 2
        assert satisfies_all(instance, "o", constraints)
        assert cache.labels() == frozenset({"l1", "l2"})
        assert "l1" in cache.describe()

    def test_install_mirror(self):
        instance = Instance([("root", "main", "home"), ("home", "page", "p")])
        mirrored, constraints = install_mirror(instance, "root", "main", "mirror")
        assert satisfies_all(mirrored, "root", constraints)
        assert answer_set("mirror page", "root", mirrored) == answer_set(
            "main page", "root", mirrored
        )


class TestRewriter:
    def test_example2_star_collapse_via_boundedness(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        outcome = rewrite_query("l*", constraints)
        assert outcome.improved
        assert equivalent(regex_to_nfa(outcome.best), regex_to_nfa(parse("% + l")))

    def test_example3_cached_query(self):
        constraints = ConstraintSet([path_equality("l", "(a b)*")])
        outcome = rewrite_query(
            "a (b a)* c", constraints, CostModel().with_cached({"l"})
        )
        assert outcome.improved
        assert to_string(outcome.best) == "l a c"
        # The adopted rewrite carries its implication evidence.
        best_candidates = [c for c in outcome.candidates if c.query == outcome.best]
        assert best_candidates and best_candidates[0].evidence.implied

    def test_prefix_substitution_with_word_equality(self):
        constraints = ConstraintSet([word_equality("a b", "s")])
        outcome = rewrite_query("a b c d", constraints)
        assert to_string(outcome.best) == "s c d"

    def test_no_rewrite_without_helpful_constraints(self):
        constraints = ConstraintSet([word_equality("x", "y")])
        outcome = rewrite_query("a b*", constraints)
        assert not outcome.improved
        assert outcome.best == outcome.original

    def test_unsound_candidates_are_rejected(self):
        # An inclusion (not equality) must not be used as an equivalence rewrite.
        from repro.constraints import word_inclusion

        constraints = ConstraintSet([word_inclusion("a", "b")])
        outcome = rewrite_query("a c", constraints)
        assert outcome.best == outcome.original

    def test_candidates_listed_with_costs(self):
        constraints = ConstraintSet([word_equality("l l", "l")])
        outcome = rewrite_query("l*", constraints)
        assert any("original" == c.origin for c in outcome.candidates)
        assert all(c.cost >= 0 for c in outcome.candidates)
        assert "=>" in outcome.summary()


class TestPlanner:
    def test_plan_reports_savings_on_cached_site(self):
        instance = Instance(
            [("o", "a", "x"), ("x", "b", "o"), ("x", "c", "z"), ("o", "c", "w")]
        )
        cached_instance, record = materialize_cache(instance, "o", "(a b)*", "l")
        constraints = ConstraintSet([record.constraint()])
        report = plan_and_evaluate(
            "a (b a)* c",
            "o",
            cached_instance,
            constraints,
            CostModel().with_cached({"l"}),
            measure_distributed=True,
        )
        assert report.rewrite.improved
        assert report.answers == answer_set("a (b a)* c", "o", cached_instance)
        assert report.optimized_visited_pairs <= report.original_visited_pairs
        assert report.message_savings is not None
        assert "messages" in report.summary()

    def test_plan_on_mirror_site(self):
        instance, root = mirror_site_graph(2, 2)
        constraints = ConstraintSet([path_equality("main", "mirror")])
        report = plan_and_evaluate("main section0 page0", root, instance, constraints)
        assert report.answers == {"page_0_0"}

    def test_unchanged_plan_still_evaluates(self):
        instance = Instance([("o", "a", "x")])
        constraints = ConstraintSet([word_equality("z", "z")])
        report = plan_and_evaluate("a", "o", instance, constraints)
        assert report.answers == {"x"}
        assert not report.rewrite.improved
