"""The constant-time query-shape classifier and batch-strategy chooser.

``classify_query_shape`` is a syntactic approximation of the
Bagan–Bonifati–Groz trichotomy: concatenations of (starred) letter
alternations are the tractable class; anything with a star over a compound
body falls out.  ``choose_batch_strategy`` turns that plus the batch/graph
widths into the per-source vs all-pairs decision the engine acts on.
"""

from __future__ import annotations

import pytest

from repro.optimize.planner import (
    ALL_PAIRS_FRACTION,
    StrategyReport,
    choose_batch_strategy,
    classify_query_shape,
)
from repro.regex import parse


class TestClassifyQueryShape:
    @pytest.mark.parametrize(
        "expression",
        [
            "a",
            "a|b",
            "a|b|c",
            "a*",
            "(a|b)*",
            "a.b.c",
            "a.(b|c)*.d",
            "(a|b)*.c.(b|c)*",
            "a*.b*.c",
        ],
    )
    def test_tractable_shapes(self, expression):
        tractable, reason = classify_query_shape(expression)
        assert tractable, (expression, reason)
        assert reason == "concatenation of (starred) letter factors"

    @pytest.mark.parametrize(
        "expression",
        [
            "(a.b)*",
            "(a*.b)*",
            "(a.b)*.c",
            "a.((b|c).d)*",
            "((a|b).c)*",
        ],
    )
    def test_hard_shapes(self, expression):
        tractable, reason = classify_query_shape(expression)
        assert not tractable, expression
        assert "is not a (starred) letter" in reason

    def test_accepts_parsed_expressions(self):
        assert classify_query_shape(parse("a.(b|c)*"))[0]
        assert not classify_query_shape(parse("(a.b)*"))[0]

    def test_first_violating_factor_is_named(self):
        _, reason = classify_query_shape("a.(b.c)*.d")
        assert "(b c)*" in reason  # to_string renders concatenation as juxtaposition

    def test_nested_star_over_a_letter_normalizes_tractable(self):
        # The parser collapses (a*)* to a*, so the classifier sees the
        # normalized — genuinely tractable — expression.
        tractable, _ = classify_query_shape("(a*)*")
        assert tractable

    def test_linear_in_expression_size(self):
        # A deep concatenation chain must classify without recursion errors
        # (the walker is iterative): 2000 factors is far beyond the default
        # recursion limit if each factor cost a stack frame.
        deep = ".".join(["a"] * 2000)
        tractable, _ = classify_query_shape(deep)
        assert tractable


class TestChooseBatchStrategy:
    def test_narrow_batch_stays_per_source(self):
        report = choose_batch_strategy("a.b*", num_sources=10, num_nodes=1000)
        assert isinstance(report, StrategyReport)
        assert report.strategy == "per-source"
        assert report.tractable

    def test_wide_batch_goes_all_pairs(self):
        report = choose_batch_strategy("a.b*", num_sources=600, num_nodes=1000)
        assert report.strategy == "all-pairs"

    def test_threshold_is_the_fraction(self):
        nodes = 100
        at = int(ALL_PAIRS_FRACTION * nodes)
        assert choose_batch_strategy("a", at, nodes).strategy == "all-pairs"
        assert choose_batch_strategy("a", at - 1, nodes).strategy == "per-source"

    def test_single_source_never_all_pairs(self):
        # Even on a one-node graph a singleton batch is cheaper per-source.
        assert choose_batch_strategy("a", 1, 1).strategy == "per-source"

    def test_empty_graph_is_per_source(self):
        assert choose_batch_strategy("a", 0, 0).strategy == "per-source"

    def test_custom_fraction(self):
        report = choose_batch_strategy(
            "a", num_sources=10, num_nodes=100, all_pairs_fraction=0.1
        )
        assert report.strategy == "all-pairs"

    def test_summary_mentions_everything(self):
        report = choose_batch_strategy("(a.b)*", 3, 10)
        text = report.summary()
        assert "hard" in text
        assert "per-source" in text
        assert "[3/10 sources]" in text
