"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.graph import figure2_graph, instance_to_edge_list


@pytest.fixture
def graph_file(tmp_path):
    instance, _ = figure2_graph()
    path = tmp_path / "figure2.edges"
    path.write_text(instance_to_edge_list(instance), encoding="utf-8")
    return str(path)


class TestEval:
    def test_eval_prints_answers(self, graph_file, capsys):
        assert main(["eval", graph_file, "o1", "a b*"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == ["o2", "o3"]

    def test_eval_stats_on_stderr(self, graph_file, capsys):
        assert main(["eval", graph_file, "o1", "a b*", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "visited pairs" in err

    def test_missing_graph_file(self, capsys):
        assert main(["eval", "/nonexistent/file", "o1", "a"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_query_syntax(self, graph_file, capsys):
        assert main(["eval", graph_file, "o1", "(a"]) == 2
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_holding_constraints_exit_zero(self, graph_file, capsys):
        assert main(["check", graph_file, "o1", "a b b = a", "a b <= a b*"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_violated_constraint_exits_one(self, graph_file, capsys):
        assert main(["check", graph_file, "o1", "a = a b"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestImplies:
    def test_implied(self, capsys):
        code = main(["implies", "l* = l + %", "-c", "l l <= l"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_not_implied(self, capsys):
        code = main(["implies", "l <= l l", "-c", "l l <= l"])
        assert code == 1
        assert "not-implied" in capsys.readouterr().out

    def test_no_constraints_language_reasoning(self, capsys):
        assert main(["implies", "a b <= a (b + c)"]) == 0


class TestRewrite:
    def test_rewrite_with_cached_label(self, capsys):
        code = main(
            [
                "rewrite",
                "a (b a)* c",
                "-c",
                "l = (a b)*",
                "--cached",
                "l",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "l a c"

    def test_rewrite_without_improvement_exits_one(self, capsys):
        assert main(["rewrite", "a b", "-c", "x = y"]) == 1
        assert capsys.readouterr().out.strip() == "a b"

    def test_verbose_lists_candidates(self, capsys):
        main(["rewrite", "l*", "-c", "l l = l", "--verbose"])
        captured = capsys.readouterr()
        assert "original" in captured.err


class TestDistributed:
    def test_distributed_run(self, graph_file, capsys):
        assert main(["distributed", graph_file, "o1", "a b*", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "answers: ['o2', 'o3']" in out
        assert "terminated: True" in out
        assert "subquery(" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "implies", "a <= a + b"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "implied" in completed.stdout
