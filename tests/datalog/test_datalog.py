"""Tests for the Datalog substrate: syntax, engine, analysis and magic sets."""

import pytest

from repro.datalog import (
    Program,
    Rule,
    answers_from,
    atom,
    edb_from_instance,
    evaluate_naive,
    evaluate_seminaive,
    is_chain_program,
    is_linear,
    is_monadic,
    magic_transform,
    profile,
    query_relation,
    quotient_translation,
    recursive_predicates,
    state_translation,
    var,
)
from repro.exceptions import DatalogError
from repro.graph import figure2_graph, random_graph
from repro.query import answer_set


class TestSyntax:
    def test_atom_coerces_constants(self):
        a = atom("Ref", var("X"), "label", var("Y"))
        assert a.arity == 3
        assert {v.name for v in a.variables()} == {"X", "Y"}

    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule(atom("p", var("X")), (atom("q", var("Y")),))

    def test_fact_with_variables_rejected(self):
        with pytest.raises(DatalogError):
            Rule(atom("p", var("X")))

    def test_fact_allowed(self):
        fact = Rule(atom("p", "a"))
        assert fact.is_fact()

    def test_program_classifies_edb_idb(self):
        program = Program(
            [Rule(atom("t", var("X")), (atom("e", var("X"), var("Y")),))], edb=["e"]
        )
        assert program.idb_predicates() == {"t"}
        assert "e" in program.edb_predicates()

    def test_edb_predicate_in_head_rejected(self):
        with pytest.raises(DatalogError):
            Program([Rule(atom("e", var("X")), (atom("f", var("X")),))], edb=["e"])

    def test_str_forms(self):
        rule = Rule(atom("p", var("X")), (atom("q", var("X")),))
        assert ":-" in str(rule)
        assert str(Rule(atom("p", "a"))).endswith(".")


class TestEngine:
    def transitive_closure_program(self) -> Program:
        x, y, z = var("X"), var("Y"), var("Z")
        return Program(
            [
                Rule(atom("t", x, y), (atom("e", x, y),)),
                Rule(atom("t", x, z), (atom("t", x, y), atom("e", y, z))),
            ],
            edb=["e"],
        )

    def test_transitive_closure_naive_and_seminaive_agree(self):
        program = self.transitive_closure_program()
        edb = {"e": {(1, 2), (2, 3), (3, 4)}}
        naive, _ = evaluate_naive(program, edb)
        seminaive, _ = evaluate_seminaive(program, edb)
        expected = {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}
        assert query_relation(naive, "t") == expected
        assert query_relation(seminaive, "t") == expected

    def test_cyclic_edb_terminates(self):
        program = self.transitive_closure_program()
        edb = {"e": {(1, 2), (2, 1)}}
        database, stats = evaluate_seminaive(program, edb)
        assert query_relation(database, "t") == {(1, 2), (2, 1), (1, 1), (2, 2)}
        assert stats.iterations < 10

    def test_facts_in_program(self):
        program = Program(
            [
                Rule(atom("base", "seed")),
                Rule(atom("copy", var("X")), (atom("base", var("X")),)),
            ]
        )
        database, _ = evaluate_seminaive(program, {})
        assert query_relation(database, "copy") == {("seed",)}

    def test_constants_in_rule_bodies_filter(self):
        x = var("X")
        program = Program(
            [Rule(atom("hit", x), (atom("e", "root", "a", x),))], edb=["e"]
        )
        edb = {"e": {("root", "a", "v1"), ("root", "b", "v2"), ("other", "a", "v3")}}
        database, _ = evaluate_seminaive(program, edb)
        assert answers_from(database, "hit") == {"v1"}

    def test_stats_populated(self):
        program = self.transitive_closure_program()
        _, stats = evaluate_seminaive(program, {"e": {(1, 2), (2, 3)}})
        assert stats.facts_derived >= 3
        assert stats.per_predicate["t"] == 3


class TestTranslations:
    @pytest.mark.parametrize("translate", [quotient_translation, state_translation])
    def test_translation_matches_direct_evaluation_figure2(self, translate):
        instance, source = figure2_graph()
        result = translate("a b*")
        database, _ = evaluate_seminaive(result.program, edb_from_instance(instance, source))
        assert answers_from(database, result.answer_predicate) == answer_set(
            "a b*", source, instance
        )

    @pytest.mark.parametrize("translate", [quotient_translation, state_translation])
    @pytest.mark.parametrize("query_text", ["(a + b)* c", "a (b a)*", "a + b c"])
    def test_translation_matches_direct_evaluation_random(self, translate, query_text):
        instance, source = random_graph(15, 2, ["a", "b", "c"], seed=11)
        result = translate(query_text)
        database, _ = evaluate_seminaive(result.program, edb_from_instance(instance, source))
        assert answers_from(database, result.answer_predicate) == answer_set(
            query_text, source, instance
        )

    @pytest.mark.parametrize("translate", [quotient_translation, state_translation])
    def test_programs_are_linear_monadic_chain(self, translate):
        result = translate("(a + b)* a b")
        program_profile = profile(result.program)
        assert program_profile.linear
        assert program_profile.monadic
        assert program_profile.chain
        assert program_profile.in_paper_fragment()

    def test_recursive_predicates_detected(self):
        result = quotient_translation("a b*")
        assert recursive_predicates(result.program)
        finite = quotient_translation("a b")
        assert not recursive_predicates(finite.program)

    def test_quotient_count_matches_derivative_closure(self):
        from repro.regex import all_quotients, parse

        result = quotient_translation("(a b)* a")
        assert result.predicate_count() == len(all_quotients(parse("(a b)* a")))


class TestAnalysisAndMagic:
    def test_nonlinear_program_detected(self):
        x, y, z = var("X"), var("Y"), var("Z")
        program = Program(
            [Rule(atom("t", x, z), (atom("t", x, y), atom("t", y, z)))], edb=["e"]
        )
        assert not is_linear(program)

    def test_non_monadic_detected(self):
        x, y = var("X"), var("Y")
        program = Program([Rule(atom("t", x, y), (atom("e", x, y),))], edb=["e"])
        assert not is_monadic(program)

    def test_chain_check(self):
        result = state_translation("a b*")
        assert is_chain_program(result.program)

    def test_magic_transform_preserves_answers(self):
        instance, source = figure2_graph()
        result = quotient_translation("a b*")
        transformed = magic_transform(result.program)
        database, _ = evaluate_seminaive(transformed, edb_from_instance(instance, source))
        assert answers_from(database) == answer_set("a b*", source, instance)

    def test_magic_transform_adds_guard_predicates(self):
        result = quotient_translation("a b*")
        transformed = magic_transform(result.program)
        assert any(p.startswith("magic_") for p in transformed.idb_predicates())
