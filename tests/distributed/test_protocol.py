"""Tests for the distributed evaluation protocol (Section 3.1, Figures 2/3)."""

import pytest

from repro.distributed import (
    Answer,
    Done,
    Network,
    Subquery,
    answers_in_order,
    compare_with_centralized,
    format_trace,
    run_distributed_query,
    termination_step,
    trace_summary,
)
from repro.exceptions import DistributedProtocolError
from repro.graph import (
    cycle_graph,
    infinite_binary_web,
    layered_dag,
    random_graph,
    web_like_graph,
)
from repro.query import answer_set


class TestFigure3Run:
    def test_answers_and_termination(self, figure2):
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        assert result.answers == {"o2", "o3"}
        assert result.terminated

    def test_message_kinds_match_the_figure(self, figure2):
        """The Figure 3 run: 4 subqueries, 2 answers, 2 acks, 4 dones."""
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        assert result.message_counts() == {
            "subquery": 4,
            "answer": 2,
            "ack": 2,
            "done": 4,
        }

    def test_root_done_is_the_last_message(self, figure2):
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        final = result.trace[-1].message
        assert isinstance(final, Done)
        assert final.receiver == "d"
        assert termination_step(result.trace, "d") == len(result.trace)

    def test_duplicate_subquery_answered_immediately(self, figure2):
        """o2 asks o3, o3 asks o2 again; o2 replies done without re-processing."""
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        subqueries_to_o2 = [
            record.message
            for record in result.trace
            if isinstance(record.message, Subquery) and record.message.receiver == "o2"
        ]
        assert len(subqueries_to_o2) == 2  # initial b* plus the duplicate from o3

    def test_every_answer_is_acknowledged(self, figure2):
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        answer_mids = {m.mid for m in (r.message for r in result.trace) if isinstance(m, Answer)}
        ack_mids = {
            record.message.mid
            for record in result.trace
            if record.message.kind() == "ack"
        }
        assert answer_mids == ack_mids

    def test_trace_formatting(self, figure2):
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        text = format_trace(result.trace)
        assert "subquery(" in text and "done(" in text
        truncated = format_trace(result.trace, limit=3)
        assert "more messages" in truncated
        summary = trace_summary(result.trace)
        assert summary["messages_total"] == len(result.trace)
        assert answers_in_order(result.trace) == ["o2", "o3"] or answers_in_order(
            result.trace
        ) == ["o3", "o2"]


class TestCorrectness:
    @pytest.mark.parametrize(
        "query_text", ["a b*", "(a + b)* c", "a (b + c) a", "b* a"]
    )
    def test_agrees_with_centralized_on_random_graphs(self, query_text):
        for seed in range(3):
            instance, source = random_graph(12, 2, ["a", "b", "c"], seed=seed)
            report = compare_with_centralized(query_text, source, instance)
            assert report["agree"], report

    def test_agrees_on_web_like_graph(self):
        instance, source = web_like_graph(50, ["a", "b"], seed=4)
        report = compare_with_centralized("a (a + b)* b", source, instance)
        assert report["agree"]

    def test_agrees_on_dag(self):
        instance, source = layered_dag(4, 4, ["a", "b"], seed=1)
        report = compare_with_centralized("(a + b) (a + b) a", source, instance)
        assert report["agree"]

    def test_cycle_with_recursive_query_terminates(self):
        instance, source = cycle_graph(6, "a")
        result = run_distributed_query("a*", source, instance, asker="client")
        assert result.terminated
        assert result.answers == answer_set("a*", source, instance)

    def test_source_itself_can_be_an_answer(self, figure2):
        instance, source = figure2
        result = run_distributed_query("%  + a", source, instance, asker="d")
        assert source in result.answers

    def test_delivery_order_does_not_change_answers(self, figure2):
        instance, source = figure2
        reference = run_distributed_query("a b*", source, instance, asker="d").answers
        for order, seed in [("lifo", 0), ("random", 1), ("random", 2), ("random", 3)]:
            result = run_distributed_query(
                "a b*", source, instance, asker="d", order=order, seed=seed
            )
            assert result.answers == reference
            assert result.terminated

    def test_asker_must_differ_from_source(self, figure2):
        instance, source = figure2
        with pytest.raises(DistributedProtocolError):
            run_distributed_query("a", source, instance, asker=source)


class TestInfiniteWeb:
    def test_bounded_query_terminates_on_infinite_web(self):
        lazy, root = infinite_binary_web()
        result = run_distributed_query("a b a", root, lazy, asker="client")
        assert result.terminated
        assert result.answers == {"aba"}

    def test_exhaustive_query_exceeds_message_budget(self):
        lazy, root = infinite_binary_web()
        with pytest.raises(DistributedProtocolError):
            run_distributed_query(
                "(a + b)* a", root, lazy, asker="client", max_messages=500
            )


class TestNetworkPrimitives:
    def test_unknown_order_rejected(self, figure2):
        instance, _ = figure2
        with pytest.raises(DistributedProtocolError):
            Network(instance, order="round-robin")

    def test_deliver_without_pending_raises(self, figure2):
        instance, _ = figure2
        network = Network(instance)
        with pytest.raises(DistributedProtocolError):
            network.deliver_one()

    def test_statistics_per_site(self, figure2):
        instance, source = figure2
        result = run_distributed_query("a b*", source, instance, asker="d")
        per_site = result.statistics.per_site
        assert per_site["o1"] >= 1
        assert sum(per_site.values()) == result.messages_delivered
