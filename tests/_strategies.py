"""Shared hypothesis strategies for the test suite.

This module lives next to ``conftest.py`` and is imported *absolutely*
(``from _strategies import ...``) by the property and differential tests.
pytest's rootless test layout (no ``__init__.py`` files) puts each
conftest's directory on ``sys.path``, which makes this module importable
from any test file below ``tests/`` — unlike relative imports such as
``from ..conftest import ...``, which break collection because test modules
are not packages.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.constraints import ConstraintSet, word_equality, word_inclusion
from repro.graph import Instance
from repro.regex.ast import Regex, Symbol, concat, star, union

SMALL_ALPHABET = ("a", "b", "c")


def labels(alphabet: tuple[str, ...] = SMALL_ALPHABET) -> st.SearchStrategy[str]:
    return st.sampled_from(alphabet)


def words(
    alphabet: tuple[str, ...] = SMALL_ALPHABET, max_size: int = 5
) -> st.SearchStrategy[tuple[str, ...]]:
    return st.lists(labels(alphabet), max_size=max_size).map(tuple)


def regexes(
    alphabet: tuple[str, ...] = SMALL_ALPHABET, max_leaves: int = 6
) -> st.SearchStrategy[Regex]:
    """Random regular expressions of bounded size over a small alphabet."""
    leaves = st.sampled_from([Symbol(label) for label in alphabet])

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(star),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def word_constraint_sets(
    alphabet: tuple[str, ...] = ("a", "b"),
    max_constraints: int = 3,
    max_word_length: int = 3,
    equalities: bool = False,
    allow_epsilon_rhs: bool = True,
) -> st.SearchStrategy[ConstraintSet]:
    """Random small sets of word constraints.

    ``allow_epsilon_rhs=False`` restricts right-hand sides to non-empty words;
    the Lemma 4.4 witness construction assumes (as the paper's ε convention
    does) that the class of ε is minimal in the rewrite order, which is
    guaranteed when no constraint has an ε side.
    """
    rhs_min = 0 if allow_epsilon_rhs else 1
    single_word = st.lists(
        labels(alphabet), min_size=rhs_min, max_size=max_word_length
    ).map(tuple)
    nonempty_word = st.lists(labels(alphabet), min_size=1, max_size=max_word_length).map(tuple)

    def build(pairs: list[tuple[tuple[str, ...], tuple[str, ...]]]) -> ConstraintSet:
        constraint_set = ConstraintSet()
        for lhs, rhs in pairs:
            if equalities:
                constraint_set.add(word_equality(lhs, rhs))
            else:
                constraint_set.add(word_inclusion(lhs, rhs))
        return constraint_set

    return st.lists(
        st.tuples(nonempty_word, single_word), min_size=1, max_size=max_constraints
    ).map(build)


def edit_scripts(
    alphabet: tuple[str, ...] = SMALL_ALPHABET,
    max_nodes: int = 5,
    max_ops: int = 10,
) -> st.SearchStrategy[list[tuple[str, int, str, int]]]:
    """Random interleaved ``add``/``remove`` edge operations.

    Each op is ``(kind, source, label, destination)`` over node ids
    ``0..max_nodes-1``; appliers should treat a ``remove`` of an absent edge
    (and an ``add`` of a present one) as a no-op so every script is valid on
    every instance.
    """
    operation = st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(min_value=0, max_value=max_nodes - 1),
        labels(alphabet),
        st.integers(min_value=0, max_value=max_nodes - 1),
    )
    return st.lists(operation, max_size=max_ops)


def small_instances(
    alphabet: tuple[str, ...] = SMALL_ALPHABET,
    max_nodes: int = 5,
    max_edges: int = 8,
) -> st.SearchStrategy[tuple[Instance, int]]:
    """Random small instances with integer object ids and source 0."""

    @st.composite
    def build(draw: st.DrawFn) -> tuple[Instance, int]:
        node_count = draw(st.integers(min_value=1, max_value=max_nodes))
        edge_count = draw(st.integers(min_value=0, max_value=max_edges))
        instance = Instance()
        for node in range(node_count):
            instance.add_object(node)
        for _ in range(edge_count):
            source = draw(st.integers(min_value=0, max_value=node_count - 1))
            destination = draw(st.integers(min_value=0, max_value=node_count - 1))
            label = draw(labels(alphabet))
            instance.add_edge(source, label, destination)
        return instance, 0

    return build()
