"""Glushkov (position-automaton) construction: regular expression → ε-free NFA.

The Glushkov automaton has exactly ``n + 1`` states for an expression with
``n`` symbol occurrences and no ε-transitions, which makes it convenient for
the distributed evaluator (Section 3.1): the per-site agents ship sets of
position states in their ``subquery`` messages, and the absence of
ε-transitions keeps the per-message bookkeeping simple.

The construction computes the classical ``first``, ``last``, ``follow`` and
``nullable`` functions over *linearized* positions of the expression.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.ast import Concat, EmptySet, Epsilon, Regex, Star, Symbol, Union
from .nfa import NFA


@dataclass(frozen=True, slots=True)
class _Positions:
    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


def _analyze(
    expression: Regex,
    labels: dict[int, str],
    follow: dict[int, set[int]],
    counter: list[int],
) -> _Positions:
    if isinstance(expression, EmptySet):
        return _Positions(False, frozenset(), frozenset())
    if isinstance(expression, Epsilon):
        return _Positions(True, frozenset(), frozenset())
    if isinstance(expression, Symbol):
        position = counter[0]
        counter[0] += 1
        labels[position] = expression.label
        follow.setdefault(position, set())
        return _Positions(False, frozenset({position}), frozenset({position}))
    if isinstance(expression, Union):
        left = _analyze(expression.left, labels, follow, counter)
        right = _analyze(expression.right, labels, follow, counter)
        return _Positions(
            left.nullable or right.nullable,
            left.first | right.first,
            left.last | right.last,
        )
    if isinstance(expression, Concat):
        left = _analyze(expression.left, labels, follow, counter)
        right = _analyze(expression.right, labels, follow, counter)
        for position in left.last:
            follow[position] |= right.first
        first = left.first | right.first if left.nullable else left.first
        last = left.last | right.last if right.nullable else right.last
        return _Positions(left.nullable and right.nullable, first, last)
    if isinstance(expression, Star):
        inner = _analyze(expression.inner, labels, follow, counter)
        for position in inner.last:
            follow[position] |= inner.first
        return _Positions(True, inner.first, inner.last)
    raise TypeError(f"unknown regex node: {expression!r}")


def regex_to_glushkov_nfa(expression: Regex) -> NFA:
    """Compile an expression into its ε-free Glushkov position automaton.

    State ``0`` is the initial state; state ``i`` (``i ≥ 1``) corresponds to
    the ``i``-th symbol occurrence of the expression (in left-to-right order).
    """
    labels: dict[int, str] = {}
    follow: dict[int, set[int]] = {}
    counter = [1]
    info = _analyze(expression, labels, follow, counter)

    nfa = NFA(initial=0)
    nfa.add_state(0)
    for position in labels:
        nfa.add_state(position)
    for position in info.first:
        nfa.add_transition(0, labels[position], position)
    for source, successors in follow.items():
        for target in successors:
            nfa.add_transition(source, labels[target], target)
    nfa.accepting = set(info.last)
    if info.nullable:
        nfa.accepting.add(0)
    return nfa
