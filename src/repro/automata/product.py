"""Synchronous products of NFAs.

Two constructions are provided:

* :func:`product_nfa` — the binary product, used for intersection and for the
  quotient-by-language construction;
* :func:`product_of_many` — the n-ary product of the automata of all
  constraints and queries involved in an implication question, which is the
  automaton ``F`` at the heart of the Theorem 4.2 witness construction (the
  vertices of the small counterexample are sets of states of ``F``).

Because the component NFAs may use ε-transitions, the product is built over
ε-closed "macro moves": a product transition on label ``a`` moves every
component by its own ``step`` (one ``a`` plus ε-closure).
"""

from __future__ import annotations

from collections import deque

from .nfa import NFA


def product_nfa(first: NFA, second: NFA, accept_mode: str = "both") -> NFA:
    """Binary synchronous product.

    ``accept_mode`` is ``"both"`` (intersection), ``"first"`` or ``"second"``
    (accept according to one component only — useful for quotients where the
    other component merely tracks context).

    The product runs over *sets* of component states (because of ε moves) but
    exposes plain pairs ``(frozenset, frozenset)`` as its states.
    """
    labels = set(first.alphabet) | set(second.alphabet)
    start = (first.initial_closure(), second.initial_closure())
    result = NFA(initial=start, alphabet=set(labels))
    result.add_state(start)

    def is_accepting(state: tuple[frozenset, frozenset]) -> bool:
        left_ok = bool(state[0] & first.accepting)
        right_ok = bool(state[1] & second.accepting)
        if accept_mode == "both":
            return left_ok and right_ok
        if accept_mode == "first":
            return left_ok
        if accept_mode == "second":
            return right_ok
        raise ValueError(f"unknown accept_mode: {accept_mode!r}")

    if is_accepting(start):
        result.accepting.add(start)

    queue: deque[tuple[frozenset, frozenset]] = deque([start])
    seen = {start}
    while queue:
        current = queue.popleft()
        left_states, right_states = current
        for label in labels:
            left_next = first.step(left_states, label)
            right_next = second.step(right_states, label)
            if not left_next and accept_mode in ("both", "first"):
                continue
            if not right_next and accept_mode in ("both", "second"):
                continue
            successor = (left_next, right_next)
            result.add_transition(current, label, successor)
            if successor not in seen:
                seen.add(successor)
                if is_accepting(successor):
                    result.accepting.add(successor)
                queue.append(successor)
    return result


def product_of_many(automata: "list[NFA]", alphabet: "set[str] | None" = None) -> NFA:
    """n-ary synchronous product used by the Theorem 4.2 construction.

    The state of the product is a tuple of frozensets — one ε-closed state
    set per component automaton.  *No* acceptance condition is imposed: the
    product is used to track, for each vertex of a counterexample instance,
    the set of product states reachable from the source (the ``states(o')``
    map of the proof), so every state is marked accepting for convenience.
    """
    if not automata:
        raise ValueError("product_of_many requires at least one automaton")
    labels: set[str] = set(alphabet) if alphabet is not None else set()
    for nfa in automata:
        labels |= set(nfa.alphabet)

    start = tuple(nfa.initial_closure() for nfa in automata)
    result = NFA(initial=start, alphabet=set(labels))
    result.add_state(start)
    result.accepting.add(start)

    queue: deque[tuple] = deque([start])
    seen = {start}
    while queue:
        current = queue.popleft()
        for label in labels:
            successor = tuple(
                nfa.step(component, label)
                for nfa, component in zip(automata, current)
            )
            result.add_transition(current, label, successor)
            if successor not in seen:
                seen.add(successor)
                result.accepting.add(successor)
                queue.append(successor)
    return result
