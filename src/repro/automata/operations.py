"""Boolean and rational operations on automata.

These combinators implement the closure properties of regular languages used
throughout Section 4: union, intersection, complement, difference,
concatenation, reversal and left quotients.  All operations work on NFAs and
return NFAs (complement and difference determinize internally).
"""

from __future__ import annotations

from .determinize import nfa_to_dfa
from .dfa import DFA
from .nfa import EPSILON, NFA


def _disjoint_copy(nfa: NFA, tag: str) -> NFA:
    """Copy an NFA with states wrapped as ``(tag, state)`` to avoid clashes."""
    copy = NFA(initial=(tag, nfa.initial), alphabet=set(nfa.alphabet))
    for state in nfa.states:
        copy.add_state((tag, state))
    for source, label, target in nfa.iter_transitions():
        copy.add_transition((tag, source), label, (tag, target))
    copy.accepting = {(tag, state) for state in nfa.accepting}
    return copy


def union_nfa(first: NFA, second: NFA) -> NFA:
    """NFA for ``L(first) ∪ L(second)``."""
    left = _disjoint_copy(first, "L")
    right = _disjoint_copy(second, "R")
    result = NFA(initial=("U", 0), alphabet=set(left.alphabet) | set(right.alphabet))
    result.add_state(("U", 0))
    for part in (left, right):
        for source, label, target in part.iter_transitions():
            result.add_transition(source, label, target)
        result.states |= part.states
        result.accepting |= part.accepting
    result.add_transition(("U", 0), EPSILON, left.initial)
    result.add_transition(("U", 0), EPSILON, right.initial)
    return result


def concat_nfa(first: NFA, second: NFA) -> NFA:
    """NFA for the concatenation ``L(first) · L(second)``."""
    left = _disjoint_copy(first, "L")
    right = _disjoint_copy(second, "R")
    result = NFA(initial=left.initial, alphabet=set(left.alphabet) | set(right.alphabet))
    for part in (left, right):
        for source, label, target in part.iter_transitions():
            result.add_transition(source, label, target)
        result.states |= part.states
    for state in left.accepting:
        result.add_transition(state, EPSILON, right.initial)
    result.accepting = set(right.accepting)
    return result


def star_nfa(nfa: NFA) -> NFA:
    """NFA for the Kleene closure ``L(nfa)*``."""
    inner = _disjoint_copy(nfa, "S")
    result = NFA(initial=("K", 0), alphabet=set(inner.alphabet))
    result.add_state(("K", 0))
    for source, label, target in inner.iter_transitions():
        result.add_transition(source, label, target)
    result.states |= inner.states
    result.add_transition(("K", 0), EPSILON, inner.initial)
    for state in inner.accepting:
        result.add_transition(state, EPSILON, ("K", 0))
    result.accepting = {("K", 0)}
    return result


def intersection_nfa(first: NFA, second: NFA) -> NFA:
    """NFA for ``L(first) ∩ L(second)`` via the synchronous product."""
    from .product import product_nfa

    return product_nfa(first, second, accept_mode="both")


def complement_nfa(nfa: NFA, alphabet: "set[str] | None" = None) -> NFA:
    """NFA (actually a DFA viewed as an NFA) for the complement language."""
    labels = set(nfa.alphabet) | (alphabet or set())
    dfa = nfa_to_dfa(nfa, labels)
    return dfa.complement(labels).to_nfa()


def difference_nfa(first: NFA, second: NFA) -> NFA:
    """NFA for ``L(first) \\ L(second)``."""
    labels = set(first.alphabet) | set(second.alphabet)
    return intersection_nfa(first, complement_nfa(second, labels))


def reverse_nfa(nfa: NFA) -> NFA:
    """NFA for the reversal of the language (all transitions flipped)."""
    result = NFA(initial=("rev", "start"), alphabet=set(nfa.alphabet))
    result.add_state(("rev", "start"))
    for state in nfa.states:
        result.add_state(state)
    for source, label, target in nfa.iter_transitions():
        result.add_transition(target, label, source)
    for state in nfa.accepting:
        result.add_transition(("rev", "start"), EPSILON, state)
    result.accepting = {nfa.initial}
    return result


def left_quotient_nfa(nfa: NFA, word: "tuple[str, ...] | list[str]") -> NFA:
    """NFA for the quotient ``L(nfa) / word = { w | word·w ∈ L }``.

    This is the automaton-level counterpart of the Brzozowski derivative used
    by the paper's recursive evaluation (†): as the paper notes, the quotient
    of a regular language is regular, obtained simply by shifting the start
    state set.
    """
    start_states = nfa.run(word)
    result = nfa.copy()
    fresh = ("quot", "start")
    result.add_state(fresh)
    result.initial = fresh
    for state in start_states:
        result.add_transition(fresh, EPSILON, state)
    return result


def left_quotient_by_language_nfa(target: NFA, prefixes: NFA) -> NFA:
    """NFA for ``{ w | ∃u ∈ L(prefixes), u·w ∈ L(target) }``.

    Theorem 4.10 uses exactly this quotient (of ``L(p)`` by ``L(F)``) to test
    boundedness.  The construction runs the product of ``prefixes`` and
    ``target`` and starts the result from every target-state reachable while
    the prefix automaton is in an accepting state.
    """
    from .product import product_nfa

    product = product_nfa(prefixes, target, accept_mode="both")
    # States of the product are pairs of ε-closed state *sets*
    # (prefix_states, target_states).  The quotient starts from every target
    # state occurring in a reachable pair whose prefix component contains an
    # accepting prefix state (i.e. the word read so far belongs to L(prefixes)).
    reachable = product.reachable_states()
    result = target.copy()
    fresh = ("lquot", "start")
    result.add_state(fresh)
    result.initial = fresh
    for state in reachable:
        if not isinstance(state, tuple) or len(state) != 2:
            continue
        prefix_states, target_states = state
        if not isinstance(prefix_states, frozenset) or not isinstance(
            target_states, frozenset
        ):
            continue
        if prefix_states & prefixes.accepting:
            for target_state in target_states:
                result.add_transition(fresh, EPSILON, target_state)
    return result


def dfa_intersection(first: DFA, second: DFA) -> DFA:
    """Product DFA for the intersection of two DFA languages."""
    labels = set(first.alphabet) | set(second.alphabet)
    first_total = first.completed(labels)
    second_total = second.completed(labels)
    initial = (first_total.initial, second_total.initial)
    result = DFA(initial=initial, alphabet=set(labels))
    stack = [initial]
    seen = {initial}
    while stack:
        state = stack.pop()
        left, right = state
        if left in first_total.accepting and right in second_total.accepting:
            result.accepting.add(state)
        for label in labels:
            target = (first_total.delta(left, label), second_total.delta(right, label))
            if target[0] is None or target[1] is None:
                continue
            result.add_transition(state, label, target)
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return result
