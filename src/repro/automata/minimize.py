"""DFA minimization (Hopcroft's partition-refinement algorithm).

Minimal DFAs give a canonical representation of a regular language (up to
state naming), which the test suite uses to compare languages produced by
different pipelines (Thompson vs Glushkov vs derivatives) and which the
boundedness machinery uses to keep intermediate automata small.
"""

from __future__ import annotations

from collections import defaultdict, deque

from .dfa import DFA


def minimize_dfa(dfa: DFA) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    The input is first completed (total transition function) and restricted to
    reachable states; the result is relabeled with integers in BFS order so
    that two equivalent languages yield *identical* (not merely isomorphic)
    automata, giving a cheap canonical form.
    """
    total = dfa.completed().trim()
    states = list(total.states)
    alphabet = sorted(total.alphabet)

    if not alphabet:
        # Language is either {} or {ε}; return the canonical 1-state DFA.
        minimal = DFA(initial=0)
        minimal.states = {0}
        if total.initial in total.accepting:
            minimal.accepting = {0}
        return minimal

    accepting = frozenset(s for s in states if s in total.accepting)
    rejecting = frozenset(s for s in states if s not in total.accepting)

    partition: set[frozenset] = set()
    if accepting:
        partition.add(accepting)
    if rejecting:
        partition.add(rejecting)

    worklist: deque[frozenset] = deque(partition)

    # Precompute reverse transitions for the refinement loop.
    reverse: dict[tuple[str, object], set[object]] = defaultdict(set)
    for source in states:
        for label in alphabet:
            target = total.delta(source, label)
            if target is not None:
                reverse[(label, target)].add(source)

    while worklist:
        splitter = worklist.popleft()
        for label in alphabet:
            predecessors: set[object] = set()
            for state in splitter:
                predecessors |= reverse.get((label, state), set())
            if not predecessors:
                continue
            new_partition: set[frozenset] = set()
            for block in partition:
                inside = block & predecessors
                outside = block - predecessors
                if inside and outside:
                    inside_f = frozenset(inside)
                    outside_f = frozenset(outside)
                    new_partition.add(inside_f)
                    new_partition.add(outside_f)
                    if block in worklist:
                        worklist.remove(block)
                        worklist.append(inside_f)
                        worklist.append(outside_f)
                    else:
                        worklist.append(
                            inside_f if len(inside_f) <= len(outside_f) else outside_f
                        )
                else:
                    new_partition.add(block)
            partition = new_partition

    block_of: dict[object, frozenset] = {}
    for block in partition:
        for state in block:
            block_of[state] = block

    minimal = DFA(initial=block_of[total.initial], alphabet=set(total.alphabet))
    minimal.states = set(partition)
    minimal.accepting = {block for block in partition if block & total.accepting}
    for block in partition:
        representative = next(iter(block))
        for label in alphabet:
            target = total.delta(representative, label)
            if target is not None:
                minimal.add_transition(block, label, block_of[target])
    return minimal.trim().relabel_states()


def canonical_dfa(dfa: DFA) -> DFA:
    """Alias of :func:`minimize_dfa`, emphasizing its use as a canonical form."""
    return minimize_dfa(dfa)
