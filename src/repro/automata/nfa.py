"""Nondeterministic finite automata with ε-transitions.

The NFA is the workhorse of the paper's constructions: path-query evaluation
runs the product of the query NFA with the data graph (Section 2.2), the
implication procedure for general path constraints builds the product of all
constraint automata (Theorem 4.2), and the PTIME/PSPACE procedures of
Section 4.2 construct the ``RewriteTo`` automata by saturation.

States may be arbitrary hashable objects — integers, tuples, frozensets —
which keeps the product and subset constructions readable.  The empty string
``EPSILON`` is reserved as the ε label and may not be used as an edge label.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from ..exceptions import AutomatonError

State = Hashable
EPSILON = ""


@dataclass
class NFA:
    """An ε-NFA ``(Q, q0, A, Σ, δ)`` in the notation of Section 2.2.

    Attributes:
        states: the finite set of states ``Q``.
        alphabet: the input alphabet ``Σ`` (edge labels).
        initial: the start state ``s`` (a single state; use an ε-fan-out for
            multiple entry points).
        accepting: the set ``A`` of accepting states.
        transitions: ``δ`` as a nested mapping ``state -> label -> {states}``;
            the ε label is the empty string.
    """

    states: set[State] = field(default_factory=set)
    alphabet: set[str] = field(default_factory=set)
    initial: State = 0
    accepting: set[State] = field(default_factory=set)
    transitions: dict[State, dict[str, set[State]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(set))
    )

    def __post_init__(self) -> None:
        # Normalize the transition structure into defaultdicts so that callers
        # can mutate freely without key-existence bookkeeping.
        normalized: dict[State, dict[str, set[State]]] = defaultdict(lambda: defaultdict(set))
        for source, by_label in self.transitions.items():
            for label, targets in by_label.items():
                normalized[source][label] |= set(targets)
        self.transitions = normalized
        self.states = set(self.states)
        self.states.add(self.initial)
        self.states |= set(self.accepting)
        for source, by_label in self.transitions.items():
            self.states.add(source)
            for label, targets in by_label.items():
                if label != EPSILON:
                    self.alphabet.add(label)
                self.states |= targets

    # -- construction ---------------------------------------------------------
    def add_state(self, state: State) -> State:
        self.states.add(state)
        return state

    def fresh_state(self, hint: str = "q") -> State:
        """Return a new state guaranteed not to collide with existing ones."""
        index = len(self.states)
        while (hint, index) in self.states:
            index += 1
        state = (hint, index)
        self.states.add(state)
        return state

    def add_transition(self, source: State, label: str, target: State) -> None:
        if label != EPSILON and not label:
            raise AutomatonError("edge labels must be non-empty strings")
        self.states.add(source)
        self.states.add(target)
        if label != EPSILON:
            self.alphabet.add(label)
        self.transitions[source][label].add(target)

    def add_word_path(self, source: State, word: Iterable[str], target: State) -> None:
        """Add a chain of fresh states spelling ``word`` from ``source`` to ``target``.

        An empty word becomes a single ε-transition.  Used by the pre*
        saturation (Lemma 4.5/4.7) and by Thompson-style constructions.
        """
        labels = list(word)
        if not labels:
            self.add_transition(source, EPSILON, target)
            return
        current = source
        for label in labels[:-1]:
            nxt = self.fresh_state("chain")
            self.add_transition(current, label, nxt)
            current = nxt
        self.add_transition(current, labels[-1], target)

    # -- execution ------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """Return the ε-closure of a set of states."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for target in self.transitions.get(state, {}).get(EPSILON, ()):
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], label: str) -> frozenset[State]:
        """One synchronous move on ``label`` followed by ε-closure."""
        moved: set[State] = set()
        for state in states:
            moved |= self.transitions.get(state, {}).get(label, set())
        return self.epsilon_closure(moved)

    def initial_closure(self) -> frozenset[State]:
        return self.epsilon_closure({self.initial})

    def run(self, word: Iterable[str]) -> frozenset[State]:
        """Return the set of states reachable after reading ``word``."""
        current = self.initial_closure()
        for label in word:
            current = self.step(current, label)
            if not current:
                return frozenset()
        return current

    def accepts(self, word: Iterable[str]) -> bool:
        """Membership test: does the automaton accept ``word``?"""
        return bool(self.run(word) & self.accepting)

    def states_after(self, word: Iterable[str]) -> frozenset[State]:
        """Alias of :meth:`run`, matching the paper's ``δ(s, w)`` notation."""
        return self.run(word)

    # -- reachability / pruning -----------------------------------------------
    def reachable_states(self) -> set[State]:
        """States reachable from the initial state (over any labels and ε)."""
        seen = {self.initial}
        queue: deque[State] = deque([self.initial])
        while queue:
            state = queue.popleft()
            for targets in self.transitions.get(state, {}).values():
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        return seen

    def coreachable_states(self) -> set[State]:
        """States from which some accepting state is reachable."""
        reverse: dict[State, set[State]] = defaultdict(set)
        for source, by_label in self.transitions.items():
            for targets in by_label.values():
                for target in targets:
                    reverse[target].add(source)
        seen = set(self.accepting)
        queue: deque[State] = deque(self.accepting)
        while queue:
            state = queue.popleft()
            for source in reverse.get(state, ()):
                if source not in seen:
                    seen.add(source)
                    queue.append(source)
        return seen

    def trim(self) -> "NFA":
        """Return an equivalent NFA keeping only useful (reachable & co-reachable) states.

        The initial state is always kept so the result remains well-formed
        even when the language is empty.
        """
        useful = self.reachable_states() & self.coreachable_states()
        useful.add(self.initial)
        trimmed = NFA(initial=self.initial, alphabet=set(self.alphabet))
        trimmed.add_state(self.initial)
        for source, by_label in self.transitions.items():
            if source not in useful:
                continue
            for label, targets in by_label.items():
                for target in targets:
                    if target in useful:
                        trimmed.add_transition(source, label, target)
        trimmed.accepting = {state for state in self.accepting if state in useful}
        trimmed.states |= useful
        return trimmed

    # -- misc -----------------------------------------------------------------
    def transition_count(self) -> int:
        return sum(
            len(targets)
            for by_label in self.transitions.values()
            for targets in by_label.values()
        )

    def iter_transitions(self) -> Iterator[tuple[State, str, State]]:
        for source, by_label in self.transitions.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield (source, label, target)

    def relabel_states(self) -> "NFA":
        """Return an isomorphic NFA whose states are consecutive integers.

        Useful after constructions that produce deeply nested tuple states
        (products of products), both for readability and for speed.
        """
        mapping: dict[State, int] = {}

        def rename(state: State) -> int:
            if state not in mapping:
                mapping[state] = len(mapping)
            return mapping[state]

        renamed = NFA(initial=rename(self.initial), alphabet=set(self.alphabet))
        for state in self.states:
            renamed.add_state(rename(state))
        for source, label, target in self.iter_transitions():
            renamed.add_transition(rename(source), label, rename(target))
        renamed.accepting = {rename(state) for state in self.accepting}
        return renamed

    def copy(self) -> "NFA":
        duplicate = NFA(initial=self.initial, alphabet=set(self.alphabet))
        duplicate.states = set(self.states)
        duplicate.accepting = set(self.accepting)
        for source, label, target in self.iter_transitions():
            duplicate.add_transition(source, label, target)
        return duplicate

    def __len__(self) -> int:
        return len(self.states)


def single_word_nfa(word: Iterable[str]) -> NFA:
    """Return an NFA accepting exactly the given word (possibly ε)."""
    nfa = NFA(initial=0)
    labels = list(word)
    for index, label in enumerate(labels):
        nfa.add_transition(index, label, index + 1)
    nfa.accepting = {len(labels)}
    nfa.states.add(len(labels))
    return nfa
