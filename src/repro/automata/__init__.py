"""Finite-automata substrate: NFAs, DFAs, constructions and decision procedures."""

from .determinize import nfa_to_dfa
from .dfa import DFA
from .glushkov import regex_to_glushkov_nfa
from .minimize import canonical_dfa, minimize_dfa
from .nfa import EPSILON, NFA, single_word_nfa
from .operations import (
    complement_nfa,
    concat_nfa,
    dfa_intersection,
    difference_nfa,
    intersection_nfa,
    left_quotient_by_language_nfa,
    left_quotient_nfa,
    reverse_nfa,
    star_nfa,
    union_nfa,
)
from .product import product_nfa, product_of_many
from .properties import (
    accepted_language_up_to,
    count_words_of_length,
    dfa_equivalent,
    enumerate_accepted_words,
    equivalent,
    finite_language,
    includes,
    inclusion_counterexample,
    is_empty,
    is_finite_language,
    is_universal,
    shortest_accepted_word,
)
from .state_elimination import nfa_to_regex
from .thompson import regex_to_nfa

__all__ = [
    "DFA",
    "EPSILON",
    "NFA",
    "accepted_language_up_to",
    "canonical_dfa",
    "complement_nfa",
    "concat_nfa",
    "count_words_of_length",
    "dfa_equivalent",
    "dfa_intersection",
    "difference_nfa",
    "enumerate_accepted_words",
    "equivalent",
    "finite_language",
    "includes",
    "inclusion_counterexample",
    "intersection_nfa",
    "is_empty",
    "is_finite_language",
    "is_universal",
    "left_quotient_by_language_nfa",
    "left_quotient_nfa",
    "minimize_dfa",
    "nfa_to_dfa",
    "nfa_to_regex",
    "product_nfa",
    "product_of_many",
    "regex_to_glushkov_nfa",
    "regex_to_nfa",
    "reverse_nfa",
    "shortest_accepted_word",
    "single_word_nfa",
    "star_nfa",
    "union_nfa",
]
