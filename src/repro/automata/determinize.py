"""Subset construction: ε-NFA → DFA.

Determinization only ever constructs the *reachable* part of the subset
automaton, which is what keeps the PSPACE inclusion test of Theorem 4.3(ii)
practical on the benchmark inputs even though the worst case is exponential.
"""

from __future__ import annotations

from collections import deque

from .dfa import DFA
from .nfa import NFA


def nfa_to_dfa(nfa: NFA, alphabet: "set[str] | None" = None) -> DFA:
    """Determinize ``nfa`` over ``alphabet`` (default: the NFA's own alphabet).

    States of the resulting DFA are frozensets of NFA states; callers that
    prefer small hashable states can chain :meth:`DFA.relabel_states`.
    """
    labels = set(alphabet) if alphabet is not None else set(nfa.alphabet)
    start = nfa.initial_closure()
    dfa = DFA(initial=start, alphabet=set(labels))
    dfa.states.add(start)
    if start & nfa.accepting:
        dfa.accepting.add(start)
    queue: deque[frozenset] = deque([start])
    seen = {start}
    while queue:
        current = queue.popleft()
        for label in labels:
            successor = nfa.step(current, label)
            if not successor:
                continue
            dfa.add_transition(current, label, successor)
            if successor not in seen:
                seen.add(successor)
                if successor & nfa.accepting:
                    dfa.accepting.add(successor)
                queue.append(successor)
    return dfa
