"""Decision procedures on automata languages.

Emptiness, finiteness, universality, inclusion and equivalence — the
building blocks behind the paper's decision procedures:

* Theorem 4.3(ii) reduces implication of a path constraint by word
  constraints to the inclusion ``L(p) ⊆ RewriteTo(q)``;
* Theorem 4.10 reduces boundedness to *finiteness* of a quotient language;
* the paper notes (after Lemma 4.7) that the inclusion can be decided by
  checking ``L(F_q) = L(F_{p+q})``, i.e. an equivalence test — both routes
  are provided here and cross-checked in tests.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from .determinize import nfa_to_dfa
from .dfa import DFA
from .nfa import NFA


def is_empty(nfa: NFA) -> bool:
    """Return ``True`` iff the automaton accepts no word."""
    return not (nfa.reachable_states() & nfa.accepting)


def shortest_accepted_word(nfa: NFA) -> tuple[str, ...] | None:
    """Return a shortest accepted word (ties broken lexicographically), or ``None``.

    Used to produce counterexample words for failed inclusions and to compute
    canonical representatives of congruence classes (Armstrong instances).
    """
    start = nfa.initial_closure()
    if start & nfa.accepting:
        return ()
    labels = sorted(nfa.alphabet)
    queue: deque[tuple[frozenset, tuple[str, ...]]] = deque([(start, ())])
    seen = {start}
    while queue:
        states, word = queue.popleft()
        for label in labels:
            successor = nfa.step(states, label)
            if not successor or successor in seen:
                continue
            extended = word + (label,)
            if successor & nfa.accepting:
                return extended
            seen.add(successor)
            queue.append((successor, extended))
    return None


def is_finite_language(nfa: NFA) -> bool:
    """Return ``True`` iff the accepted language is finite.

    The language is infinite iff some useful state (reachable and
    co-reachable) lies on a cycle that reads at least one symbol.
    """
    trimmed = nfa.trim()
    useful = trimmed.reachable_states() & trimmed.coreachable_states()
    # Build the label-reading reachability graph restricted to useful states;
    # ε-transitions participate in cycles only if combined with a symbol, so we
    # detect cycles in the graph where an edge exists when a path with ≥ 1
    # symbol connects two states.  Simpler equivalent: detect any cycle in the
    # graph of (symbol or ε) edges that contains at least one symbol edge.
    symbol_edges: dict[object, set[object]] = {}
    all_edges: dict[object, set[object]] = {}
    for source, label, target in trimmed.iter_transitions():
        if source not in useful or target not in useful:
            continue
        all_edges.setdefault(source, set()).add(target)
        if label != "":
            symbol_edges.setdefault(source, set()).add(target)
    # For every symbol edge (u -> v), the language is infinite iff u is
    # reachable from v (closing a cycle through that symbol edge).
    for source, targets in symbol_edges.items():
        for target in targets:
            if _reaches(all_edges, target, source):
                return False
    return True


def _reaches(edges: dict[object, set[object]], start: object, goal: object) -> bool:
    if start == goal:
        return True
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for successor in edges.get(node, ()):
            if successor == goal:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def enumerate_accepted_words(nfa: NFA, max_length: int) -> Iterator[tuple[str, ...]]:
    """Yield accepted words of length ≤ ``max_length`` in shortlex order."""
    labels = sorted(nfa.alphabet)
    start = nfa.initial_closure()
    layer: list[tuple[tuple[str, ...], frozenset]] = [((), start)]
    seen_words: set[tuple[str, ...]] = set()
    for length in range(max_length + 1):
        next_layer: list[tuple[tuple[str, ...], frozenset]] = []
        for word, states in layer:
            if states & nfa.accepting and word not in seen_words:
                seen_words.add(word)
                yield word
            if length < max_length:
                for label in labels:
                    successor = nfa.step(states, label)
                    if successor:
                        next_layer.append((word + (label,), successor))
        layer = next_layer


def accepted_language_up_to(nfa: NFA, max_length: int) -> set[tuple[str, ...]]:
    return set(enumerate_accepted_words(nfa, max_length))


def finite_language(nfa: NFA, safety_bound: int = 10_000) -> set[tuple[str, ...]]:
    """Return the full language of an automaton known to be finite.

    Raises ``ValueError`` when the language is infinite.  ``safety_bound``
    caps the number of enumerated words as a defensive measure.
    """
    if not is_finite_language(nfa):
        raise ValueError("automaton accepts an infinite language")
    # For a finite language every word has length < number of useful states.
    bound = max(1, len(nfa.trim()))
    words = set(islice(enumerate_accepted_words(nfa, bound), safety_bound + 1))
    if len(words) > safety_bound:
        raise ValueError("finite language exceeds the safety bound")
    return words


def is_universal(nfa: NFA, alphabet: "set[str] | None" = None) -> bool:
    """Return ``True`` iff the automaton accepts every word over ``alphabet``."""
    labels = set(nfa.alphabet) | (alphabet or set())
    dfa = nfa_to_dfa(nfa, labels).completed(labels)
    return all(state in dfa.accepting for state in dfa.reachable_states())


def includes(container: NFA, contained: NFA, alphabet: "set[str] | None" = None) -> bool:
    """Return ``True`` iff ``L(contained) ⊆ L(container)``."""
    return inclusion_counterexample(container, contained, alphabet) is None


def inclusion_counterexample(
    container: NFA, contained: NFA, alphabet: "set[str] | None" = None
) -> tuple[str, ...] | None:
    """Return a word in ``L(contained) \\ L(container)``, or ``None`` if included.

    The check explores the product of ``contained`` with the *determinized*
    complement of ``container`` on the fly, so it constructs only the
    reachable part of the (worst-case exponential) subset automaton — this is
    the standard PSPACE-style on-the-fly inclusion test.
    """
    labels = set(container.alphabet) | set(contained.alphabet) | (alphabet or set())
    start = (contained.initial_closure(), container.initial_closure())

    def violates(state: tuple[frozenset, frozenset]) -> bool:
        left, right = state
        return bool(left & contained.accepting) and not (right & container.accepting)

    if violates(start):
        return ()
    queue: deque[tuple[tuple[frozenset, frozenset], tuple[str, ...]]] = deque(
        [(start, ())]
    )
    seen = {start}
    ordered_labels = sorted(labels)
    while queue:
        (left, right), word = queue.popleft()
        for label in ordered_labels:
            left_next = contained.step(left, label)
            if not left_next:
                continue
            right_next = container.step(right, label)
            successor = (left_next, right_next)
            if successor in seen:
                continue
            extended = word + (label,)
            if violates(successor):
                return extended
            seen.add(successor)
            queue.append((successor, extended))
    return None


def equivalent(first: NFA, second: NFA, alphabet: "set[str] | None" = None) -> bool:
    """Return ``True`` iff the two automata accept the same language."""
    return includes(first, second, alphabet) and includes(second, first, alphabet)


def dfa_equivalent(first: DFA, second: DFA) -> bool:
    """Language equivalence of two DFAs (via mutual inclusion of their NFAs)."""
    return equivalent(first.to_nfa(), second.to_nfa())


def count_words_of_length(nfa: NFA, length: int) -> int:
    """Count the accepted words of exactly the given length.

    Used by benchmarks to characterize workloads (e.g. number of candidate
    paths of a given length) without enumerating them.
    """
    dfa = nfa_to_dfa(nfa)
    counts: dict[object, int] = {dfa.initial: 1}
    for _ in range(length):
        next_counts: dict[object, int] = {}
        for state, count in counts.items():
            for target in dfa.transitions.get(state, {}).values():
                next_counts[target] = next_counts.get(target, 0) + count
        counts = next_counts
    return sum(count for state, count in counts.items() if state in dfa.accepting)
