"""Deterministic finite automata.

DFAs appear in the library wherever complementation or minimization is
needed: language inclusion/equivalence checks (the PSPACE test of
Theorem 4.3(ii) reduces to an inclusion between an NFA and a saturated NFA),
and canonical minimal automata used by tests to compare languages.

A DFA here may be *partial*: a missing transition means the word is rejected.
:meth:`DFA.completed` adds an explicit sink when a total transition function
is required (e.g. before complementation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from ..exceptions import AutomatonError

State = Hashable

_SINK = ("__sink__",)


@dataclass
class DFA:
    """A (possibly partial) deterministic finite automaton."""

    states: set[State] = field(default_factory=set)
    alphabet: set[str] = field(default_factory=set)
    initial: State = 0
    accepting: set[State] = field(default_factory=set)
    transitions: dict[State, dict[str, State]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.states = set(self.states)
        self.states.add(self.initial)
        self.states |= set(self.accepting)
        for source, by_label in self.transitions.items():
            self.states.add(source)
            for label, target in by_label.items():
                if not label:
                    raise AutomatonError("DFA labels must be non-empty strings")
                self.alphabet.add(label)
                self.states.add(target)

    # -- construction ---------------------------------------------------------
    def add_transition(self, source: State, label: str, target: State) -> None:
        if not label:
            raise AutomatonError("DFA labels must be non-empty strings")
        self.states.add(source)
        self.states.add(target)
        self.alphabet.add(label)
        row = self.transitions.setdefault(source, {})
        existing = row.get(label)
        if existing is not None and existing != target:
            raise AutomatonError(
                f"conflicting transition from {source!r} on {label!r}"
            )
        row[label] = target

    # -- execution ------------------------------------------------------------
    def delta(self, state: State, label: str) -> State | None:
        return self.transitions.get(state, {}).get(label)

    def run(self, word: Iterable[str]) -> State | None:
        state: State | None = self.initial
        for label in word:
            if state is None:
                return None
            state = self.delta(state, label)
        return state

    def accepts(self, word: Iterable[str]) -> bool:
        state = self.run(word)
        return state is not None and state in self.accepting

    # -- structure ------------------------------------------------------------
    def completed(self, alphabet: "set[str] | None" = None) -> "DFA":
        """Return a total DFA over ``alphabet`` (default: own alphabet).

        Missing transitions are routed to a fresh non-accepting sink state.
        """
        full_alphabet = set(self.alphabet) | (alphabet or set())
        completed = DFA(initial=self.initial, alphabet=set(full_alphabet))
        completed.states = set(self.states)
        completed.accepting = set(self.accepting)
        needs_sink = False
        for state in self.states:
            for label in full_alphabet:
                target = self.delta(state, label)
                if target is None:
                    needs_sink = True
                    completed.add_transition(state, label, _SINK)
                else:
                    completed.add_transition(state, label, target)
        if needs_sink:
            for label in full_alphabet:
                completed.add_transition(_SINK, label, _SINK)
        return completed

    def complement(self, alphabet: "set[str] | None" = None) -> "DFA":
        """Return a DFA for the complement language over the given alphabet."""
        total = self.completed(alphabet)
        complemented = DFA(
            initial=total.initial,
            alphabet=set(total.alphabet),
            transitions={s: dict(row) for s, row in total.transitions.items()},
        )
        complemented.states = set(total.states)
        complemented.accepting = {s for s in total.states if s not in total.accepting}
        return complemented

    def reachable_states(self) -> set[State]:
        seen = {self.initial}
        queue: deque[State] = deque([self.initial])
        while queue:
            state = queue.popleft()
            for target in self.transitions.get(state, {}).values():
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def trim(self) -> "DFA":
        """Restrict to reachable states (keeps partiality)."""
        reachable = self.reachable_states()
        trimmed = DFA(initial=self.initial, alphabet=set(self.alphabet))
        trimmed.states = set(reachable)
        trimmed.accepting = {s for s in self.accepting if s in reachable}
        for source in reachable:
            for label, target in self.transitions.get(source, {}).items():
                if target in reachable:
                    trimmed.add_transition(source, label, target)
        return trimmed

    def relabel_states(self) -> "DFA":
        """Return an isomorphic DFA with integer states (BFS numbering)."""
        mapping: dict[State, int] = {self.initial: 0}
        order: deque[State] = deque([self.initial])
        while order:
            state = order.popleft()
            for label in sorted(self.transitions.get(state, {})):
                target = self.transitions[state][label]
                if target not in mapping:
                    mapping[target] = len(mapping)
                    order.append(target)
        for state in self.states:
            if state not in mapping:
                mapping[state] = len(mapping)
        renamed = DFA(initial=0, alphabet=set(self.alphabet))
        renamed.states = set(mapping.values())
        renamed.accepting = {mapping[s] for s in self.accepting}
        for source, row in self.transitions.items():
            for label, target in row.items():
                renamed.add_transition(mapping[source], label, mapping[target])
        return renamed

    def iter_transitions(self) -> Iterator[tuple[State, str, State]]:
        for source, row in self.transitions.items():
            for label, target in row.items():
                yield (source, label, target)

    def to_nfa(self) -> "NFA":
        """View this DFA as an NFA (no ε transitions)."""
        from .nfa import NFA

        nfa = NFA(initial=self.initial, alphabet=set(self.alphabet))
        nfa.states = set(self.states)
        nfa.accepting = set(self.accepting)
        for source, label, target in self.iter_transitions():
            nfa.add_transition(source, label, target)
        return nfa

    def __len__(self) -> int:
        return len(self.states)
