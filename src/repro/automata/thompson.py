"""Thompson construction: regular expression → ε-NFA.

The construction is the textbook one (Hopcroft & Ullman, the paper's [18]):
each AST node contributes a constant number of states and ε-transitions, so
the resulting NFA has size linear in the expression.  This is the "economical
approach" the paper advocates in Section 2.2 — build the NFA rather than the
(possibly exponential) DFA, and evaluate path queries by carrying sets of NFA
states along graph paths.
"""

from __future__ import annotations

from ..regex.ast import Concat, EmptySet, Epsilon, Regex, Star, Symbol, Union
from .nfa import EPSILON, NFA


class _Builder:
    """Allocates integer states and accumulates transitions."""

    def __init__(self) -> None:
        self.nfa = NFA(initial=0)
        self._next_state = 0

    def fresh(self) -> int:
        state = self._next_state
        self._next_state += 1
        self.nfa.add_state(state)
        return state

    def edge(self, source: int, label: str, target: int) -> None:
        self.nfa.add_transition(source, label, target)

    def build(self, expression: Regex) -> tuple[int, int]:
        """Return (entry, exit) states of the fragment for ``expression``."""
        if isinstance(expression, EmptySet):
            entry, exit_ = self.fresh(), self.fresh()
            return entry, exit_
        if isinstance(expression, Epsilon):
            entry, exit_ = self.fresh(), self.fresh()
            self.edge(entry, EPSILON, exit_)
            return entry, exit_
        if isinstance(expression, Symbol):
            entry, exit_ = self.fresh(), self.fresh()
            self.edge(entry, expression.label, exit_)
            return entry, exit_
        if isinstance(expression, Concat):
            left_entry, left_exit = self.build(expression.left)
            right_entry, right_exit = self.build(expression.right)
            self.edge(left_exit, EPSILON, right_entry)
            return left_entry, right_exit
        if isinstance(expression, Union):
            entry, exit_ = self.fresh(), self.fresh()
            left_entry, left_exit = self.build(expression.left)
            right_entry, right_exit = self.build(expression.right)
            self.edge(entry, EPSILON, left_entry)
            self.edge(entry, EPSILON, right_entry)
            self.edge(left_exit, EPSILON, exit_)
            self.edge(right_exit, EPSILON, exit_)
            return entry, exit_
        if isinstance(expression, Star):
            entry, exit_ = self.fresh(), self.fresh()
            inner_entry, inner_exit = self.build(expression.inner)
            self.edge(entry, EPSILON, inner_entry)
            self.edge(entry, EPSILON, exit_)
            self.edge(inner_exit, EPSILON, inner_entry)
            self.edge(inner_exit, EPSILON, exit_)
            return entry, exit_
        raise TypeError(f"unknown regex node: {expression!r}")


def regex_to_nfa(expression: Regex) -> NFA:
    """Compile a regular expression into an ε-NFA accepting its language."""
    builder = _Builder()
    entry, exit_ = builder.build(expression)
    nfa = builder.nfa
    nfa.initial = entry
    nfa.accepting = {exit_}
    return nfa
