"""Automaton → regular expression via state elimination.

Theorem 4.10 promises not only a decision procedure for boundedness but also
the *construction* of an equivalent non-recursive query.  The boundedness
module assembles that query directly from enumerated answer-class
representatives, but a general automaton-to-regex conversion is independently
useful (e.g. to show users the rewritten query produced by the optimizer) and
rounds out the automata substrate.

The algorithm is the classical generalized-NFA state elimination: states are
removed one at a time, transitions being relabeled with regular expressions.
"""

from __future__ import annotations

from ..regex.ast import EmptySet, Epsilon, Regex, Symbol, concat, star, union
from ..regex.simplify import simplify
from .nfa import EPSILON, NFA


def nfa_to_regex(nfa: NFA) -> Regex:
    """Return a regular expression denoting the language of ``nfa``."""
    trimmed = nfa.trim().relabel_states()

    # Generalized NFA: unique initial state "I" and final state "F" with
    # ε-edges to/from the original ones; edge labels are Regex objects.
    initial = "I"
    final = "F"
    edges: dict[tuple[object, object], Regex] = {}

    def add_edge(source: object, target: object, expression: Regex) -> None:
        key = (source, target)
        existing = edges.get(key, EmptySet())
        edges[key] = simplify(union(existing, expression))

    add_edge(initial, trimmed.initial, Epsilon())
    for state in trimmed.accepting:
        add_edge(state, final, Epsilon())
    for source, label, target in trimmed.iter_transitions():
        expression: Regex = Epsilon() if label == EPSILON else Symbol(label)
        add_edge(source, target, expression)

    interior = [state for state in trimmed.states]
    # Eliminate states in a heuristic order: fewer incident edges first keeps
    # intermediate expressions smaller.
    def degree(state: object) -> int:
        return sum(1 for (s, t) in edges if s == state or t == state)

    for state in sorted(interior, key=degree):
        self_loop = edges.pop((state, state), EmptySet())
        loop = star(self_loop) if not isinstance(self_loop, EmptySet) else Epsilon()
        incoming = [(s, e) for (s, t), e in list(edges.items()) if t == state and s != state]
        outgoing = [(t, e) for (s, t), e in list(edges.items()) if s == state and t != state]
        for (source, _) in incoming:
            edges.pop((source, state), None)
        for (target, _) in outgoing:
            edges.pop((state, target), None)
        for source, in_expr in incoming:
            for target, out_expr in outgoing:
                through = simplify(concat(concat(in_expr, loop), out_expr))
                if isinstance(through, EmptySet):
                    continue
                add_edge(source, target, through)

    result = edges.get((initial, final), EmptySet())
    return simplify(result)
