"""Constraint satisfaction on a concrete instance: ``(o, I) ⊨ E``.

Satisfaction is defined pointwise (Definition 4.1): an inclusion ``p ⊆ q``
holds at ``(o, I)`` when the answer of ``p`` is a subset of the answer of
``q``.  These checks are used in three places:

* validating the witness/counterexample instances produced by the
  implication machinery (every counterexample returned to a user is
  re-checked here before being reported);
* the property-based tests, which compare the decision procedures against
  brute-force semantics on random instances;
* the optimizer, which may verify that a rewritten query agrees with the
  original on a given concrete site before installing the rewrite.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.instance import Instance, Oid
from ..query.evaluation import answer_set
from .constraint import ConstraintSet, PathConstraint, PathEquality, PathInclusion


def satisfies(instance: Instance, source: Oid, constraint: PathConstraint) -> bool:
    """Does ``(source, instance)`` satisfy the constraint?"""
    lhs_answers = answer_set(constraint.lhs, source, instance)
    rhs_answers = answer_set(constraint.rhs, source, instance)
    if isinstance(constraint, PathEquality):
        return lhs_answers == rhs_answers
    if isinstance(constraint, PathInclusion):
        return lhs_answers <= rhs_answers
    raise TypeError(f"unknown constraint type: {constraint!r}")


def satisfies_all(
    instance: Instance,
    source: Oid,
    constraints: "ConstraintSet | Iterable[PathConstraint]",
) -> bool:
    """Does ``(source, instance)`` satisfy every constraint in the set?"""
    return all(satisfies(instance, source, constraint) for constraint in constraints)


def violated_constraints(
    instance: Instance,
    source: Oid,
    constraints: "ConstraintSet | Iterable[PathConstraint]",
) -> list[PathConstraint]:
    """Return the constraints that fail at ``(source, instance)`` (possibly empty)."""
    return [
        constraint
        for constraint in constraints
        if not satisfies(instance, source, constraint)
    ]


def violates_conclusion(
    instance: Instance, source: Oid, conclusion: PathConstraint
) -> bool:
    """Does the instance *falsify* the conclusion constraint?

    A valid counterexample to ``E ⊨ c`` must satisfy every constraint of ``E``
    (checked with :func:`satisfies_all`) and violate ``c`` (checked here).
    """
    return not satisfies(instance, source, conclusion)


def is_counterexample(
    instance: Instance,
    source: Oid,
    premises: "ConstraintSet | Iterable[PathConstraint]",
    conclusion: PathConstraint,
) -> bool:
    """Full counterexample check: premises hold, conclusion fails."""
    return satisfies_all(instance, source, premises) and violates_conclusion(
        instance, source, conclusion
    )
