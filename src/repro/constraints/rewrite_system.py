"""The prefix rewrite system →E of Section 4.2.

Every word inclusion ``u ⊆ v`` in a constraint set ``E`` contributes the
rewrite rule ``u → v``.  The rewrite relation ``z →E t`` holds when there is a
finite sequence ``z = w1, ..., wn = t`` such that each step replaces a
*prefix*: ``wi = x·w`` and ``wi+1 = y·w`` for some rule ``x → y``.  The paper
proves (Lemma 4.4) that →E is sound and complete for implication of word
constraints: ``E ⊨ u ⊆ v`` iff ``u →E* v``.

The class below holds the rules and offers a *brute-force* breadth-first
exploration of the rewrite relation, used as the ground-truth oracle in tests
and to extract explicit derivations (step-by-step rewriting sequences) for
explanation purposes.  The efficient decision procedure lives in
:mod:`repro.constraints.rewrite_to` (the pre*-saturation automaton).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import ConstraintError
from .constraint import ConstraintSet, Word


@dataclass(frozen=True, slots=True)
class RewriteRule:
    """A single prefix rewrite rule ``lhs → rhs``."""

    lhs: Word
    rhs: Word

    def __str__(self) -> str:
        left = " ".join(self.lhs) if self.lhs else "%"
        right = " ".join(self.rhs) if self.rhs else "%"
        return f"{left} -> {right}"


@dataclass(frozen=True, slots=True)
class RewriteStep:
    """One step of a derivation: which rule fired and what it produced."""

    before: Word
    rule: RewriteRule
    after: Word


class PrefixRewriteSystem:
    """A finite set of prefix rewrite rules with exploration utilities."""

    def __init__(self, rules: Iterable[RewriteRule] = ()) -> None:
        self._rules: list[RewriteRule] = list(dict.fromkeys(rules))

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_constraints(cls, constraints: ConstraintSet) -> "PrefixRewriteSystem":
        """Build the system from a set of *word* constraints.

        Each word inclusion ``u ⊆ v`` becomes the rule ``u → v``; equalities
        contribute rules in both directions (they normalize to two inclusions).
        """
        if not constraints.is_word_constraint_set():
            raise ConstraintError(
                "the prefix rewrite system is defined only for word constraints"
            )
        rules = [RewriteRule(lhs, rhs) for lhs, rhs in constraints.word_inclusion_pairs()]
        return cls(rules)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Word, Word]]) -> "PrefixRewriteSystem":
        return cls(RewriteRule(tuple(lhs), tuple(rhs)) for lhs, rhs in pairs)

    # -- basic accessors --------------------------------------------------------
    @property
    def rules(self) -> tuple[RewriteRule, ...]:
        return tuple(self._rules)

    def symmetric_closure(self) -> "PrefixRewriteSystem":
        """Rules plus their inverses: the relation ↔E used for word equalities."""
        extended = list(self._rules)
        for rule in self._rules:
            extended.append(RewriteRule(rule.rhs, rule.lhs))
        return PrefixRewriteSystem(extended)

    def alphabet(self) -> frozenset[str]:
        labels: set[str] = set()
        for rule in self._rules:
            labels.update(rule.lhs)
            labels.update(rule.rhs)
        return frozenset(labels)

    def max_side_length(self) -> int:
        """The paper's ``M``: the maximum length of a word occurring in a rule."""
        return max(
            (max(len(rule.lhs), len(rule.rhs)) for rule in self._rules), default=0
        )

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "{" + ", ".join(str(rule) for rule in self._rules) + "}"

    # -- one-step rewriting ------------------------------------------------------
    def successors(self, word: Word) -> Iterator[tuple[RewriteRule, Word]]:
        """Yield all one-step prefix rewrites of ``word``."""
        for rule in self._rules:
            k = len(rule.lhs)
            if word[:k] == rule.lhs:
                yield rule, rule.rhs + word[k:]

    # -- brute-force exploration (test oracle) ------------------------------------
    def rewrites_to(
        self,
        start: Word,
        goal: Word,
        max_steps: int = 10_000,
        max_word_length: int | None = None,
    ) -> bool:
        """Breadth-first search: does ``start →E* goal``?

        ``max_steps`` bounds the number of *distinct words expanded* and
        ``max_word_length`` optionally prunes words longer than the bound;
        the search is therefore only a semi-decision in general, but it is
        exact whenever it terminates within the bounds without pruning — the
        tests use it on small inputs where the reachable set is tiny.
        """
        return self.find_derivation(start, goal, max_steps, max_word_length) is not None

    def find_derivation(
        self,
        start: Word,
        goal: Word,
        max_steps: int = 10_000,
        max_word_length: int | None = None,
    ) -> list[RewriteStep] | None:
        """Return an explicit derivation ``start →E ... →E goal`` or ``None``."""
        start = tuple(start)
        goal = tuple(goal)
        if start == goal:
            return []
        parents: dict[Word, tuple[Word, RewriteRule]] = {}
        queue: deque[Word] = deque([start])
        seen = {start}
        expanded = 0
        while queue and expanded < max_steps:
            current = queue.popleft()
            expanded += 1
            for rule, successor in self.successors(current):
                if max_word_length is not None and len(successor) > max_word_length:
                    continue
                if successor in seen:
                    continue
                seen.add(successor)
                parents[successor] = (current, rule)
                if successor == goal:
                    return _reconstruct(parents, start, goal)
                queue.append(successor)
        return None

    def reachable_words(
        self, start: Word, max_words: int = 10_000, max_word_length: int | None = None
    ) -> set[Word]:
        """The set of words reachable from ``start`` (bounded exploration)."""
        start = tuple(start)
        seen = {start}
        queue: deque[Word] = deque([start])
        while queue and len(seen) < max_words:
            current = queue.popleft()
            for _, successor in self.successors(current):
                if max_word_length is not None and len(successor) > max_word_length:
                    continue
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return seen


def _reconstruct(
    parents: dict[Word, tuple[Word, RewriteRule]], start: Word, goal: Word
) -> list[RewriteStep]:
    steps: list[RewriteStep] = []
    current = goal
    while current != start:
        previous, rule = parents[current]
        steps.append(RewriteStep(previous, rule, current))
        current = previous
    steps.reverse()
    return steps
