"""PTIME implication of word constraints (Theorem 4.3(i)).

By Lemma 4.4 the prefix rewrite system →E is sound and complete for
implication of word constraints: ``E ⊨ u ⊆ v`` iff ``u →E* v``.  By Lemma 4.5
membership in ``RewriteTo(v)`` is decidable in polynomial time via the
saturated automaton.  Put together, this module decides

* ``E ⊨ u ⊆ v``      (:func:`implies_word_inclusion`)
* ``E ⊨ u = v``      (:func:`implies_word_equality`)

and can additionally return an explicit rewriting derivation as a
human-readable explanation (:func:`explain_word_inclusion`).
"""

from __future__ import annotations

from functools import lru_cache

from ..exceptions import ConstraintError
from .constraint import ConstraintSet, Word
from .rewrite_system import PrefixRewriteSystem, RewriteStep
from .rewrite_to import rewrite_to_word_nfa


def _system_for(constraints: ConstraintSet) -> PrefixRewriteSystem:
    if not constraints.is_word_constraint_set():
        raise ConstraintError(
            "word-constraint implication requires a set of word constraints; "
            "use repro.constraints.general_implication for the general case"
        )
    return PrefixRewriteSystem.from_constraints(constraints)


def implies_word_inclusion(
    constraints: ConstraintSet, lhs: Word, rhs: Word
) -> bool:
    """Decide ``E ⊨ lhs ⊆ rhs`` in polynomial time."""
    system = _system_for(constraints)
    automaton = rewrite_to_word_nfa(system, tuple(rhs))
    return automaton.accepts(tuple(lhs))


def implies_word_equality(constraints: ConstraintSet, lhs: Word, rhs: Word) -> bool:
    """Decide ``E ⊨ lhs = rhs`` (both inclusions)."""
    return implies_word_inclusion(constraints, lhs, rhs) and implies_word_inclusion(
        constraints, rhs, lhs
    )


def explain_word_inclusion(
    constraints: ConstraintSet,
    lhs: Word,
    rhs: Word,
    max_steps: int = 50_000,
    max_word_length: int | None = None,
) -> list[RewriteStep] | None:
    """Return an explicit derivation ``lhs →E ... →E rhs`` when implied.

    The derivation search is breadth-first over the rewrite relation and is
    therefore not polynomial in the worst case, but the *decision* is made by
    the polynomial automaton test first: if the inclusion is not implied the
    function returns ``None`` immediately without searching.  When the
    inclusion is implied, a derivation is guaranteed to exist; the bounds are
    a practical safety valve and, when hit, the function returns an empty
    list to signal "implied, derivation too long to materialize".
    """
    if not implies_word_inclusion(constraints, lhs, rhs):
        return None
    system = _system_for(constraints)
    if max_word_length is None:
        # A generous default: derivations never need words much longer than
        # the start/goal plus the largest right-hand side.
        max_word_length = max(len(lhs), len(rhs)) + system.max_side_length() * 4 + 4
    derivation = system.find_derivation(
        tuple(lhs), tuple(rhs), max_steps=max_steps, max_word_length=max_word_length
    )
    if derivation is None:
        return []
    return derivation


class WordImplicationOracle:
    """Amortized interface: one constraint set, many implication queries.

    The saturated ``RewriteTo(v)`` automaton depends only on ``E`` and ``v``,
    so an oracle caches it per right-hand side.  This is the interface used
    by the optimizer, which probes many candidate rewritings against the same
    constraint set.
    """

    def __init__(self, constraints: ConstraintSet) -> None:
        self._constraints = constraints
        self._system = _system_for(constraints)
        self._automaton_for = lru_cache(maxsize=None)(self._build_automaton)

    def _build_automaton(self, rhs: Word):
        return rewrite_to_word_nfa(self._system, rhs)

    def implies_inclusion(self, lhs: Word, rhs: Word) -> bool:
        return self._automaton_for(tuple(rhs)).accepts(tuple(lhs))

    def implies_equality(self, lhs: Word, rhs: Word) -> bool:
        return self.implies_inclusion(lhs, rhs) and self.implies_inclusion(rhs, lhs)

    @property
    def system(self) -> PrefixRewriteSystem:
        return self._system
