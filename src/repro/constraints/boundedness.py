"""Boundedness of path queries under word equalities (Theorem 4.10).

A path query ``p`` is *bounded* under a finite set ``E`` of word equalities
when ``E ⊨ p = q`` for some query ``q`` whose language is finite — i.e. the
recursion in ``p`` can be eliminated, which (Section 3.2, Example 2) makes
the query guaranteed to terminate and typically much cheaper to evaluate.

The decision procedure follows the paper exactly:

1. build the K-sphere of the Armstrong instance of ``E`` (Lemma 4.9);
2. build the finite automaton ``F`` whose states are the sphere vertices plus
   a single absorbing ``out`` state, accepting exactly the words whose path
   leaves the sphere;
3. ``p`` is bounded iff the quotient language
   ``{ v | u·v ∈ L(p), u ∈ L(F) }`` is finite.

When the query is bounded, an equivalent finite query is *constructed* by
enumerating the answer classes of ``p`` on the Armstrong instance: classes
inside the sphere are tracked exactly, classes outside are identified by the
pair (exit vertex, outside suffix) — correct because outside the sphere every
vertex has indegree 1 and no path returns (Lemma 4.9).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..automata import (
    NFA,
    is_finite_language,
    left_quotient_by_language_nfa,
    regex_to_nfa,
)
from ..exceptions import BoundednessError
from ..regex import Regex, parse, simplify, union_all, word as word_expr
from .armstrong import WordEqualityTheory
from .constraint import ConstraintSet, Word


@dataclass
class BoundednessResult:
    """Outcome of the boundedness test for ``(E, p)``.

    Attributes:
        bounded: whether ``p`` is equivalent, under ``E``, to a finite query.
        equivalent_query: when bounded, a query with finite language such that
            ``E ⊨ p = equivalent_query`` (one representative word per answer
            class); ``None`` otherwise.
        answer_class_words: the representative words, one per answer class of
            ``p`` on the Armstrong instance (empty when unbounded).
        sphere_radius: the K used for the sphere.
        sphere_size: number of congruence classes inside the sphere.
    """

    bounded: bool
    equivalent_query: Regex | None = None
    answer_class_words: list[Word] = field(default_factory=list)
    sphere_radius: int = 0
    sphere_size: int = 0


def _sphere_automaton(
    theory: WordEqualityTheory,
    radius: int,
    alphabet: frozenset[str],
    max_classes: int | None = None,
) -> NFA:
    """The automaton ``F`` of Theorem 4.10 (sphere vertices + absorbing ``out``)."""
    sphere, source = theory.sphere(radius, max_classes=max_classes)
    out_state = ("out",)
    automaton = NFA(initial=("v", source), alphabet=set(alphabet))
    for oid in sphere.objects:
        automaton.add_state(("v", oid))
    automaton.add_state(out_state)
    for oid in sphere.objects:
        representative = tuple(oid)
        for label in sorted(alphabet):
            successor = theory.canonical_form(representative + (label,))
            if len(successor) <= radius:
                automaton.add_transition(("v", oid), label, ("v", successor))
            else:
                automaton.add_transition(("v", oid), label, out_state)
    for label in sorted(alphabet):
        automaton.add_transition(out_state, label, out_state)
    automaton.accepting = {out_state}
    return automaton


def decide_boundedness(
    constraints: ConstraintSet,
    query: "Regex | str",
    radius: int | None = None,
    max_outside_length: int | None = None,
    max_sphere_classes: int | None = None,
) -> BoundednessResult:
    """Decide boundedness of ``query`` under word equalities ``constraints``.

    ``radius`` overrides the default (safe) K-sphere radius; the default is
    the over-approximation computed by
    :meth:`WordEqualityTheory.default_sphere_radius`.  ``max_outside_length``
    bounds the enumeration of outside suffixes during construction of the
    equivalent query; it defaults to a value derived from the quotient
    language and only acts as a defensive assertion.  ``max_sphere_classes``
    caps the size of the materialized K-sphere (which is exponential in the
    constraint alphabet in the worst case); exceeding the cap raises
    :class:`~repro.exceptions.BoundednessError` rather than silently running
    for an unbounded amount of time.
    """
    expression = query if isinstance(query, Regex) else parse(query)
    expression = simplify(expression)
    alphabet = frozenset(constraints.alphabet() | expression.alphabet())
    theory = WordEqualityTheory(constraints, alphabet=alphabet)
    if radius is None:
        radius = theory.default_sphere_radius()

    sphere_instance, source = theory.sphere(radius, max_classes=max_sphere_classes)
    sphere_size = len(sphere_instance)

    query_nfa = regex_to_nfa(expression)
    sphere_automaton = _sphere_automaton(
        theory, radius, alphabet, max_classes=max_sphere_classes
    )

    # The paper's criterion: bounded iff the quotient of L(p) by L(F) is finite.
    quotient = left_quotient_by_language_nfa(query_nfa, sphere_automaton)
    bounded = is_finite_language(quotient)
    if not bounded:
        return BoundednessResult(
            bounded=False, sphere_radius=radius, sphere_size=sphere_size
        )

    answer_words = _enumerate_answer_classes(
        theory, expression, radius, alphabet, max_outside_length
    )
    equivalent = simplify(union_all([word_expr(word) for word in sorted(answer_words)]))
    return BoundednessResult(
        bounded=True,
        equivalent_query=equivalent,
        answer_class_words=sorted(answer_words),
        sphere_radius=radius,
        sphere_size=sphere_size,
    )


def _enumerate_answer_classes(
    theory: WordEqualityTheory,
    expression: Regex,
    radius: int,
    alphabet: frozenset[str],
    max_outside_length: int | None,
) -> set[Word]:
    """Enumerate one representative word per answer class of the query.

    The traversal runs the query NFA over the Armstrong instance.  Inside the
    sphere, vertices are canonical class representatives; outside, a vertex is
    uniquely identified by its exit vertex and the suffix read since exiting
    (indegree 1 + no re-entry, Lemma 4.9), and its representative word is
    ``exit_representative + suffix``.
    """
    nfa = regex_to_nfa(expression)
    if max_outside_length is None:
        # Outside suffixes cannot exceed the longest word of the (finite)
        # quotient language; a generous syntactic bound is enough here because
        # the traversal below only extends a suffix while the query NFA can
        # still make progress, and boundedness has already been established.
        max_outside_length = radius + sum(
            1 for _ in expression.subexpressions()
        ) + len(nfa.states) + 2

    answers: set[Word] = set()
    start_vertex = theory.canonical_form(())
    start = ("in", start_vertex, nfa.initial_closure())
    queue: deque[tuple] = deque([start])
    seen = {start}

    def record(representative: Word, states: frozenset) -> None:
        if states & nfa.accepting:
            answers.add(theory.canonical_form(representative))

    record(start_vertex, start[2])

    while queue:
        kind, vertex, states = queue.popleft()
        if kind == "in":
            representative = tuple(vertex)
            for label in sorted(alphabet):
                next_states = nfa.step(states, label)
                if not next_states:
                    continue
                successor = theory.canonical_form(representative + (label,))
                if len(successor) <= radius:
                    item = ("in", successor, next_states)
                    if item not in seen:
                        seen.add(item)
                        record(successor, next_states)
                        queue.append(item)
                else:
                    item = ("out", (representative, (label,)), next_states)
                    if item not in seen:
                        seen.add(item)
                        record(representative + (label,), next_states)
                        queue.append(item)
        else:
            exit_representative, suffix = vertex
            if len(suffix) > max_outside_length:
                raise BoundednessError(
                    "outside-suffix enumeration exceeded its bound; "
                    "this indicates an internal inconsistency with the "
                    "finiteness test"
                )
            for label in sorted(alphabet):
                next_states = nfa.step(states, label)
                if not next_states:
                    continue
                extended = suffix + (label,)
                item = ("out", (exit_representative, extended), next_states)
                if item not in seen:
                    seen.add(item)
                    record(exit_representative + extended, next_states)
                    queue.append(item)
    return answers


def is_bounded_under(constraints: ConstraintSet, query: "Regex | str") -> bool:
    """Convenience wrapper returning only the yes/no boundedness answer."""
    return decide_boundedness(constraints, query).bounded
