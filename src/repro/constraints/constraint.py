"""Path constraints (Definition 4.1).

A *path inclusion* ``p ⊆ q`` holds at ``(o, I)`` when ``p(o, I) ⊆ q(o, I)``;
a *path equality* ``p = q`` when the two answer sets coincide.  When both
sides are plain words the constraint is a *word* inclusion/equality — the
special cases for which the paper obtains PTIME/PSPACE procedures.

This module provides the constraint classes, a small textual syntax
(``"p <= q"`` / ``"p = q"``), and :class:`ConstraintSet`, which normalizes a
collection of constraints into inclusions, classifies them (word vs path),
and applies the paper's convention that whenever ``u ⊆ ε`` is present the
converse ``ε ⊆ u`` is added as well (Section 4.2, to avoid "emptiness
constraints").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from ..exceptions import ConstraintError
from ..regex import Regex, parse, simplify, to_string, word as word_expr

Word = tuple[str, ...]


@dataclass(frozen=True)
class PathConstraint:
    """Base class for path constraints; ``lhs`` and ``rhs`` are regular expressions."""

    lhs: Regex
    rhs: Regex

    def is_word_constraint(self) -> bool:
        """True iff both sides denote single words (word inclusion/equality)."""
        return self.lhs.as_word() is not None and self.rhs.as_word() is not None

    def word_sides(self) -> tuple[Word, Word]:
        """Return both sides as words; raises if not a word constraint."""
        lhs = self.lhs.as_word()
        rhs = self.rhs.as_word()
        if lhs is None or rhs is None:
            raise ConstraintError(f"{self} is not a word constraint")
        return lhs, rhs

    def alphabet(self) -> frozenset[str]:
        return self.lhs.alphabet() | self.rhs.alphabet()


@dataclass(frozen=True)
class PathInclusion(PathConstraint):
    """The constraint ``lhs ⊆ rhs``."""

    def __str__(self) -> str:
        return f"{to_string(self.lhs)} <= {to_string(self.rhs)}"

    def inclusions(self) -> tuple["PathInclusion", ...]:
        return (self,)


@dataclass(frozen=True)
class PathEquality(PathConstraint):
    """The constraint ``lhs = rhs`` (equivalent to the two inclusions)."""

    def __str__(self) -> str:
        return f"{to_string(self.lhs)} = {to_string(self.rhs)}"

    def inclusions(self) -> tuple[PathInclusion, ...]:
        return (
            PathInclusion(self.lhs, self.rhs),
            PathInclusion(self.rhs, self.lhs),
        )


def word_inclusion(lhs: "str | Word | list[str]", rhs: "str | Word | list[str]") -> PathInclusion:
    """Build a word inclusion from label sequences or space-separated strings."""
    return PathInclusion(word_expr(lhs), word_expr(rhs))


def word_equality(lhs: "str | Word | list[str]", rhs: "str | Word | list[str]") -> PathEquality:
    """Build a word equality from label sequences or space-separated strings."""
    return PathEquality(word_expr(lhs), word_expr(rhs))


def path_inclusion(lhs: "Regex | str", rhs: "Regex | str") -> PathInclusion:
    """Build a path inclusion; string arguments are parsed as path expressions."""
    return PathInclusion(_coerce(lhs), _coerce(rhs))


def path_equality(lhs: "Regex | str", rhs: "Regex | str") -> PathEquality:
    """Build a path equality; string arguments are parsed as path expressions."""
    return PathEquality(_coerce(lhs), _coerce(rhs))


def parse_constraint(text: str) -> PathConstraint:
    """Parse ``"p <= q"`` (inclusion) or ``"p = q"`` (equality).

    The inclusion separator also accepts the Unicode ``⊆``.
    """
    for separator, kind in (("<=", "inclusion"), ("⊆", "inclusion"), ("=", "equality")):
        if separator in text:
            left, _, right = text.partition(separator)
            lhs = parse(left)
            rhs = parse(right)
            if kind == "inclusion":
                return PathInclusion(lhs, rhs)
            return PathEquality(lhs, rhs)
    raise ConstraintError(f"constraint must contain '<=' or '=': {text!r}")


def _coerce(value: "Regex | str") -> Regex:
    return value if isinstance(value, Regex) else parse(value)


class ConstraintSet:
    """A finite set ``E`` of path constraints.

    The class is the entry point for the implication machinery: it normalizes
    equalities into pairs of inclusions, detects the word-constraint special
    case, exposes the alphabet and the maximum word length ``M`` used by the
    K-sphere bound of Lemma 4.9, and applies the ε convention of Section 4.2.
    """

    def __init__(self, constraints: Iterable["PathConstraint | str"] = ()) -> None:
        self._constraints: list[PathConstraint] = []
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: "PathConstraint | str") -> None:
        if isinstance(constraint, str):
            constraint = parse_constraint(constraint)
        if not isinstance(constraint, PathConstraint):
            raise ConstraintError(f"not a constraint: {constraint!r}")
        self._constraints.append(constraint)
        self.__dict__.pop("inclusions", None)  # invalidate cached_property

    def __iter__(self) -> Iterator[PathConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self._constraints) + "}"

    @property
    def constraints(self) -> tuple[PathConstraint, ...]:
        return tuple(self._constraints)

    @cached_property
    def inclusions(self) -> tuple[PathInclusion, ...]:
        """All constraints normalized to inclusions (equalities split in two).

        Following the convention of Section 4.2, whenever a *word* inclusion
        ``u ⊆ ε`` is present, the converse ``ε ⊆ u`` is added, so that the
        theory never implicitly encodes an emptiness constraint.
        """
        result: list[PathInclusion] = []
        seen: set[tuple[Regex, Regex]] = set()

        def push(inclusion: PathInclusion) -> None:
            key = (simplify(inclusion.lhs), simplify(inclusion.rhs))
            if key not in seen:
                seen.add(key)
                result.append(PathInclusion(key[0], key[1]))

        for constraint in self._constraints:
            for inclusion in constraint.inclusions():
                push(inclusion)
        for inclusion in list(result):
            if inclusion.is_word_constraint():
                lhs, rhs = inclusion.word_sides()
                if rhs == () and lhs != ():
                    push(PathInclusion(word_expr(()), word_expr(lhs)))
        return tuple(result)

    def is_word_constraint_set(self) -> bool:
        """True iff every constraint is a word constraint (Section 4.2 case)."""
        return all(c.is_word_constraint() for c in self._constraints)

    def is_word_equality_set(self) -> bool:
        """True iff every constraint is a word *equality* (Section 4.3 case)."""
        return all(
            isinstance(c, PathEquality) and c.is_word_constraint()
            for c in self._constraints
        )

    def word_inclusion_pairs(self) -> list[tuple[Word, Word]]:
        """All (lhs, rhs) word pairs from the normalized inclusions.

        Raises :class:`ConstraintError` if some constraint is not a word
        constraint — callers decide whether to fall back to the general
        procedure instead.
        """
        pairs: list[tuple[Word, Word]] = []
        for inclusion in self.inclusions:
            pairs.append(inclusion.word_sides())
        return pairs

    def alphabet(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for constraint in self._constraints:
            result |= constraint.alphabet()
        return result

    def max_word_length(self) -> int:
        """``M``: the maximum length of a word occurring in a word constraint."""
        longest = 0
        for constraint in self._constraints:
            for side in (constraint.lhs, constraint.rhs):
                as_word = side.as_word()
                if as_word is not None:
                    longest = max(longest, len(as_word))
        return longest
