r"""Regularity of ``RewriteTo``: the pre*-saturation construction.

Lemma 4.5 of the paper shows that for a finite set ``E`` of word constraints
and a word ``v``, the set ``RewriteTo(v) = { u | u →E* v }`` is regular and an
NFA for it is constructible in polynomial time; Lemma 4.7 extends this to a
regular target ``RewriteTo(p) = { u | ∃ v ∈ L(p), u →E* v }``.  The paper's
proof goes through a pushdown automaton that loads the input on its stack and
then simulates prefix rewriting; converting that PDA to an NFA is exactly the
classical *pre\*-saturation* for prefix rewriting systems, which is what we
implement directly:

1. start from an NFA ``A`` for the target language, with initial state ``ι``;
2. for every rule ``x → y`` with ``|x| ≥ 2``, pre-create a fresh chain of
   states that reads ``x[:-1]`` from ``ι`` (created once, shared by all
   saturation steps for that rule);
3. saturate: whenever the current automaton can read ``y`` from ``ι`` ending
   in state ``q``, add the final edge completing an ``x``-path from ``ι`` to
   ``q`` (an ε-edge if ``x = ε``, a direct edge if ``|x| = 1``, the last
   chain edge otherwise);
4. repeat until no edge can be added.

The number of candidate edges is ``O(|rules| · |states|)``, so saturation is
polynomial; the resulting automaton accepts exactly
``pre*(L(A)) = RewriteTo(L(A))``.  The property-based tests validate the
construction against the brute-force breadth-first rewriting of
:mod:`repro.constraints.rewrite_system` on small random systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata import EPSILON, NFA, regex_to_nfa, single_word_nfa
from ..regex import Regex
from .constraint import Word
from .rewrite_system import PrefixRewriteSystem, RewriteRule


@dataclass
class SaturationStatistics:
    """Bookkeeping about a saturation run (surfaced by benchmarks)."""

    rounds: int = 0
    edges_added: int = 0
    chain_states: int = 0


def saturate_pre_star(
    system: PrefixRewriteSystem, target: NFA
) -> tuple[NFA, SaturationStatistics]:
    """Return an NFA for ``pre*(L(target))`` under ``system``, plus statistics.

    The ``target`` automaton is not modified; its states are wrapped so that
    the chain states added by the saturation can never collide with them.
    """
    stats = SaturationStatistics()

    nfa = NFA(initial=("t", target.initial), alphabet=set(target.alphabet))
    for state in target.states:
        nfa.add_state(("t", state))
    for source, label, destination in target.iter_transitions():
        nfa.add_transition(("t", source), label, ("t", destination))
    nfa.accepting = {("t", state) for state in target.accepting}
    initial = nfa.initial

    # Pre-create the per-rule chains reading lhs[:-1] from the initial state.
    chain_end: dict[int, object] = {}
    for rule_index, rule in enumerate(system.rules):
        if len(rule.lhs) >= 2:
            current = initial
            for position, label in enumerate(rule.lhs[:-1]):
                state = ("chain", rule_index, position)
                nfa.add_transition(current, label, state)
                current = state
                stats.chain_states += 1
            chain_end[rule_index] = current

    def final_edge(rule_index: int, rule: RewriteRule, q: object) -> tuple[object, str, object]:
        if len(rule.lhs) == 0:
            return (initial, EPSILON, q)
        if len(rule.lhs) == 1:
            return (initial, rule.lhs[0], q)
        return (chain_end[rule_index], rule.lhs[-1], q)

    changed = True
    while changed:
        changed = False
        stats.rounds += 1
        for rule_index, rule in enumerate(system.rules):
            reachable = nfa.run(rule.rhs)
            for q in reachable:
                source, label, destination = final_edge(rule_index, rule, q)
                if destination in nfa.transitions.get(source, {}).get(label, set()):
                    continue
                nfa.add_transition(source, label, destination)
                stats.edges_added += 1
                changed = True
    return nfa, stats


def rewrite_to_word_nfa(system: PrefixRewriteSystem, target_word: Word) -> NFA:
    """NFA for ``RewriteTo(v) = { u | u →E* v }`` (Lemma 4.5)."""
    nfa, _ = saturate_pre_star(system, single_word_nfa(tuple(target_word)))
    return nfa


def rewrite_to_language_nfa(system: PrefixRewriteSystem, target: "Regex | NFA") -> NFA:
    """NFA for ``RewriteTo(p) = { u | ∃ v ∈ L(p), u →E* v }`` (Lemma 4.7)."""
    target_nfa = target if isinstance(target, NFA) else regex_to_nfa(target)
    nfa, _ = saturate_pre_star(system, target_nfa)
    return nfa


def rewrite_to_with_statistics(
    system: PrefixRewriteSystem, target: "Regex | NFA | Word"
) -> tuple[NFA, SaturationStatistics]:
    """Like the two helpers above but also returning saturation statistics."""
    if isinstance(target, NFA):
        return saturate_pre_star(system, target)
    if isinstance(target, Regex):
        return saturate_pre_star(system, regex_to_nfa(target))
    return saturate_pre_star(system, single_word_nfa(tuple(target)))
