"""Implication of general path constraints (Theorem 4.2).

The paper proves that implication of arbitrary regular path constraints is
decidable: if ``E ⊭ p ⊆ q`` then a counterexample instance exists whose size
is doubly exponential in the input, so exhaustive search over instances up to
that size decides the problem in 2-EXPSPACE.  That search is far beyond any
practical budget, so this module exposes a *three-tier* procedure that is
sound in both directions and complete on the important special cases:

1. **Language reasoning** (no constraints needed): ``L(p) ⊆ L(q)`` already
   implies the constraint.
2. **Word-constraint case** (complete): when every premise is a word
   constraint, the PTIME/PSPACE procedures of Section 4.2 decide the
   question exactly; refutations come with a concrete counterexample
   instance built by the Lemma 4.4 construction.
3. **General case** (sound but incomplete within bounds):
   a. a *prefix-substitution prover* — the sound inference "if ``p' ⊆ q'`` is
      a premise then ``p'·s ⊆ q'·s`` for every suffix expression ``s``",
      closed under transitivity and language inclusion, searched
      bidirectionally from both sides of the goal;
   b. a *counterexample search* over small instances (word-path candidates,
      their foldings, and random graphs), each candidate being verified with
      the brute-force semantics before being reported.

Every result records which tier settled it; when no tier does, the verdict is
``UNKNOWN`` — the honest outcome for a 2-EXPSPACE-complete problem attacked
with bounded resources.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from enum import Enum

from ..automata import includes, regex_to_nfa
from ..graph.instance import Instance, Oid
from ..regex import Concat, Epsilon, Regex, concat, parse, simplify
from ..regex.language import enumerate_words
from .constraint import (
    ConstraintSet,
    PathConstraint,
    PathEquality,
    PathInclusion,
)
from .path_by_word import implies_path_inclusion
from .satisfaction import is_counterexample
from .witness import counterexample_instance_for_word_refutation


class Verdict(Enum):
    """Outcome of the general implication procedure."""

    IMPLIED = "implied"
    NOT_IMPLIED = "not-implied"
    UNKNOWN = "unknown"


@dataclass
class ImplicationResult:
    """Verdict plus provenance and (for refutations) a checked counterexample."""

    verdict: Verdict
    method: str
    counterexample: tuple[Instance, Oid] | None = None
    notes: str = ""

    @property
    def implied(self) -> bool:
        return self.verdict is Verdict.IMPLIED


@dataclass
class SearchBudget:
    """Resource bounds for the tier-3 procedures."""

    substitution_depth: int = 3
    substitution_width: int = 200
    word_enumeration_length: int = 6
    random_instances: int = 300
    max_random_vertices: int = 5
    seed: int = 0


def _coerce(expression: "Regex | str") -> Regex:
    return simplify(expression if isinstance(expression, Regex) else parse(expression))


def decide_implication(
    constraints: ConstraintSet,
    conclusion: "PathConstraint | str",
    budget: SearchBudget | None = None,
) -> ImplicationResult:
    """Decide (or bound) ``E ⊨ conclusion`` for general path constraints."""
    if isinstance(conclusion, str):
        from .constraint import parse_constraint

        conclusion = parse_constraint(conclusion)
    budget = budget or SearchBudget()

    if isinstance(conclusion, PathEquality):
        forward = decide_implication(
            constraints, PathInclusion(conclusion.lhs, conclusion.rhs), budget
        )
        if forward.verdict is not Verdict.IMPLIED:
            return forward
        backward = decide_implication(
            constraints, PathInclusion(conclusion.rhs, conclusion.lhs), budget
        )
        if backward.verdict is Verdict.IMPLIED:
            return ImplicationResult(
                Verdict.IMPLIED, method=f"{forward.method}+{backward.method}"
            )
        return backward

    if not isinstance(conclusion, PathInclusion):
        raise TypeError(f"unknown constraint type: {conclusion!r}")

    lhs = _coerce(conclusion.lhs)
    rhs = _coerce(conclusion.rhs)

    # Tier 1: plain language inclusion (constraint-free reasoning).
    if includes(regex_to_nfa(rhs), regex_to_nfa(lhs)):
        return ImplicationResult(Verdict.IMPLIED, method="language-inclusion")

    # Tier 2: the complete word-constraint procedures of Section 4.2.
    if constraints.is_word_constraint_set():
        outcome = implies_path_inclusion(constraints, lhs, rhs)
        if outcome.implied:
            return ImplicationResult(Verdict.IMPLIED, method="word-constraints-pspace")
        witness_word = outcome.counterexample_word or ()
        instance, source = counterexample_instance_for_word_refutation(
            constraints, witness_word, rhs.alphabet() | lhs.alphabet()
        )
        conclusion_constraint = PathInclusion(lhs, rhs)
        if is_counterexample(instance, source, constraints, conclusion_constraint):
            return ImplicationResult(
                Verdict.NOT_IMPLIED,
                method="word-constraints-pspace",
                counterexample=(instance, source),
                notes=f"refuting word: {' '.join(witness_word) or 'ε'}",
            )
        # The decision itself is complete even if the constructed witness
        # failed re-validation (which would indicate a bound chosen too small);
        # report the refutation without a counterexample rather than lie.
        return ImplicationResult(
            Verdict.NOT_IMPLIED,
            method="word-constraints-pspace",
            notes=f"refuting word: {' '.join(witness_word) or 'ε'}",
        )

    # Tier 3a: sound prefix-substitution prover.
    if _substitution_prover(constraints, lhs, rhs, budget):
        return ImplicationResult(Verdict.IMPLIED, method="prefix-substitution")

    # Tier 3b: bounded counterexample search.
    counterexample = _search_counterexample(
        constraints, PathInclusion(lhs, rhs), budget
    )
    if counterexample is not None:
        return ImplicationResult(
            Verdict.NOT_IMPLIED,
            method="counterexample-search",
            counterexample=counterexample,
        )

    return ImplicationResult(
        Verdict.UNKNOWN,
        method="bounded-search-exhausted",
        notes=(
            "neither a proof nor a counterexample was found within the budget; "
            "the general problem is decidable only in 2-EXPSPACE (Theorem 4.2)"
        ),
    )


# ---------------------------------------------------------------------------
# Tier 3a: prefix-substitution prover.
# ---------------------------------------------------------------------------

def _factors(expression: Regex) -> list[Regex]:
    """Flatten a concatenation into its factor list."""
    if isinstance(expression, Concat):
        return _factors(expression.left) + _factors(expression.right)
    return [expression]


def _prefix_splits(expression: Regex) -> list[tuple[Regex, Regex]]:
    """All splits ``expression = prefix · suffix`` along concatenation factors."""
    factors = _factors(expression)
    splits: list[tuple[Regex, Regex]] = []
    for index in range(len(factors) + 1):
        prefix: Regex = Epsilon()
        for factor in factors[:index]:
            prefix = concat(prefix, factor)
        suffix: Regex = Epsilon()
        for factor in factors[index:]:
            suffix = concat(suffix, factor)
        splits.append((simplify(prefix), simplify(suffix)))
    return splits


def _language_equal(first: Regex, second: Regex) -> bool:
    first_nfa = regex_to_nfa(first)
    second_nfa = regex_to_nfa(second)
    return includes(first_nfa, second_nfa) and includes(second_nfa, first_nfa)


def _substitution_successors(
    expression: Regex, rules: list[tuple[Regex, Regex]]
) -> set[Regex]:
    """One sound rewriting step: replace a prefix matching a premise's lhs."""
    successors: set[Regex] = set()
    for prefix, suffix in _prefix_splits(expression):
        for rule_lhs, rule_rhs in rules:
            if _language_equal(prefix, rule_lhs):
                successors.add(simplify(concat(rule_rhs, suffix)))
    return successors


def _substitution_prover(
    constraints: ConstraintSet, lhs: Regex, rhs: Regex, budget: SearchBudget
) -> bool:
    """Bidirectional search: ``lhs ⊆ ... ⊆ rhs`` via prefix substitutions.

    Forward steps use premises ``a ⊆ b`` as ``a·s → b·s`` (sound because path
    inclusions are closed under right concatenation); backward steps from the
    goal use them in the opposite direction.  Success when some forward
    expression is language-included in some backward expression.
    """
    forward_rules = [(inc.lhs, inc.rhs) for inc in constraints.inclusions]
    backward_rules = [(inc.rhs, inc.lhs) for inc in constraints.inclusions]

    forward: set[Regex] = {simplify(lhs)}
    backward: set[Regex] = {simplify(rhs)}

    def closes() -> bool:
        for candidate in forward:
            candidate_nfa = regex_to_nfa(candidate)
            for target in backward:
                if includes(regex_to_nfa(target), candidate_nfa):
                    return True
        return False

    if closes():
        return True

    forward_frontier = deque(forward)
    backward_frontier = deque(backward)
    for _ in range(budget.substitution_depth):
        next_forward: deque[Regex] = deque()
        while forward_frontier and len(forward) < budget.substitution_width:
            expression = forward_frontier.popleft()
            for successor in _substitution_successors(expression, forward_rules):
                if successor not in forward:
                    forward.add(successor)
                    next_forward.append(successor)
        next_backward: deque[Regex] = deque()
        while backward_frontier and len(backward) < budget.substitution_width:
            expression = backward_frontier.popleft()
            for successor in _substitution_successors(expression, backward_rules):
                if successor not in backward:
                    backward.add(successor)
                    next_backward.append(successor)
        if closes():
            return True
        if not next_forward and not next_backward:
            break
        forward_frontier = next_forward
        backward_frontier = next_backward
    return False


# ---------------------------------------------------------------------------
# Tier 3b: bounded counterexample search.
# ---------------------------------------------------------------------------

def _path_instance(word: tuple[str, ...]) -> tuple[Instance, Oid]:
    instance = Instance()
    instance.add_object(0)
    for index, label in enumerate(word):
        instance.add_edge(index, label, index + 1)
    return instance, 0


def _folded_path_instances(word: tuple[str, ...]) -> list[tuple[Instance, Oid]]:
    """Path instances with the last vertex folded onto an earlier one.

    Folding creates cycles and vertex sharing, which is how instances satisfy
    non-trivial premises (e.g. cached-query equalities) while still violating
    a conclusion.
    """
    candidates: list[tuple[Instance, Oid]] = []
    length = len(word)
    for target in range(length):
        instance = Instance()
        instance.add_object(0)
        for index, label in enumerate(word):
            destination = target if index == length - 1 else index + 1
            instance.add_edge(index, label, destination)
        candidates.append((instance, 0))
    return candidates


def _random_instance(
    rng: random.Random, alphabet: list[str], max_vertices: int
) -> tuple[Instance, Oid]:
    vertex_count = rng.randint(1, max_vertices)
    instance = Instance()
    for vertex in range(vertex_count):
        instance.add_object(vertex)
    edge_count = rng.randint(vertex_count - 1, max(vertex_count * 2, vertex_count))
    for _ in range(edge_count):
        instance.add_edge(
            rng.randrange(vertex_count),
            rng.choice(alphabet),
            rng.randrange(vertex_count),
        )
    return instance, 0


def _search_counterexample(
    constraints: ConstraintSet,
    conclusion: PathInclusion,
    budget: SearchBudget,
) -> tuple[Instance, Oid] | None:
    alphabet = sorted(
        set(constraints.alphabet())
        | set(conclusion.lhs.alphabet())
        | set(conclusion.rhs.alphabet())
    )
    if not alphabet:
        return None

    candidates: list[tuple[Instance, Oid]] = []
    for word in enumerate_words(conclusion.lhs, budget.word_enumeration_length):
        candidates.append(_path_instance(word))
        candidates.extend(_folded_path_instances(word))

    rng = random.Random(budget.seed)
    for _ in range(budget.random_instances):
        candidates.append(_random_instance(rng, alphabet, budget.max_random_vertices))

    for instance, source in candidates:
        if is_counterexample(instance, source, constraints, conclusion):
            return instance, source
    return None
