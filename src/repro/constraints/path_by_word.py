"""PSPACE implication of path constraints by word constraints (Theorem 4.3(ii)).

Lemma 4.6 shows that when ``E`` consists of word constraints, ``E ⊨ p ⊆ q``
holds iff every word of ``L(p)`` rewrites (via →E) into some word of ``L(q)``,
i.e. iff ``L(p) ⊆ RewriteTo(q)``.  Lemma 4.7 provides a polynomial NFA for
``RewriteTo(q)``; the remaining inclusion test between two NFAs is the
PSPACE-complete part (the paper notes that regular-expression equivalence is
already PSPACE-complete without any constraints, so this is optimal).

Two equivalent routes are implemented and cross-checked in tests:

* the direct on-the-fly inclusion test ``L(p) ⊆ L(RewriteTo(q))``;
* the paper's formulation via equivalence: build ``F_{p+q}`` for
  ``L(p) ∪ RewriteTo(q)`` and test ``L(F_q) = L(F_{p+q})``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata import (
    NFA,
    equivalent,
    inclusion_counterexample,
    regex_to_nfa,
    union_nfa,
)
from ..exceptions import ConstraintError
from ..regex import Regex, parse
from .constraint import ConstraintSet, PathConstraint, PathEquality, PathInclusion
from .rewrite_system import PrefixRewriteSystem
from .rewrite_to import rewrite_to_language_nfa


@dataclass(frozen=True)
class PathByWordResult:
    """Outcome of a path-by-word implication test.

    ``counterexample_word`` is a word of ``L(p)`` that does not rewrite into
    ``L(q)`` — by Lemma 4.6 its existence refutes the implication, and the
    witness construction of Lemma 4.4 can turn it into a concrete instance.
    """

    implied: bool
    counterexample_word: tuple[str, ...] | None = None


def _coerce(expression: "Regex | str") -> Regex:
    return expression if isinstance(expression, Regex) else parse(expression)


def _require_word_constraints(constraints: ConstraintSet) -> PrefixRewriteSystem:
    if not constraints.is_word_constraint_set():
        raise ConstraintError(
            "this procedure requires word constraints; use "
            "repro.constraints.general_implication for general path constraints"
        )
    return PrefixRewriteSystem.from_constraints(constraints)


def rewrite_target_nfa(constraints: ConstraintSet, rhs: "Regex | str") -> NFA:
    """The ``RewriteTo(q)`` automaton used by the inclusion test (Lemma 4.7)."""
    system = _require_word_constraints(constraints)
    return rewrite_to_language_nfa(system, _coerce(rhs))


def implies_path_inclusion(
    constraints: ConstraintSet, lhs: "Regex | str", rhs: "Regex | str"
) -> PathByWordResult:
    """Decide ``E ⊨ lhs ⊆ rhs`` for word-constraint ``E`` (PSPACE)."""
    lhs_expr = _coerce(lhs)
    container = rewrite_target_nfa(constraints, rhs)
    contained = regex_to_nfa(lhs_expr)
    alphabet = set(container.alphabet) | set(contained.alphabet) | set(
        constraints.alphabet()
    )
    witness = inclusion_counterexample(container, contained, alphabet)
    if witness is None:
        return PathByWordResult(implied=True)
    return PathByWordResult(implied=False, counterexample_word=witness)


def implies_path_equality(
    constraints: ConstraintSet, lhs: "Regex | str", rhs: "Regex | str"
) -> PathByWordResult:
    """Decide ``E ⊨ lhs = rhs`` for word-constraint ``E``."""
    forward = implies_path_inclusion(constraints, lhs, rhs)
    if not forward.implied:
        return forward
    backward = implies_path_inclusion(constraints, rhs, lhs)
    if not backward.implied:
        return backward
    return PathByWordResult(implied=True)


def implies_path_constraint(
    constraints: ConstraintSet, conclusion: PathConstraint
) -> PathByWordResult:
    """Dispatch on the conclusion's kind (inclusion vs equality)."""
    if isinstance(conclusion, PathEquality):
        return implies_path_equality(constraints, conclusion.lhs, conclusion.rhs)
    if isinstance(conclusion, PathInclusion):
        return implies_path_inclusion(constraints, conclusion.lhs, conclusion.rhs)
    raise TypeError(f"unknown constraint type: {conclusion!r}")


def implies_path_inclusion_via_union(
    constraints: ConstraintSet, lhs: "Regex | str", rhs: "Regex | str"
) -> bool:
    """The paper's alternative formulation of the same test.

    ``E ⊨ p ⊆ q`` iff ``L(p) ⊆ RewriteTo(q)`` iff
    ``L(RewriteTo(q)) = L(p) ∪ RewriteTo(q)``.  Exists mainly so tests can
    cross-check the primary on-the-fly inclusion implementation.
    """
    lhs_nfa = regex_to_nfa(_coerce(lhs))
    rewrite_nfa = rewrite_target_nfa(constraints, rhs)
    combined = union_nfa(lhs_nfa, rewrite_nfa)
    return equivalent(rewrite_nfa, combined)
