"""Path constraints and the implication problem (Section 4 of the paper)."""

from .armstrong import WordEqualityTheory
from .boundedness import BoundednessResult, decide_boundedness, is_bounded_under
from .constraint import (
    ConstraintSet,
    PathConstraint,
    PathEquality,
    PathInclusion,
    parse_constraint,
    path_equality,
    path_inclusion,
    word_equality,
    word_inclusion,
)
from .general_implication import (
    ImplicationResult,
    SearchBudget,
    Verdict,
    decide_implication,
)
from .path_by_word import (
    PathByWordResult,
    implies_path_constraint,
    implies_path_equality,
    implies_path_inclusion,
    implies_path_inclusion_via_union,
    rewrite_target_nfa,
)
from .rewrite_system import PrefixRewriteSystem, RewriteRule, RewriteStep
from .rewrite_to import (
    SaturationStatistics,
    rewrite_to_language_nfa,
    rewrite_to_with_statistics,
    rewrite_to_word_nfa,
    saturate_pre_star,
)
from .satisfaction import (
    is_counterexample,
    satisfies,
    satisfies_all,
    violated_constraints,
    violates_conclusion,
)
from .witness import (
    Lemma44Witness,
    counterexample_instance_for_word_refutation,
    figure4_instance,
    lemma44_witness,
)
from .word_implication import (
    WordImplicationOracle,
    explain_word_inclusion,
    implies_word_equality,
    implies_word_inclusion,
)

__all__ = [
    "BoundednessResult",
    "ConstraintSet",
    "ImplicationResult",
    "Lemma44Witness",
    "PathByWordResult",
    "PathConstraint",
    "PathEquality",
    "PathInclusion",
    "PrefixRewriteSystem",
    "RewriteRule",
    "RewriteStep",
    "SaturationStatistics",
    "SearchBudget",
    "Verdict",
    "WordEqualityTheory",
    "WordImplicationOracle",
    "counterexample_instance_for_word_refutation",
    "decide_boundedness",
    "decide_implication",
    "explain_word_inclusion",
    "figure4_instance",
    "implies_path_constraint",
    "implies_path_equality",
    "implies_path_inclusion",
    "implies_path_inclusion_via_union",
    "implies_word_equality",
    "implies_word_inclusion",
    "is_bounded_under",
    "is_counterexample",
    "lemma44_witness",
    "parse_constraint",
    "path_equality",
    "path_inclusion",
    "rewrite_target_nfa",
    "rewrite_to_language_nfa",
    "rewrite_to_with_statistics",
    "rewrite_to_word_nfa",
    "satisfies",
    "satisfies_all",
    "saturate_pre_star",
    "violated_constraints",
    "violates_conclusion",
    "word_equality",
    "word_inclusion",
]
