"""Witness instances for word-constraint implication (Lemma 4.4, Figure 4).

The completeness half of Lemma 4.4 constructs, for a finite set ``E`` of word
constraints and a bound ``k``, a finite instance ``(o, I)`` that satisfies
``E`` and such that for all words ``u, v`` of length at most ``k``,
``(o, I) ⊨ u ⊆ v`` implies ``u →E* v``.  The construction populates each
⇄-equivalence class ``û`` (restricted to words of length ≤ k) with the set of
distinguished vertices of the classes below it in the rewrite order, and wires
``a``-edges from ``o_û`` to every vertex of ``obj(ûa)``.

This instance is what turns a *refuted* implication into a *concrete
counterexample graph*: if ``E ⊭ u ⊆ v`` then the instance built with
``k > max(|u|, |v|, M)`` satisfies ``E`` but violates ``u ⊆ v`` — and
likewise for a path constraint refuted by Lemma 4.6's criterion.

``figure4_instance`` reproduces the worked example of Figure 4
(``E = {a·a ⊆ a}``, ``k = 3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..graph.instance import Instance, Oid
from .constraint import ConstraintSet, Word, word_inclusion
from .rewrite_system import PrefixRewriteSystem
from .rewrite_to import rewrite_to_word_nfa


@dataclass
class Lemma44Witness:
    """The instance of Lemma 4.4 together with its bookkeeping maps."""

    instance: Instance
    source: Oid
    bound: int
    # Canonical representative of each class (the shortest, then lexicographically
    # least member among words of length ≤ k).
    class_of: dict[Word, Word]
    # obj(σ): the vertices populating class σ, keyed by representative.
    obj: dict[Word, frozenset[Oid]]

    def vertex_of(self, representative: Word) -> Oid:
        """The distinguished vertex ``o_σ`` of a class representative."""
        return ("cls",) + representative

    def classes(self) -> list[Word]:
        return sorted(set(self.class_of.values()))


def _words_up_to(alphabet: frozenset[str], length: int) -> list[Word]:
    words: list[Word] = [()]
    for size in range(1, length + 1):
        for combo in product(sorted(alphabet), repeat=size):
            words.append(tuple(combo))
    return words


def lemma44_witness(
    constraints: ConstraintSet,
    bound: int,
    alphabet: "frozenset[str] | set[str] | None" = None,
) -> Lemma44Witness:
    """Build the Lemma 4.4 instance for word constraints ``E`` and bound ``k``.

    ``alphabet`` defaults to the constraint alphabet; callers refuting a
    constraint ``p ⊆ q`` should pass the union with the constraint's alphabet
    so that the witness can spell the refuting word.

    The construction enumerates all ``|Σ|^k`` words up to the bound, so it is
    intended for the small bounds used in counterexample construction and in
    the figures — exactly the regime the paper uses it in.

    Note on ε constraints: the paper's ε convention (``u ⊆ ε`` implies
    ``ε ⊆ u`` is added) keeps the class of ε minimal when such constraints are
    *directly* present, but a chain like ``b ⊆ a, a ⊆ ε`` still places the
    class of ``b`` strictly below ε, in which case the constructed instance
    cannot both respect ``ε(o, I) = {o}`` and realize ``obj``.  Callers that
    need a guaranteed model of ``E`` (the counterexample builders do)
    re-validate with :func:`repro.constraints.satisfaction.satisfies_all`
    and fall back gracefully when validation fails.
    """
    system = PrefixRewriteSystem.from_constraints(constraints)
    labels = frozenset(alphabet) if alphabet is not None else constraints.alphabet()
    if not labels:
        labels = system.alphabet()
    words = _words_up_to(labels, bound)

    # reaches[u][v] == True iff u ->*E v, computed via one RewriteTo automaton
    # per target word (polynomial each).
    automata = {target: rewrite_to_word_nfa(system, target) for target in words}
    reaches: dict[Word, set[Word]] = {
        source: {target for target in words if automata[target].accepts(source)}
        for source in words
    }

    # Equivalence classes and their canonical representatives.
    class_of: dict[Word, Word] = {}
    for word in words:
        members = sorted(
            (other for other in words if other in reaches[word] and word in reaches[other]),
            key=lambda w: (len(w), w),
        )
        class_of[word] = members[0]

    representatives = sorted(set(class_of.values()), key=lambda w: (len(w), w))

    # Partial order on classes: σ ⪯ τ iff rep(σ) ->* rep(τ).
    def below(sigma: Word, tau: Word) -> bool:
        return tau in reaches[sigma]

    witness = Lemma44Witness(
        instance=Instance(),
        source=("cls",),
        bound=bound,
        class_of=class_of,
        obj={},
    )

    # obj(σ) = { o_ψ | ψ ⪯ σ }.
    for sigma in representatives:
        members = frozenset(
            witness.vertex_of(psi) for psi in representatives if below(psi, sigma)
        )
        witness.obj[sigma] = members

    instance = witness.instance
    for sigma in representatives:
        instance.add_object(witness.vertex_of(sigma))
    witness.source = witness.vertex_of(class_of[()])

    # Edges: for each u with |u| < k and each a, an a-edge from o_û to every
    # vertex of obj(ûa) — iterating over representatives is enough because the
    # edge set only depends on the class of u.
    for sigma in representatives:
        if len(sigma) >= bound:
            continue
        for label in sorted(labels):
            extended = sigma + (label,)
            target_class = class_of.get(extended)
            if target_class is None:
                continue
            for target_vertex in witness.obj[target_class]:
                instance.add_edge(witness.vertex_of(sigma), label, target_vertex)

    return witness


def figure4_instance() -> Lemma44Witness:
    """The worked example of Figure 4: ``E = {a·a ⊆ a}``, ``k = 3``.

    The paper reports: classes ``ε, a, a², a³`` with ``a³ ⪯ a² ⪯ a``;
    ``obj(ε) = {o_ε}``, ``obj(a³) = {o_{a³}}``, ``obj(a²) = {o_{a²}, o_{a³}}``,
    ``obj(a) = {o_a, o_{a²}, o_{a³}}``; and answers
    ``a(o, I) = {o_a, o_{a²}, o_{a³}}``, ``a²(o, I) = {o_{a²}, o_{a³}}``,
    ``a³(o, I) = {o_{a³}}`` — the tests and the Figure 4 benchmark check all
    of these facts against this construction.
    """
    constraints = ConstraintSet([word_inclusion("a a", "a")])
    return lemma44_witness(constraints, bound=3, alphabet={"a"})


def counterexample_instance_for_word_refutation(
    constraints: ConstraintSet,
    refuting_word: Word,
    rhs_alphabet: "frozenset[str] | set[str]" = frozenset(),
) -> tuple[Instance, Oid]:
    """Concrete counterexample instance from a refuting word (Lemma 4.6).

    Given word constraints ``E`` and a word ``u ∈ L(p)`` that does *not*
    rewrite into ``L(q)``, the Lemma 4.4 instance with a large enough bound
    satisfies ``E`` while ``u(o, I) ⊄ q(o, I)``, refuting ``p ⊆ q``.
    """
    alphabet = set(constraints.alphabet()) | set(refuting_word) | set(rhs_alphabet)
    bound = max(constraints.max_word_length(), len(refuting_word)) + 1
    witness = lemma44_witness(constraints, bound, alphabet)
    return witness.instance, witness.source
