"""Synthetic workload families for the scaling benchmarks.

Each generator produces a *family* indexed by a size parameter, so the
benchmarks can plot cost against size and exhibit the complexity shape the
theorems predict (PTIME word implication, PSPACE path-by-word implication,
exponential boundedness machinery, polynomial query evaluation).
All generators are deterministic given their seed.
"""

from __future__ import annotations

import random

from ..constraints.constraint import ConstraintSet, word_equality, word_inclusion
from ..regex import Regex, parse
from ..regex.ast import Symbol, concat_all, star, union_all


def alphabet_of(size: int) -> list[str]:
    """The standard benchmark alphabet: ``l0, l1, ...``."""
    return [f"l{i}" for i in range(size)]


def random_word(rng: random.Random, alphabet: list[str], max_length: int) -> tuple[str, ...]:
    length = rng.randint(0, max_length)
    return tuple(rng.choice(alphabet) for _ in range(length))


def random_word_constraints(
    constraint_count: int,
    alphabet_size: int = 3,
    max_word_length: int = 3,
    seed: int = 0,
    equalities: bool = False,
) -> ConstraintSet:
    """A random family of word constraints (inclusions or equalities).

    Right-hand sides are biased to be no longer than left-hand sides so that
    the rewrite systems tend to be "shrinking" and implication questions have
    interesting positive instances.
    """
    rng = random.Random(seed)
    alphabet = alphabet_of(alphabet_size)
    constraints = ConstraintSet()
    for _ in range(constraint_count):
        lhs = random_word(rng, alphabet, max_word_length)
        while not lhs:
            lhs = random_word(rng, alphabet, max_word_length)
        rhs = random_word(rng, alphabet, max(0, len(lhs) - rng.randint(0, len(lhs))))
        if equalities:
            constraints.add(word_equality(lhs, rhs))
        else:
            constraints.add(word_inclusion(lhs, rhs))
    return constraints


def chained_idempotence_constraints(chain_length: int) -> ConstraintSet:
    """The family ``{l_i l_i = l_i}`` for ``i < chain_length``.

    Every label is idempotent, so any query over these labels is bounded; the
    boundedness benchmark scales ``chain_length`` to grow the sphere.
    """
    constraints = ConstraintSet()
    for label in alphabet_of(chain_length):
        constraints.add(word_equality(f"{label} {label}", label))
    return constraints


def collapsing_constraints(depth: int, label: str = "a") -> ConstraintSet:
    """The family ``{a^depth = a^(depth-1)}``: words collapse after ``depth`` steps.

    The congruence has exactly ``depth`` classes (ε, a, ..., a^(depth-1)), so
    the Armstrong sphere grows linearly with ``depth`` — a clean knob for the
    Figure 5 benchmark.
    """
    constraints = ConstraintSet()
    lhs = " ".join([label] * depth)
    rhs = " ".join([label] * (depth - 1)) if depth > 1 else "%"
    constraints.add(word_equality(lhs, rhs) if depth > 1 else word_equality(label, ""))
    return constraints


def random_path_query(
    rng_or_seed: "random.Random | int",
    alphabet_size: int = 3,
    depth: int = 3,
) -> Regex:
    """A random regular path expression of bounded syntactic depth."""
    rng = (
        rng_or_seed
        if isinstance(rng_or_seed, random.Random)
        else random.Random(rng_or_seed)
    )
    alphabet = alphabet_of(alphabet_size)

    def build(level: int) -> Regex:
        if level == 0 or rng.random() < 0.35:
            return Symbol(rng.choice(alphabet))
        choice = rng.random()
        if choice < 0.4:
            return concat_all([build(level - 1), build(level - 1)])
        if choice < 0.8:
            return union_all([build(level - 1), build(level - 1)])
        return star(build(level - 1))

    return build(depth)


def star_chain_query(length: int, alphabet_size: int | None = None) -> Regex:
    """The query ``(l0 + l1 + ... )* l0 (l0 + l1 + ...)*`` of growing alphabet.

    Determinizing this kind of expression is cheap, but the path-by-word
    benchmark concatenates several of them to grow the inclusion check.
    """
    size = alphabet_size if alphabet_size is not None else max(2, length)
    labels = [Symbol(label) for label in alphabet_of(size)]
    any_star = star(union_all(list(labels)))
    middle = concat_all([any_star, labels[0], any_star])
    return concat_all([middle] * max(1, length))


def pspace_hard_inclusion(size: int) -> tuple[Regex, Regex]:
    """A (lhs, rhs) pair whose inclusion check forces subset-construction work.

    ``lhs = (a+b)* a (a+b)^size`` (the "a at position size+1 from the end"
    language) requires a DFA with ~2^size states, so checking it against a
    slightly perturbed rhs scales exponentially — the shape Theorem 4.3(ii)'s
    PSPACE bound predicts.
    """
    lhs = parse("(a + b)* a " + " ".join(["(a + b)"] * size))
    rhs = parse("(a + b)* (a + b) " + " ".join(["(a + b)"] * size))
    return lhs, rhs
