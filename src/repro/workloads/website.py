"""The CS-department web-site workload from the paper's introduction.

The introduction motivates path constraints with paths such as::

    CS-Department DB-group Ullman Classes cs345
    CS-Department Courses cs345
    CS-Department Faculty Publications

and constraints stating, e.g., that the first two paths lead to the same
page.  This module builds a university web site in that spirit: a root
(`Stanford`-like) page, a CS-Department page with groups, faculty, and a
course catalog, plus the structural equalities that hold by construction.
The workload is used by the quickstart example, the optimization-payoff
benchmark, and several integration tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..constraints.constraint import ConstraintSet, path_equality, word_equality
from ..graph.instance import Instance, Oid


@dataclass
class WebsiteWorkload:
    """A generated site: the graph, its root and the constraints that hold."""

    instance: Instance
    root: Oid
    constraints: ConstraintSet
    course_ids: list[str] = field(default_factory=list)
    faculty_names: list[str] = field(default_factory=list)


def cs_department_site(
    group_count: int = 2,
    faculty_per_group: int = 2,
    courses_per_faculty: int = 2,
    seed: int = 0,
) -> WebsiteWorkload:
    """Build the CS-department site.

    Structure (labels on edges)::

        root --CS-Department--> cs
        cs   --DB-group-->  group_i           (one per group)
        group_i --<faculty name>--> person    (one per faculty member)
        person  --Classes--> classes_page --<course id>--> course_page
        cs   --Courses--> catalog --<course id>--> course_page   (same object!)
        cs   --Faculty--> faculty_index --<name>--> person
        person --Publications--> publications_page

    Because the catalog and the per-faculty class lists point at the *same*
    course objects, the word equality

        ``CS-Department <group> <name> Classes <course>  =  CS-Department Courses <course>``

    holds at the root for every faculty/course pair — exactly the first
    example constraint of the paper's introduction.
    """
    rng = random.Random(seed)
    instance = Instance()
    root: Oid = "stanford"
    cs: Oid = "cs_department"
    catalog: Oid = "course_catalog"
    faculty_index: Oid = "faculty_index"
    instance.add_edge(root, "CS-Department", cs)
    instance.add_edge(cs, "Courses", catalog)
    instance.add_edge(cs, "Faculty", faculty_index)

    constraints = ConstraintSet()
    course_ids: list[str] = []
    faculty_names: list[str] = []

    person_counter = 0
    course_counter = 0
    for group_index in range(group_count):
        group_label = "DB-group" if group_index == 0 else f"group-{group_index}"
        group_page: Oid = f"group_{group_index}"
        instance.add_edge(cs, group_label, group_page)
        for _ in range(faculty_per_group):
            person_counter += 1
            name = f"prof{person_counter}"
            faculty_names.append(name)
            person: Oid = f"person_{name}"
            classes_page: Oid = f"classes_{name}"
            publications: Oid = f"pubs_{name}"
            instance.add_edge(group_page, name, person)
            instance.add_edge(faculty_index, name, person)
            instance.add_edge(person, "Classes", classes_page)
            instance.add_edge(person, "Publications", publications)
            for _ in range(courses_per_faculty):
                course_counter += 1
                course_id = f"cs{300 + course_counter}"
                course_ids.append(course_id)
                course_page: Oid = f"course_{course_id}"
                instance.add_edge(classes_page, course_id, course_page)
                instance.add_edge(catalog, course_id, course_page)
                # The structural equality of the introduction.
                constraints.add(
                    word_equality(
                        f"CS-Department {group_label} {name} Classes {course_id}",
                        f"CS-Department Courses {course_id}",
                    )
                )
            # Reaching a person through a group or through the faculty index is
            # the same (both edges point at the same object).
            constraints.add(
                word_equality(
                    f"CS-Department {group_label} {name}",
                    f"CS-Department Faculty {name}",
                )
            )

    # A few unrelated pages so that queries have non-answers to skip.
    for extra in range(group_count * 3):
        instance.add_edge(root, f"misc{extra}", f"misc_page_{extra}")
        if rng.random() < 0.5:
            instance.add_edge(f"misc_page_{extra}", "link", root)

    return WebsiteWorkload(
        instance=instance,
        root=root,
        constraints=constraints,
        course_ids=course_ids,
        faculty_names=faculty_names,
    )


def site_with_home_shortcut(workload: WebsiteWorkload) -> tuple[Instance, ConstraintSet]:
    """Add a ``Stanford-CS-Main`` backlink from every CS page to the department.

    This realizes the introduction's second constraint pattern — every path
    whose final label is the home link returns to a fixed page — as the path
    equality ``(any)* Stanford-CS-Main = CS-Department`` holding at the root.
    """
    instance = workload.instance.copy()
    cs_page = None
    for label, destination in instance.out_edges(workload.root):
        if label == "CS-Department":
            cs_page = destination
            break
    if cs_page is None:
        raise ValueError("workload has no CS-Department page")
    for oid in list(instance.objects):
        if str(oid).startswith(("group_", "person_", "classes_", "pubs_", "course_")):
            instance.add_edge(oid, "Stanford-CS-Main", cs_page)
    constraints = ConstraintSet(list(workload.constraints))
    labels = " + ".join(sorted(instance.labels() - {"Stanford-CS-Main"}))
    constraints.add(
        path_equality(f"CS-Department ({labels})* Stanford-CS-Main", "CS-Department")
    )
    return instance, constraints
