"""Workload generators used by the examples and benchmarks."""

from .synthetic import (
    alphabet_of,
    chained_idempotence_constraints,
    collapsing_constraints,
    pspace_hard_inclusion,
    random_path_query,
    random_word,
    random_word_constraints,
    star_chain_query,
)
from .website import WebsiteWorkload, cs_department_site, site_with_home_shortcut

__all__ = [
    "WebsiteWorkload",
    "alphabet_of",
    "chained_idempotence_constraints",
    "collapsing_constraints",
    "cs_department_site",
    "pspace_hard_inclusion",
    "random_path_query",
    "random_word",
    "random_word_constraints",
    "star_chain_query",
    "cs_department_site",
    "site_with_home_shortcut",
]
