"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating from the library with a single ``except``
clause while still being able to discriminate between the finer-grained
categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RegexSyntaxError(ReproError):
    """Raised when a regular-expression string cannot be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class AutomatonError(ReproError):
    """Raised for structurally invalid automata or unsupported operations."""


class InstanceError(ReproError):
    """Raised when a graph instance violates the data model.

    The paper requires every vertex to have *finite* outdegree; attempting to
    materialize an unbounded neighborhood, or referring to an unknown vertex,
    raises this error.
    """


class ConstraintError(ReproError):
    """Raised for malformed path constraints or unsupported constraint mixes."""


class ImplicationUndecidedError(ReproError):
    """Raised when a bounded implication procedure cannot settle an instance.

    The general path-constraint implication problem is decidable only via a
    doubly-exponential search (Theorem 4.2); the practical procedures in
    :mod:`repro.constraints.general_implication` may give up within the
    configured bounds, in which case this error (or an ``UNKNOWN`` verdict,
    depending on the API used) is produced.
    """


class DatalogError(ReproError):
    """Raised for malformed Datalog programs (unsafe rules, arity clashes...)."""


class DistributedProtocolError(ReproError):
    """Raised when the distributed evaluation protocol reaches an invalid state."""


class BoundednessError(ReproError):
    """Raised when a boundedness question is asked of an unsupported input."""
