"""Packed-bitset pure-Python batch executor: whole-word delta propagation.

The third backend behind :mod:`repro.engine.executor`, sitting between the
scalar reference (:mod:`repro.engine.executor_py`) and the numpy twin
(:mod:`repro.engine.executor_np`).  It evaluates the same batched product
fixpoint, but restructures the pure-Python hot loop around the batch's
*width* instead of its individual bits:

* masks stay arbitrary-precision Python ints (one per packed ``(state,
  node)`` pair, exactly the queue executor's layout), so every edge visit
  propagates the whole packed word of source bits in one ``|`` — no
  per-(node, bit) work anywhere in the loop;
* propagation is *delta-driven and round-based* (semi-naive): each round
  pushes only the bits a pair gained since it was last expanded, where the
  queue executor re-pushes a pair's full mask on every growth event and
  re-expands it once per growth;
* adjacency is resolved once per ``(label, node)`` into a per-run cache —
  the tombstone filter and overflow concatenation run once instead of once
  per expansion.

The wins compound with batch width: the wider the mask word, the more
sources each cached edge visit serves.  For narrow batches the queue
executor's lighter bookkeeping still wins, which is why the dispatcher
auto-selects this backend only for mid-size batches (and only when numpy
is absent — the tensor executor dominates whenever it imports).

Results are bit-for-bit identical to the other executors, including the
``visited_pairs``/``visited_objects`` accounting, the streaming
``answer_sink`` at-most-once contract, and the :class:`PyFrontier`
exchange handle — a packed run can continue a queue run's frontier and
vice versa, which keeps sharded superstep chains backend-agnostic.
"""

from __future__ import annotations

import weakref
from typing import Callable, Mapping, Sequence

from .compiled_query import CompiledQuery
from .csr import CompiledGraph
from . import executor_py
from .executor_py import BatchRun, PyFrontier, SingleRun, restricted_witness

# Flattened product adjacency, memoized across runs: per graph (weakly
# held), per compiled query, the successor tuples ``build_successors``
# resolves — stamped with the graph version they were derived against and
# discarded wholesale when it moves on.  Warm repeated batches (the
# serving layer's steady state) then run the fixpoint as pure whole-word
# merges with zero adjacency work.  Queries are keyed by identity (their
# ``array`` fields are unhashable); each entry holds a weak reference to
# its query so a recycled ``id`` after garbage collection can never serve
# another query's adjacency.  Runs only execute under the engine's reader
# lock and mutations drain readers first, so the version cannot move
# mid-run; concurrent same-version fills are idempotent dict writes.  The
# per-graph table is cleared (not LRU-chained) when it outgrows
# ``_MEMO_QUERIES`` distinct queries — the engine's own compile cache is
# the real LRU, this is just a backstop against unbounded growth.
_SUCC_MEMO: "weakref.WeakKeyDictionary[CompiledGraph, dict[int, dict]]" = (
    weakref.WeakKeyDictionary()
)
_MEMO_QUERIES = 16


def _kernel_cache(graph: CompiledGraph, query: CompiledQuery) -> dict:
    per_graph = _SUCC_MEMO.get(graph)
    if per_graph is None:
        per_graph = {}
        _SUCC_MEMO[graph] = per_graph
    entry = per_graph.get(id(query))
    if (
        entry is None
        or entry["ref"]() is not query
        or entry["version"] != graph.version
    ):
        if len(per_graph) >= _MEMO_QUERIES:
            per_graph.clear()
        entry = {
            "ref": weakref.ref(query),
            "version": graph.version,
            "adj": {},
            "plain": {},
            "stream": {},
        }
        per_graph[id(query)] = entry
    return entry


def run_single(graph: CompiledGraph, query: CompiledQuery, source: int) -> SingleRun:
    """Single-source runs have a one-bit mask: packing buys nothing, so
    delegate to the queue executor and restamp the backend."""
    run = executor_py.run_single(graph, query, source)
    run.backend = "packed"
    return run


def run_batch(
    graph: CompiledGraph,
    query: CompiledQuery,
    sources: Sequence[int],
    *,
    witnesses: bool = False,
    seeds: "Mapping[tuple[int, int], int] | None" = None,
    known: "Mapping[tuple[int, int], int] | PyFrontier | None" = None,
    num_bits: "int | None" = None,
    answer_sink: "Callable[[int, Sequence[int]], None] | None" = None,
) -> BatchRun:
    """Batched evaluation with whole-word delta rounds.

    Same contract as :func:`repro.engine.executor_py.run_batch` (see there
    for the ``seeds``/``known``/``answer_sink`` semantics); ``num_bits`` is
    accepted for API symmetry and otherwise ignored — Python ints are
    arbitrary-precision.
    """
    n = graph.num_nodes
    run = BatchRun(sources=tuple(sources))
    run.backend = "packed"
    run.answers = [set() for _ in sources]
    if n == 0 or (not sources and not seeds and known is None):
        return run
    if witnesses and (seeds or known):
        raise ValueError("witnesses=True is not supported with seeds/known frontiers")
    bit_of: dict[int, int] = {}
    for source in sources:
        if source not in bit_of:
            bit_of[source] = len(bit_of)

    num_states = query.num_states
    moves = query.moves
    accepting = query.accepting
    dead_of = graph.dead_positions
    if isinstance(known, PyFrontier):
        if known.n != n or len(known.masks) != num_states * n:
            raise ValueError("known frontier does not match this graph/query")
        if known.version is not None and known.version != graph.version:
            raise ValueError(
                "known frontier is stale: the graph mutated since it was "
                "derived (re-run the batch instead of continuing the handle)"
            )
        masks = known.masks  # ownership transfer: continued in place
    else:
        masks = [0] * (num_states * n)
        if known:
            for (state, node), mask in known.items():
                masks[state * n + node] |= mask

    accept_union: "list[int] | None" = None
    sink_bucket: "dict[int, list[int]]" = {}

    def flush_sink() -> None:
        for bit, group in sink_bucket.items():
            answer_sink(bit, group)
        sink_bucket.clear()

    if answer_sink is not None:
        if isinstance(known, PyFrontier):
            accept_union = known.accept_union
        if accept_union is None:
            accept_union = [0] * n
            # Only a continued/known frontier without a carried union needs
            # the full rescan; a fresh run's masks are still empty here.
            if known is not None:
                for state in range(num_states):
                    if accepting[state]:
                        base = state * n
                        for node, mask in enumerate(masks[base:base + n]):
                            if mask:
                                accept_union[node] |= mask

    # ``changed`` doubles as the activation set: a pair's first activation
    # pushes its *full* mask next round (matching the queue executor, which
    # expands the full mask of every enqueued pair — known bits included),
    # later growth pushes only the delta.
    changed: set[int] = set()
    delta: dict[int, int] = {}
    initial_base = query.initial * n
    for source, bit in bit_of.items():
        key = initial_base + source
        masks[key] |= 1 << bit
        changed.add(key)
        delta[key] = masks[key]
    if seeds:
        for (state, node), mask in seeds.items():
            key = state * n + node
            new = mask & ~masks[key]
            if new:
                masks[key] |= new
                if key in changed:
                    delta[key] |= new
                else:
                    changed.add(key)
                    delta[key] = masks[key]
    if accept_union is not None:
        # Injected bits landing on accepting pairs are answers already —
        # stream them before the fixpoint starts (same pass as executor_py).
        for key in sorted(changed):
            state, node = divmod(key, n)
            if accepting[state]:
                fresh = masks[key] & ~accept_union[node]
                if fresh:
                    accept_union[node] |= fresh
                    while fresh:
                        low = fresh & -fresh
                        sink_bucket.setdefault(low.bit_length() - 1, []).append(node)
                        fresh ^= low
        if sink_bucket:
            flush_sink()

    # Per-run successor cache: for each packed product pair, the complete
    # flattened out-neighborhood in product space, resolved once — move
    # iteration, CSR slicing, the tombstone filter and overflow
    # concatenation all fuse into one tuple.  The fixpoint's inner loop is
    # then a pure whole-word mask merge per successor, which is this
    # backend's actual speed: the queue executor re-resolves adjacency on
    # every expansion of every pair.  Two cache shapes: bare successor
    # keys when nothing streams, ``(key, target, accepts)`` triples when an
    # ``answer_sink`` needs accepting growth during the fixpoint.
    streaming = accept_union is not None
    kernel = _kernel_cache(graph, query)
    adj_cache: "dict[int, tuple[int, ...]]" = kernel["adj"]
    succ_cache: "dict[int, tuple]" = kernel["stream" if streaming else "plain"]
    succ_get = succ_cache.get
    adj_get = adj_cache.get

    def build_successors(key: int) -> tuple:
        state, node = divmod(key, n)
        out: list = []
        for label_id, next_state in moves[state]:
            cache_key = label_id * n + node
            targets = adj_get(cache_key)
            if targets is None:
                buffer, lo, hi = graph.successor_slice(node, label_id)
                dead = dead_of(label_id)
                if dead:
                    targets = tuple(
                        buffer[position]
                        for position in range(lo, hi)
                        if position not in dead
                    )
                else:
                    targets = tuple(buffer[lo:hi])
                extra = graph.overflow_successors(node, label_id)
                if extra is not None:
                    targets = targets + tuple(extra)
                adj_cache[cache_key] = targets
            base = next_state * n
            if streaming:
                accepts = accepting[next_state]
                for target in targets:
                    out.append((base + target, target, accepts))
            else:
                for target in targets:
                    out.append(base + target)
        flat = tuple(out)
        succ_cache[key] = flat
        return flat

    current = delta
    while current:
        next_delta: dict[int, int] = {}
        if streaming:
            for key, bits in current.items():
                successors = succ_get(key)
                if successors is None:
                    successors = build_successors(key)
                for successor_key, target, accepts in successors:
                    old = masks[successor_key]
                    merged = old | bits
                    if merged == old:
                        continue
                    new = merged ^ old
                    masks[successor_key] = merged
                    if successor_key in changed:
                        if successor_key in next_delta:
                            next_delta[successor_key] |= new
                        else:
                            next_delta[successor_key] = new
                    else:
                        changed.add(successor_key)
                        next_delta[successor_key] = merged
                    if accepts:
                        fresh = merged & ~accept_union[target]
                        if fresh:
                            accept_union[target] |= fresh
                            while fresh:
                                low = fresh & -fresh
                                sink_bucket.setdefault(
                                    low.bit_length() - 1, []
                                ).append(target)
                                fresh ^= low
            if sink_bucket:
                flush_sink()
        else:
            for key, bits in current.items():
                successors = succ_get(key)
                if successors is None:
                    successors = build_successors(key)
                for successor_key in successors:
                    old = masks[successor_key]
                    merged = old | bits
                    if merged == old:
                        continue
                    masks[successor_key] = merged
                    if successor_key in changed:
                        if successor_key in next_delta:
                            next_delta[successor_key] |= merged ^ old
                        else:
                            next_delta[successor_key] = merged ^ old
                    else:
                        changed.add(successor_key)
                        next_delta[successor_key] = merged
        current = next_delta

    # A pair is "visited" on its first activation — one expansion per pair,
    # which is exactly what the queue executor's ``expanded`` flags count.
    run.visited_pairs = len(changed)

    # Collect answers word-at-a-time too: union the accepting masks per
    # node, group nodes by *identical* mask words, and expand each distinct
    # word's bits once for its whole node group (a ``set.update`` per bit
    # instead of a ``set.add`` per (bit, node) — reachability is clustered,
    # so distinct words are few compared to accepting pairs).
    local_bits = (1 << len(bit_of)) - 1
    touched = bytearray(n)
    accept_final = [0] * n
    for state in range(num_states):
        base = state * n
        if accepting[state]:
            for node, mask in enumerate(masks[base:base + n]):
                if mask:
                    touched[node] = 1
                    accept_final[node] |= mask
        else:
            for node, mask in enumerate(masks[base:base + n]):
                if mask:
                    touched[node] = 1
    run.visited_objects = sum(touched)
    groups: dict[int, list[int]] = {}
    for node, mask in enumerate(accept_final):
        mask &= local_bits
        if mask:
            groups.setdefault(mask, []).append(node)
    per_source: dict[int, set[int]] = {bit: set() for bit in bit_of.values()}
    for mask, nodes in groups.items():
        while mask:
            low = mask & -mask
            per_source[low.bit_length() - 1].update(nodes)
            mask ^= low
    for position, source in enumerate(sources):
        run.answers[position] = per_source[bit_of[source]]

    run.frontier = PyFrontier(masks, n, changed, graph.version, accept_union)
    if witnesses:
        bits = dict(bit_of)
        snapshot_version = graph.version

        def resolver(source: int, target: int) -> "tuple[int, ...] | None":
            if graph.version != snapshot_version:
                raise ValueError(
                    "graph mutated since the batched run; resolve witnesses "
                    "before add_edge/remove_edge (or re-run the batch)"
                )
            bit = bits.get(source)
            if bit is None:
                return None
            flag = 1 << bit
            return restricted_witness(
                graph, query, lambda key: bool(masks[key] & flag), source, target
            )

        run.witness_resolver = resolver
    return run


def run_all_pairs(
    graph: CompiledGraph, query: CompiledQuery, *, witnesses: bool = False
) -> BatchRun:
    """Evaluate the query from every node — the widest batch there is, and
    the shape this backend is best at."""
    return run_batch(graph, query, tuple(range(graph.num_nodes)), witnesses=witnesses)
