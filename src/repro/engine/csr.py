"""Label-partitioned CSR adjacency compiled from an :class:`Instance`.

The raw data model (:mod:`repro.graph.instance`) stores descriptions as
Python lists of ``(label, destination)`` pairs — flexible, but every BFS step
pays for hashing strings and boxing tuples.  The compiled form here stores,
*per label*, a classic compressed-sparse-row pair ``(indptr, targets)`` over
dense node ids, so that "successors of node v under label l" is one slice of
a flat integer array.  Partitioning by label matters for path queries: a DFA
state typically has live transitions on a small subset of the graph's labels,
and the per-label layout lets the executor skip every other edge without
even looking at it.

Incremental growth: edges added after compilation go to a small per-label
overflow adjacency that traversals consult alongside the CSR slices; once the
overflow exceeds a fraction of the graph the structure compacts itself back
into pure CSR.  Ids are append-only (see :mod:`repro.engine.interning`), so
compiled query tables survive edge adds that introduce no new labels.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from ..exceptions import InstanceError
from ..graph.instance import Instance, Oid
from .interning import Interner

_EMPTY = array("q")


class CompiledGraph:
    """A finite instance compiled to per-label CSR over dense integer ids."""

    __slots__ = (
        "nodes",
        "labels",
        "_indptr",
        "_targets",
        "_csr_nodes",
        "_overflow",
        "_overflow_edges",
        "_edge_set",
        "version",
    )

    def __init__(self) -> None:
        self.nodes: Interner[Oid] = Interner()
        self.labels: Interner[str] = Interner()
        # Per label id: CSR row pointers (length _csr_nodes + 1) and targets.
        self._indptr: list[array] = []
        self._targets: list[array] = []
        # Number of nodes covered by the CSR arrays; nodes interned later are
        # reachable only through the overflow until the next compaction.
        self._csr_nodes = 0
        # Per label id: {source node -> [target nodes]} for post-build adds.
        self._overflow: list[dict[int, list[int]]] = []
        self._overflow_edges = 0
        self._edge_set: set[tuple[int, int, int]] = set()
        self.version = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_instance(cls, instance: Instance) -> "CompiledGraph":
        """Compile ``instance`` into a fresh CSR graph.

        Node ids are assigned in a deterministic order (sorted by ``repr`` of
        the oid, matching :meth:`Instance.edges`) so that repeated builds of
        the same instance produce identical compiled graphs.
        """
        graph = cls()
        for oid in sorted(instance.objects, key=repr):
            graph.nodes.intern(oid)
        buckets: dict[int, list[tuple[int, int]]] = {}
        for source, label, destination in instance.edges():
            sid = graph.nodes.intern(source)
            did = graph.nodes.intern(destination)
            lid = graph.labels.intern(label)
            buckets.setdefault(lid, []).append((sid, did))
            graph._edge_set.add((sid, lid, did))
        graph._build_csr(buckets)
        return graph

    def _build_csr(self, buckets: dict[int, list[tuple[int, int]]]) -> None:
        n = len(self.nodes)
        self._csr_nodes = n
        self._indptr = []
        self._targets = []
        self._overflow = []
        self._overflow_edges = 0
        for lid in range(len(self.labels)):
            edges = buckets.get(lid, ())
            counts = [0] * (n + 1)
            for sid, _ in edges:
                counts[sid + 1] += 1
            for i in range(1, n + 1):
                counts[i] += counts[i - 1]
            targets = array("q", bytes(8 * len(edges)))
            cursor = counts[:]
            for sid, did in edges:
                targets[cursor[sid]] = did
                cursor[sid] += 1
            self._indptr.append(array("q", counts))
            self._targets.append(targets)
            self._overflow.append({})
        self.version += 1

    def add_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Incrementally register one edge without rebuilding the CSR.

        New labels and new nodes are interned on the fly; the edge lands in
        the overflow adjacency, and the graph compacts itself once the
        overflow grows past a quarter of the compiled edges.
        """
        if not isinstance(label, str) or not label:
            raise InstanceError("edge labels must be non-empty strings")
        sid = self.nodes.intern(source)
        did = self.nodes.intern(destination)
        lid = self.labels.intern(label)
        while len(self._overflow) <= lid:
            self._indptr.append(_EMPTY)
            self._targets.append(_EMPTY)
            self._overflow.append({})
        key = (sid, lid, did)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self._overflow[lid].setdefault(sid, []).append(did)
        self._overflow_edges += 1
        self.version += 1
        if self._overflow_edges > max(64, self.edge_count() // 4):
            self.compact()

    def compact(self) -> None:
        """Fold the overflow adjacency back into pure CSR arrays."""
        if not self._overflow_edges and self._csr_nodes == len(self.nodes):
            return
        buckets: dict[int, list[tuple[int, int]]] = {}
        for sid, lid, did in self._edge_set:
            buckets.setdefault(lid, []).append((sid, did))
        self._build_csr(buckets)

    # -- shape ----------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_labels(self) -> int:
        return len(self.labels)

    def edge_count(self) -> int:
        return len(self._edge_set)

    def overflow_edge_count(self) -> int:
        return self._overflow_edges

    # -- traversal ------------------------------------------------------------
    def successors(self, node: int, label_id: int) -> Iterator[int]:
        """Targets of ``node`` under ``label_id`` (CSR slice + overflow)."""
        indptr = self._indptr[label_id]
        if node + 1 < len(indptr):
            targets = self._targets[label_id]
            yield from targets[indptr[node] : indptr[node + 1]]
        extra = self._overflow[label_id].get(node)
        if extra is not None:
            yield from extra

    def successor_slice(self, node: int, label_id: int) -> "tuple[array | list[int], int, int]":
        """CSR bounds for hot loops: ``(buffer, start, stop)``.

        Callers materialize ``buffer[start:stop]`` and iterate the copy
        (fastest in CPython for the short runs typical of small out-degrees).
        Overflow edges for the node, if any, must be fetched separately with
        :meth:`overflow_successors`.
        """
        indptr = self._indptr[label_id]
        if node + 1 < len(indptr):
            return self._targets[label_id], indptr[node], indptr[node + 1]
        return _EMPTY, 0, 0

    def overflow_successors(self, node: int, label_id: int) -> "list[int] | None":
        return self._overflow[label_id].get(node)

    def has_overflow(self, label_id: int) -> bool:
        return bool(self._overflow[label_id])

    def out_edges(self, node: int) -> Iterator[tuple[int, int]]:
        """All ``(label_id, target)`` pairs of one node (any label)."""
        for lid in range(len(self.labels)):
            for target in self.successors(node, lid):
                yield (lid, target)

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """All compiled edges as ``(source, label_id, target)`` triples."""
        return iter(self._edge_set)

    # -- translation ----------------------------------------------------------
    def node_id(self, oid: Oid) -> int | None:
        return self.nodes.id_of(oid)

    def oid_of(self, node: int) -> Oid:
        return self.nodes.value_of(node)

    def oids_of(self, node_ids: Iterable[int]) -> set[Oid]:
        value_of = self.nodes.value_of
        return {value_of(node) for node in node_ids}

    def label_id(self, label: str) -> int | None:
        return self.labels.id_of(label)

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(nodes={self.num_nodes}, labels={self.num_labels}, "
            f"edges={self.edge_count()}, overflow={self._overflow_edges})"
        )
