"""Label-partitioned CSR adjacency compiled from an :class:`Instance`.

The raw data model (:mod:`repro.graph.instance`) stores descriptions as
Python lists of ``(label, destination)`` pairs — flexible, but every BFS step
pays for hashing strings and boxing tuples.  The compiled form here stores,
*per label*, a classic compressed-sparse-row pair ``(indptr, targets)`` over
dense node ids, so that "successors of node v under label l" is one slice of
a flat integer array.  Partitioning by label matters for path queries: a DFA
state typically has live transitions on a small subset of the graph's labels,
and the per-label layout lets the executor skip every other edge without
even looking at it.

Incremental growth: edges added after compilation go to a small per-label
overflow adjacency that traversals consult alongside the CSR slices; once the
overflow exceeds a fraction of the graph the structure compacts itself back
into pure CSR.  Ids are append-only (see :mod:`repro.engine.interning`), so
compiled query tables survive edge adds that introduce no new labels.

Incremental shrinkage is symmetric: :meth:`CompiledGraph.remove_edge` marks
the edge's CSR position in a per-label *tombstone* set that every traversal
(and the numpy edge-array lowering) consults, so deletions are O(out-degree)
instead of a full rebuild.  Re-adding a tombstoned edge revives its CSR slot
in place; compaction folds overflow in and drops tombstones out, restoring
the pure-CSR invariant.

For the vectorized executor (:mod:`repro.engine.executor_np`) the per-label
adjacency is additionally lowered, lazily and cached per version, to flat
numpy ``(source, target)`` edge arrays plus a target-grouped view that
``np.bitwise_or.reduceat`` can scatter-reduce over.

The whole compiled state round-trips through :meth:`CompiledGraph.to_parts`
/ :meth:`CompiledGraph.from_parts` — the exchange format the snapshot codecs
(:mod:`repro.engine.snapshot`) serialize, tombstones and overflow included.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Iterator

from ..exceptions import InstanceError
from ..graph.instance import Instance, Oid
from .interning import Interner
from .telemetry import witnessed_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

_EMPTY = array("q")
_EMPTY_DEAD: frozenset[int] = frozenset()


class LabelEdges:
    """One label's live edges lowered to flat numpy arrays.

    ``src``/``dst`` list the edges in arbitrary order; ``src_by_dst``,
    ``dst_unique`` and ``group_starts`` give the same edge set sorted and
    grouped by target, the shape ``np.bitwise_or.reduceat`` needs to reduce
    all sources of each target in one vectorized call.
    """

    __slots__ = ("src", "dst", "src_by_dst", "dst_unique", "group_starts")

    def __init__(self, src: "numpy.ndarray", dst: "numpy.ndarray") -> None:
        import numpy as np

        self.src = src
        self.dst = dst
        order = np.argsort(dst, kind="stable")
        self.src_by_dst = src[order]
        dst_sorted = dst[order]
        self.dst_unique, self.group_starts = np.unique(dst_sorted, return_index=True)


class CompiledGraph:
    """A finite instance compiled to per-label CSR over dense integer ids."""

    # The lazy numpy lowering cache is the only state of this class touched
    # from concurrent reader threads; everything else is the caller's to
    # serialize (see ``Engine._run_lock``).
    GUARDED_BY = {
        "_np_version": "_np_lock",
        "_np_edges": "_np_lock",
    }

    __slots__ = (
        "nodes",
        "labels",
        "_indptr",
        "_targets",
        "_csr_nodes",
        "_overflow",
        "_overflow_edges",
        "_edge_set",
        "_dead",
        "_dead_edges",
        "_np_version",
        "_np_edges",
        "_np_lock",
        "auto_compact_ratio",
        "version",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.nodes: Interner[Oid] = Interner()
        self.labels: Interner[str] = Interner()
        # Per label id: CSR row pointers (length _csr_nodes + 1) and targets.
        self._indptr: list[array] = []
        self._targets: list[array] = []
        # Number of nodes covered by the CSR arrays; nodes interned later are
        # reachable only through the overflow until the next compaction.
        self._csr_nodes = 0
        # Per label id: {source node -> [target nodes]} for post-build adds.
        self._overflow: list[dict[int, list[int]]] = []
        self._overflow_edges = 0
        # ``None`` after a snapshot restore: the set is fully derivable from
        # CSR − tombstones + overflow, and a read-only serving session never
        # needs it, so materialization is deferred to first use (mutation,
        # edge_count, iter_edges) — see :meth:`_edges`.
        self._edge_set: "set[tuple[int, int, int]] | None" = set()
        # Per label id: CSR positions of incrementally removed edges.
        self._dead: list[set[int]] = []
        self._dead_edges = 0
        # Lazily built numpy edge arrays, valid only for _np_version.  The
        # lock keeps the build-and-cache step safe under concurrent *reads*
        # (the serving layer runs per-shard supersteps and admission-queue
        # flushes on threads); mutation is still the caller's to serialize.
        self._np_version = -1
        self._np_edges: list["LabelEdges | None"] = []
        self._np_lock = witnessed_lock("CompiledGraph._np_lock")
        # Auto-compaction fires when overflow edges (on add) or tombstones
        # (on remove) outgrow ``max(64, edge_count // auto_compact_ratio)``
        # — the smaller the ratio, the lazier the graph.  ``None`` disables
        # auto-compaction entirely (callers then drive :meth:`compact`
        # explicitly, e.g. through ``Engine.compact_now``).  A runtime
        # tuning knob, deliberately not persisted in snapshots.
        self.auto_compact_ratio: "int | None" = 4
        self.version = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_instance(
        cls,
        instance: Instance,
        *,
        nodes: "Iterable[Oid] | None" = None,
        labels: "Iterable[str] | None" = None,
    ) -> "CompiledGraph":
        """Compile ``instance`` into a fresh CSR graph.

        Node ids are assigned in a deterministic order (sorted by ``repr`` of
        the oid, matching :meth:`Instance.edges`) so that repeated builds of
        the same instance produce identical compiled graphs.

        ``nodes`` restricts the build to a *subset* of the instance: only the
        given nodes' descriptions (their outgoing edges) are compiled, which
        is how the sharded engine (:mod:`repro.engine.sharding`) builds one
        graph per shard.  Edge targets outside the subset are still interned
        — they are the shard's *ghost* nodes, reachable but never expanded
        locally — after every owned node, so owned ids form a dense prefix of
        the subset's sort order.

        ``labels`` pre-interns a label order before any edge is scanned.
        Shards compiled against the same seed share one label-id universe
        (and therefore one transition-table fingerprint), even when a label
        has no edges on some shard — without the seed, per-shard lowering
        would prune DFA states whose continuation labels only exist on
        *other* shards.
        """
        graph = cls()
        if labels is not None:
            for label in labels:
                graph.labels.intern(label)
        if nodes is None:
            for oid in sorted(instance.objects, key=repr):
                graph.nodes.intern(oid)
            edges: "Iterable[tuple[Oid, str, Oid]]" = instance.edges()
        else:
            owned = sorted(set(nodes), key=repr)
            for oid in owned:
                graph.nodes.intern(oid)
            edges = sorted(
                (
                    (source, label, destination)
                    for source in owned
                    for label, destination in instance.out_edges(source)
                ),
                key=repr,
            )
        buckets: dict[int, list[tuple[int, int]]] = {}
        for source, label, destination in edges:
            sid = graph.nodes.intern(source)
            did = graph.nodes.intern(destination)
            lid = graph.labels.intern(label)
            buckets.setdefault(lid, []).append((sid, did))
            graph._edge_set.add((sid, lid, did))
        graph._build_csr(buckets)
        return graph

    def ensure_label(self, label: str) -> bool:
        """Intern ``label`` with an (empty) adjacency, without touching edges.

        Used by the sharded engine to keep every shard's label universe equal
        to the global one: when an incremental edge add introduces a new
        label on one shard, the others learn the label through this method.
        The mutation ``version`` is deliberately not bumped — no edge moved —
        but the label-interner fingerprint changes, so compiled transition
        tables for the old universe miss the cache and recompile (they must:
        their column count is the label count).  Returns ``True`` when the
        label was new.
        """
        if not isinstance(label, str) or not label:
            raise InstanceError("edge labels must be non-empty strings")
        if label in self.labels:
            return False
        lid = self.labels.intern(label)
        while len(self._overflow) <= lid:
            self._indptr.append(_EMPTY)
            self._targets.append(_EMPTY)
            self._overflow.append({})
            self._dead.append(set())
        return True

    def _build_csr(self, buckets: dict[int, list[tuple[int, int]]]) -> None:
        n = len(self.nodes)
        self._csr_nodes = n
        self._indptr = []
        self._targets = []
        self._overflow = []
        self._overflow_edges = 0
        self._dead = []
        self._dead_edges = 0
        for lid in range(len(self.labels)):
            # Sorting by (source, target) makes each source's target run
            # ascending: traversals walk monotone node ids (cache- and
            # branch-friendly), the numpy lowering's gather reads dense
            # arrays in near-sequential order, and rebuilds of the same
            # edge set are bit-identical regardless of set-iteration order.
            edges = sorted(buckets.get(lid, ()))
            counts = [0] * (n + 1)
            for sid, _ in edges:
                counts[sid + 1] += 1
            for i in range(1, n + 1):
                counts[i] += counts[i - 1]
            targets = array("q", bytes(8 * len(edges)))
            cursor = counts[:]
            for sid, did in edges:
                targets[cursor[sid]] = did
                cursor[sid] += 1
            self._indptr.append(array("q", counts))
            self._targets.append(targets)
            self._overflow.append({})
            self._dead.append(set())
        self.version += 1

    def add_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Incrementally register one edge without rebuilding the CSR.

        New labels and new nodes are interned on the fly; the edge lands in
        the overflow adjacency, and the graph compacts itself once the
        overflow grows past a quarter of the compiled edges.
        """
        if not isinstance(label, str) or not label:
            raise InstanceError("edge labels must be non-empty strings")
        sid = self.nodes.intern(source)
        did = self.nodes.intern(destination)
        lid = self.labels.intern(label)
        while len(self._overflow) <= lid:
            self._indptr.append(_EMPTY)
            self._targets.append(_EMPTY)
            self._overflow.append({})
            self._dead.append(set())
        key = (sid, lid, did)
        edges = self._edges()
        if key in edges:
            return
        edges.add(key)
        self.version += 1
        # Re-adding a removed edge whose CSR slot is tombstoned revives the
        # slot in place instead of duplicating the edge into the overflow.
        position = self._dead_csr_position(sid, lid, did)
        if position is not None:
            self._dead[lid].discard(position)
            self._dead_edges -= 1
            return
        self._overflow[lid].setdefault(sid, []).append(did)
        self._overflow_edges += 1
        self._maybe_auto_compact(self._overflow_edges)

    def remove_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Incrementally delete one edge without rebuilding the CSR.

        Overflow edges are dropped directly; compiled edges get their CSR
        position tombstoned, which every traversal (and the numpy lowering)
        skips.  Once tombstones outnumber a quarter of the live edges the
        graph compacts itself and the dead slots are physically dropped.
        """
        sid = self.nodes.id_of(source)
        did = self.nodes.id_of(destination)
        lid = self.labels.id_of(label)
        key = (sid, lid, did)
        if sid is None or did is None or lid is None or key not in self._edges():
            raise InstanceError(f"edge {(source, label, destination)!r} not present")
        self._edges().remove(key)
        self.version += 1
        extra = self._overflow[lid].get(sid)
        if extra is not None and did in extra:
            extra.remove(did)
            if not extra:
                del self._overflow[lid][sid]
            self._overflow_edges -= 1
            return
        position = self._live_csr_position(sid, lid, did)
        if position is None:  # pragma: no cover - _edge_set guarantees presence
            raise InstanceError(f"edge {(source, label, destination)!r} not compiled")
        self._dead[lid].add(position)
        self._dead_edges += 1
        self._maybe_auto_compact(self._dead_edges)

    def _csr_positions(self, sid: int, lid: int, did: int) -> Iterator[int]:
        indptr = self._indptr[lid]
        if sid + 1 < len(indptr):
            targets = self._targets[lid]
            for position in range(indptr[sid], indptr[sid + 1]):
                if targets[position] == did:
                    yield position

    def _live_csr_position(self, sid: int, lid: int, did: int) -> int | None:
        dead = self._dead[lid]
        for position in self._csr_positions(sid, lid, did):
            if position not in dead:
                return position
        return None

    def _dead_csr_position(self, sid: int, lid: int, did: int) -> int | None:
        dead = self._dead[lid]
        if not dead:
            return None
        for position in self._csr_positions(sid, lid, did):
            if position in dead:
                return position
        return None

    def _maybe_auto_compact(self, pending: int) -> None:
        ratio = self.auto_compact_ratio
        if ratio is not None and pending > max(64, self.edge_count() // ratio):
            self.compact()

    def compact(self) -> None:
        """Fold overflow edges in and tombstoned edges out of the CSR arrays.

        Compaction is where the cache tuning happens: tombstone masks are
        fused away (the rebuilt dense arrays contain live edges only, so
        neither the scalar traversals nor the numpy lowering filter
        anything afterwards) and every source's target run comes out
        sorted (see :meth:`_build_csr`).  A no-op when the graph is
        already fully dense.
        """
        if (
            not self._overflow_edges
            and not self._dead_edges
            and self._csr_nodes == len(self.nodes)
        ):
            return
        buckets: dict[int, list[tuple[int, int]]] = {}
        for sid, lid, did in self._edges():
            buckets.setdefault(lid, []).append((sid, did))
        self._build_csr(buckets)

    # -- shape ----------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_labels(self) -> int:
        return len(self.labels)

    def labels_fingerprint(self) -> tuple[str, ...]:
        """The id-ordered label tuple; equal fingerprints mean compiled
        transition tables (whose columns are label ids) are interchangeable."""
        return self.labels.fingerprint()

    def label_edge_counts(self) -> dict[str, int]:
        """Live edge count per label: CSR minus tombstones plus overflow.

        O(labels + overflow buckets), no edge-set materialization — this is
        the degree-statistics feed for the CRPQ join planner
        (:func:`repro.optimize.cost.estimate_cardinality`), so it must stay
        cheap enough to call per query.  Caller is responsible for
        serializing against mutation, like every other bulk reader.
        """
        counts: dict[str, int] = {}
        for label_id, label in enumerate(self.labels.fingerprint()):
            live = len(self._targets[label_id]) - len(self._dead[label_id])
            live += sum(
                len(targets) for targets in self._overflow[label_id].values()
            )
            counts[label] = live
        return counts

    def ensure_nodes(self, oids: Iterable[Oid]) -> int:
        """Intern any not-yet-known oids, in sorted-by-``repr`` order.

        This is the cheap path for instance mutations that only grow the
        object set (``Instance.add_object`` of isolated nodes): ids are
        append-only and no edge moves, so the CSR arrays, the tombstones,
        the numpy lowering cache and every compiled query table stay valid
        — ``version`` is deliberately *not* bumped.  Returns the number of
        newly interned nodes.
        """
        nodes = self.nodes
        fresh = [oid for oid in oids if oid not in nodes]
        for oid in sorted(fresh, key=repr):
            nodes.intern(oid)
        return len(fresh)

    def _edges(self) -> set[tuple[int, int, int]]:
        """The live ``(source, label, target)`` id triples, derived lazily.

        After :meth:`from_parts` the set starts unmaterialized; the first
        accessor re-derives it by scanning the CSR arrays (skipping
        tombstoned positions) and the overflow adjacency — exactly the edge
        set every traversal sees.
        """
        if self._edge_set is None:
            edges: set[tuple[int, int, int]] = set()
            for lid in range(len(self.labels)):
                indptr = self._indptr[lid]
                targets = self._targets[lid]
                dead = self._dead[lid]
                for sid in range(len(indptr) - 1):
                    for position in range(indptr[sid], indptr[sid + 1]):
                        if position not in dead:
                            edges.add((sid, lid, targets[position]))
                for sid, destinations in self._overflow[lid].items():
                    for did in destinations:
                        edges.add((sid, lid, did))
            self._edge_set = edges
        return self._edge_set

    def edge_count(self) -> int:
        return len(self._edges())

    def overflow_edge_count(self) -> int:
        return self._overflow_edges

    def tombstone_count(self) -> int:
        return self._dead_edges

    # -- traversal ------------------------------------------------------------
    def successors(self, node: int, label_id: int) -> Iterator[int]:
        """Targets of ``node`` under ``label_id`` (CSR slice + overflow)."""
        indptr = self._indptr[label_id]
        if node + 1 < len(indptr):
            targets = self._targets[label_id]
            dead = self._dead[label_id]
            if dead:
                for position in range(indptr[node], indptr[node + 1]):
                    if position not in dead:
                        yield targets[position]
            else:
                yield from targets[indptr[node] : indptr[node + 1]]
        extra = self._overflow[label_id].get(node)
        if extra is not None:
            yield from extra

    def successor_slice(self, node: int, label_id: int) -> "tuple[array | list[int], int, int]":
        """CSR bounds for hot loops: ``(buffer, start, stop)``.

        Callers materialize ``buffer[start:stop]`` and iterate the copy
        (fastest in CPython for the short runs typical of small out-degrees).
        Overflow edges for the node, if any, must be fetched separately with
        :meth:`overflow_successors`, and positions in
        :meth:`dead_positions` must be skipped when the set is non-empty.
        """
        indptr = self._indptr[label_id]
        if node + 1 < len(indptr):
            return self._targets[label_id], indptr[node], indptr[node + 1]
        return _EMPTY, 0, 0

    def overflow_successors(self, node: int, label_id: int) -> "list[int] | None":
        return self._overflow[label_id].get(node)

    def has_overflow(self, label_id: int) -> bool:
        return bool(self._overflow[label_id])

    def dead_positions(self, label_id: int) -> "set[int] | frozenset[int]":
        """Tombstoned CSR positions of a label; executors must skip these."""
        if not self._dead_edges:
            return _EMPTY_DEAD
        return self._dead[label_id]

    # -- numpy lowering -------------------------------------------------------
    def numpy_label_edges(self, label_id: int) -> LabelEdges:
        """One label's live edges as flat numpy arrays, cached per version.

        The arrays merge the CSR slice (minus tombstones) with the overflow
        adjacency, so the vectorized executor sees exactly the edge set the
        scalar traversals see.  The cache is invalidated by any mutation
        (``version`` bump) and rebuilt lazily, one label at a time.
        """
        import numpy as np

        with self._np_lock:
            if self._np_version != self.version:
                self._np_edges = [None] * len(self._overflow)
                self._np_version = self.version
            elif len(self._np_edges) < len(self._overflow):
                self._np_edges.extend(
                    [None] * (len(self._overflow) - len(self._np_edges))
                )
            cached = self._np_edges[label_id]
            built_for = self.version
        if cached is not None:
            return cached
        indptr = np.frombuffer(self._indptr[label_id], dtype=np.int64)
        targets = np.frombuffer(self._targets[label_id], dtype=np.int64)
        if indptr.size:
            src = np.repeat(np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr))
        else:
            src = np.empty(0, dtype=np.int64)
        dst = targets
        dead = self._dead[label_id]
        if dead:
            live = np.ones(dst.size, dtype=bool)
            live[np.fromiter(dead, dtype=np.int64, count=len(dead))] = False
            src, dst = src[live], dst[live]
        overflow = self._overflow[label_id]
        if overflow:
            extra_src = []
            extra_dst = []
            for source, destinations in overflow.items():
                extra_src.extend([source] * len(destinations))
                extra_dst.extend(destinations)
            src = np.concatenate([src, np.asarray(extra_src, dtype=np.int64)])
            dst = np.concatenate([dst, np.asarray(extra_dst, dtype=np.int64)])
        edges = LabelEdges(src, dst)
        with self._np_lock:
            # Two readers may race on the same label's first use; both lower
            # the identical edge set, so the second write is a harmless no-op
            # — unless a mutation slipped in since ``built_for`` was read, in
            # which case the arrays are (or may be) stale and must not be
            # cached.  Both sides of the check compare against the version
            # the *builder* saw: comparing ``_np_version`` to the live
            # ``self.version`` alone would readmit stale arrays whenever a
            # concurrent reader already reset the cache for the new version
            # (ABA).
            if self._np_version == built_for and self.version == built_for:
                self._np_edges[label_id] = edges
        return edges

    def out_edges(self, node: int) -> Iterator[tuple[int, int]]:
        """All ``(label_id, target)`` pairs of one node (any label)."""
        for lid in range(len(self.labels)):
            for target in self.successors(node, lid):
                yield (lid, target)

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """All compiled edges as ``(source, label_id, target)`` triples."""
        return iter(self._edges())

    # -- persistence ----------------------------------------------------------
    def to_parts(self) -> dict:
        """The complete compiled state as plain containers, for snapshots.

        Everything :meth:`from_parts` needs to rebuild an identical graph:
        both interner value lists, the per-label CSR pairs, the overflow
        adjacency, the tombstone sets, ``_csr_nodes`` and the mutation
        ``version``.  ``_edge_set`` is *not* included — it is derivable from
        CSR minus tombstones plus overflow, and re-deriving it on load is
        cheaper than shipping every triple twice.
        """
        return {
            "nodes": list(self.nodes.backing_list()),
            "labels": list(self.labels.backing_list()),
            "csr_nodes": self._csr_nodes,
            "indptr": list(self._indptr),
            "targets": list(self._targets),
            "overflow": [
                {source: list(targets) for source, targets in of.items()}
                for of in self._overflow
            ],
            "dead": [set(dead) for dead in self._dead],
            "version": self.version,
        }

    @classmethod
    def from_parts(
        cls,
        *,
        nodes: "list[Oid]",
        labels: "list[str]",
        csr_nodes: int,
        indptr: "list[array]",
        targets: "list[array]",
        overflow: "list[dict[int, list[int]]]",
        dead: "list[set[int]]",
        version: int,
    ) -> "CompiledGraph":
        """Rebuild a compiled graph from :meth:`to_parts` output.

        The edge set is left unmaterialized (lazily re-derived from CSR −
        tombstones + overflow on first use), which keeps restoring a
        snapshot O(arrays): a session that only serves queries never pays
        the O(E) scan, while incremental ``add_edge``/``remove_edge`` work
        exactly like on the graph that was saved.
        """
        graph = cls()
        graph.nodes = Interner(nodes)
        graph.labels = Interner(labels)
        graph._csr_nodes = csr_nodes
        graph._indptr = list(indptr)
        graph._targets = list(targets)
        graph._overflow = [
            {source: list(targets) for source, targets in of.items()}
            for of in overflow
        ]
        graph._dead = [set(positions) for positions in dead]
        graph._overflow_edges = sum(
            len(destinations) for of in graph._overflow for destinations in of.values()
        )
        graph._dead_edges = sum(len(positions) for positions in graph._dead)
        graph.version = version
        graph._edge_set = None
        return graph

    # -- translation ----------------------------------------------------------
    def node_id(self, oid: Oid) -> int | None:
        return self.nodes.id_of(oid)

    def oid_of(self, node: int) -> Oid:
        return self.nodes.value_of(node)

    def oids_of(self, node_ids: Iterable[int]) -> set[Oid]:
        values = self.nodes.backing_list()
        return {values[node] for node in node_ids}

    def label_id(self, label: str) -> int | None:
        return self.labels.id_of(label)

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(nodes={self.num_nodes}, labels={self.num_labels}, "
            f"edges={self.edge_count()}, overflow={self._overflow_edges}, "
            f"tombstones={self._dead_edges})"
        )
