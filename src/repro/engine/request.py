"""The structured query-request surface shared by every entry point.

Historically each layer grew its own positional signature — ``query(query,
source)``, ``query_batch(query, sources)``, ``submit(query, source)``, the
``id\\tsource\\tquery`` wire line with trailing ``LIMIT``/``CURSOR``/
``STREAM`` modifiers.  :class:`QueryRequest` replaces that sprawl with one
frozen description — scalar expression *or* conjunctive body, source(s),
pagination and streaming flags — and :func:`normalize` is the single entry
that lowers every accepted input shape (bare strings, :class:`Regex`,
:class:`~repro.query.path_query.RegularPathQuery`,
:class:`~repro.engine.conjunctive.ConjunctiveQuery`, :class:`CRPQRequest`,
or an existing :class:`QueryRequest`) to its canonical form.

``ServingSurface.admission`` and the ``QueryServer.submit*`` family accept
these natively; the legacy positional-string signatures remain as thin
shims that emit :class:`DeprecationWarning` for one release (see
``repro.engine.serving``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..exceptions import ReproError
from ..regex import Regex
from .conjunctive import ConjunctiveQuery, is_crpq_text, parse_crpq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.instance import Oid

__all__ = ["CRPQRequest", "QueryRequest", "normalize"]


@dataclass(frozen=True)
class QueryRequest:
    """One fully-described query request.

    ``query`` is either a scalar path expression (string, :class:`Regex` or
    ``RegularPathQuery``) or a conjunctive body (a
    :class:`~repro.engine.conjunctive.ConjunctiveQuery`, or its ``MATCH …``
    surface text).  ``sources`` carries the evaluation roots for scalar
    requests (a conjunctive body carries its roots as ``WHERE`` bindings
    instead, so its ``sources`` must be empty after :func:`normalize`).
    ``limit``/``cursor`` select one sorted answer page; ``stream`` asks for
    incremental delivery — the two are mutually exclusive, exactly like the
    wire protocol's modifiers.
    """

    query: "Regex | ConjunctiveQuery | str | object"
    sources: "tuple[Oid, ...]" = ()
    limit: "int | None" = None
    cursor: "str | None" = None
    stream: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.sources, tuple):
            object.__setattr__(self, "sources", tuple(self.sources))
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit <= 0
        ):
            raise ReproError(f"limit must be a positive integer, got {self.limit!r}")
        if self.cursor is not None and self.limit is None:
            raise ReproError("a cursor only makes sense with a limit")
        if self.stream and (self.limit is not None or self.cursor is not None):
            raise ReproError("stream and limit/cursor are mutually exclusive")

    @property
    def is_conjunctive(self) -> bool:
        """True when the body is a CRPQ (parsed or still surface text)."""
        if isinstance(self.query, ConjunctiveQuery):
            return True
        return isinstance(self.query, str) and is_crpq_text(self.query)

    @property
    def source(self) -> "Oid | None":
        """The single source of a one-source request (``None`` when absent)."""
        if len(self.sources) > 1:
            raise ReproError(
                f"request has {len(self.sources)} sources; use .sources"
            )
        return self.sources[0] if self.sources else None


@dataclass(frozen=True)
class CRPQRequest:
    """Convenience wrapper for a conjunctive request.

    ``source``, when given, binds the query's *first* variable — the same
    convention the v1 wire line and the CLI use for their one positional
    source slot.  :func:`normalize` folds it into the query's ``WHERE``
    bindings, so downstream layers only ever see a self-contained
    :class:`~repro.engine.conjunctive.ConjunctiveQuery`.
    """

    query: "ConjunctiveQuery | str"
    source: "Oid | None" = None


def _normalize_conjunctive(
    query: "ConjunctiveQuery | str", sources: "tuple[Oid, ...]"
) -> ConjunctiveQuery:
    crpq = query if isinstance(query, ConjunctiveQuery) else parse_crpq(query)
    if len(sources) > 1:
        raise ReproError(
            "a conjunctive request takes at most one source (it binds the "
            "first MATCH variable); bind further variables with WHERE"
        )
    if sources:
        crpq = crpq.with_source(sources[0])
    return crpq


def normalize(
    request: "QueryRequest | CRPQRequest | ConjunctiveQuery | Regex | str | object",
    source: "Oid | None" = None,
    *,
    sources: "tuple[Oid, ...] | None" = None,
    limit: "int | None" = None,
    cursor: "str | None" = None,
    stream: bool = False,
) -> QueryRequest:
    """Lower any accepted request shape to a canonical :class:`QueryRequest`.

    Canonical means: a conjunctive body is a parsed
    :class:`ConjunctiveQuery` with every positional source folded into its
    bindings and ``sources == ()``; a scalar body keeps its expression
    as given (engines parse expressions themselves) with roots in
    ``sources``.  Idempotent — normalizing a canonical request returns an
    equal one.  ``source``/``sources`` are mutually exclusive, and neither
    may be combined with a request object that already carries sources.
    """
    if source is not None and sources is not None:
        raise ReproError("pass source or sources, not both")
    extra_sources: "tuple[Oid, ...]" = (
        (source,) if source is not None else tuple(sources or ())
    )

    if isinstance(request, QueryRequest):
        if limit is not None or cursor is not None or stream:
            raise ReproError(
                "limit/cursor/stream are fields of the QueryRequest; "
                "set them on the request itself"
            )
        if extra_sources and request.sources:
            raise ReproError("request already carries sources")
        base = request if not extra_sources else replace(request, sources=extra_sources)
        if base.is_conjunctive:
            crpq = _normalize_conjunctive(base.query, base.sources)
            return replace(base, query=crpq, sources=())
        return base

    if isinstance(request, CRPQRequest):
        if extra_sources:
            raise ReproError("CRPQRequest already carries its source slot")
        crpq = _normalize_conjunctive(
            request.query, (request.source,) if request.source is not None else ()
        )
        return QueryRequest(
            query=crpq, limit=limit, cursor=cursor, stream=stream
        )

    if isinstance(request, ConjunctiveQuery) or (
        isinstance(request, str) and is_crpq_text(request)
    ):
        crpq = _normalize_conjunctive(request, extra_sources)
        return QueryRequest(query=crpq, limit=limit, cursor=cursor, stream=stream)

    return QueryRequest(
        query=request,
        sources=extra_sources,
        limit=limit,
        cursor=cursor,
        stream=stream,
    )
