"""Conjunctive regular path queries (CRPQs) compiled to hash-join plans.

One scalar RPQ relates a source to the objects some path matches; a CRPQ
conjoins several such *atoms* over shared variables::

    MATCH x -[connection]-> y, y -[link* doc]-> z
    WHERE x = gateway
    RETURN y, z

Everything here is engine-agnostic and sans-io.  :func:`parse_crpq` turns
the surface text into a frozen :class:`ConjunctiveQuery`; :func:`plan_join`
picks a left-deep join order with cardinality estimates from
:func:`repro.optimize.estimate_cardinality` over per-label CSR degree
stats; :class:`PlanExecution` then runs the plan as a stepper that *asks*
for per-atom batch evaluations (``pending()`` → an expression plus the
source frontier) and is *fed* the resulting (source, target) pair map
(``feed()``).  The synchronous engines drive it with
``query_batch`` under one lock scope; the asyncio serving layer drives the
same object through its admission queue, so a CRPQ atom coalesces with
scalar traffic of the same admission key — one join implementation, two
drivers, no semantic drift.

Grammar (whitespace-insensitive between tokens)::

    crpq    = "MATCH" atom ("," atom)* ["WHERE" cond (("AND" | ",") cond)*]
              ["RETURN" var ("," var)*]
    atom    = var "-[" expression "]->" var
    cond    = var "=" constant
    var     = [A-Za-z_][A-Za-z0-9_]*
    constant= any non-whitespace token

``expression`` is the ordinary RPQ regex syntax (:mod:`repro.regex`); the
only extra restriction is that it may not contain the ``]->`` terminator.
``RETURN`` defaults to every variable in order of first appearance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from ..exceptions import RegexSyntaxError, ReproError
from ..optimize.cost import DEFAULT_COST_MODEL, DegreeStats, estimate_cardinality
from ..regex import Regex, parse
from ..regex.printer import to_string

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.instance import Instance, Oid
    from ..optimize.cost import CostModel

__all__ = [
    "Atom",
    "AtomRequest",
    "ConjunctiveQuery",
    "ConjunctiveResult",
    "JoinPlan",
    "JoinStep",
    "PlanExecution",
    "PlannedAtom",
    "is_crpq_text",
    "nested_loop_rows",
    "parse_crpq",
    "plan_join",
]


_VAR_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_ATOM_RE = re.compile(
    r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*-\[(.*)\]->\s*([A-Za-z_][A-Za-z0-9_]*)\s*",
    re.DOTALL,
)
_COND_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(\S+)\s*")

#: Planner strategies accepted by :func:`plan_join`.
PLAN_STRATEGIES = ("optimized", "declared", "worst")


def is_crpq_text(text: str) -> bool:
    """True when ``text`` is conjunctive surface syntax (a ``MATCH`` clause).

    ``MATCH`` is not a reserved regex token, so a scalar expression starting
    with a *label* literally spelled ``MATCH`` must be parenthesized to
    escape detection — the README documents this as the one grammar overlap.
    """
    stripped = text.lstrip()
    return stripped.startswith("MATCH") and (
        len(stripped) == 5 or stripped[5].isspace()
    )


# --------------------------------------------------------------------------
# Surface syntax
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Atom:
    """One path atom ``source -[expression]-> target`` of a CRPQ."""

    source: str
    expression: Regex
    target: str

    def text(self) -> str:
        return f"{self.source} -[{to_string(self.expression)}]-> {self.target}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A parsed CRPQ: atoms, equality bindings and the projection list.

    Frozen and hashable; ``bindings`` are canonicalized to sorted order and
    an empty ``returns`` means *all* variables in first-appearance order
    (the parser default), so structurally equal queries compare equal.
    """

    atoms: "tuple[Atom, ...]"
    bindings: "tuple[tuple[str, Oid], ...]" = ()
    returns: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ReproError("a conjunctive query needs at least one atom")
        variables = self.variables
        bound: dict[str, "Oid"] = {}
        for var, value in self.bindings:
            if var not in variables:
                raise ReproError(f"WHERE binds unknown variable {var!r}")
            if var in bound and bound[var] != value:
                raise ReproError(
                    f"variable {var!r} bound to both {bound[var]!r} and {value!r}"
                )
            bound[var] = value
        object.__setattr__(
            self, "bindings", tuple(sorted(bound.items(), key=lambda kv: kv[0]))
        )
        if not self.returns:
            object.__setattr__(self, "returns", variables)
        else:
            for var in self.returns:
                if var not in variables:
                    raise ReproError(f"RETURN names unknown variable {var!r}")

    @property
    def variables(self) -> "tuple[str, ...]":
        """Every variable, in order of first appearance."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            seen.setdefault(atom.source)
            seen.setdefault(atom.target)
        return tuple(seen)

    def to_text(self) -> str:
        """Canonical surface form (atoms in declared order, sorted WHERE)."""
        parts = ["MATCH ", ", ".join(atom.text() for atom in self.atoms)]
        if self.bindings:
            parts.append(
                " WHERE "
                + " AND ".join(f"{var} = {value}" for var, value in self.bindings)
            )
        parts.append(" RETURN " + ", ".join(self.returns))
        return "".join(parts)

    def with_source(self, source: "Oid") -> "ConjunctiveQuery":
        """This query with its first variable bound to ``source``.

        The scalar line protocol and CLI carry one positional source; for a
        CRPQ that source binds the first ``MATCH`` variable (the natural
        reading of ``MATCH x -[r]-> y`` asked *from* an object).
        """
        first = self.variables[0]
        return ConjunctiveQuery(
            atoms=self.atoms,
            bindings=self.bindings + ((first, source),),
            returns=self.returns,
        )


def _expression_spans(text: str) -> "list[tuple[int, int]]":
    """Spans of the ``-[`` … ``]->`` expression slots inside ``text``."""
    spans = []
    cursor = 0
    while True:
        start = text.find("-[", cursor)
        if start < 0:
            return spans
        end = text.find("]->", start)
        if end < 0:
            raise ReproError(f"unterminated atom expression at offset {start}")
        spans.append((start, end + 3))
        cursor = end + 3


def _outside(spans: "list[tuple[int, int]]", index: int) -> bool:
    return all(not (start <= index < end) for start, end in spans)


def _split_outside(
    text: str, spans: "list[tuple[int, int]]", pattern: "re.Pattern[str]"
) -> "list[str]":
    """Split ``text`` on ``pattern`` matches that fall outside ``spans``."""
    pieces = []
    last = 0
    for match in pattern.finditer(text):
        if _outside(spans, match.start()):
            pieces.append(text[last : match.start()])
            last = match.end()
    pieces.append(text[last:])
    return pieces


_COMMA = re.compile(r",")
_AND_OR_COMMA = re.compile(r"\bAND\b|,")
_KEYWORD = re.compile(r"\bWHERE\b|\bRETURN\b")


def parse_crpq(text: str) -> ConjunctiveQuery:
    """Parse CRPQ surface syntax into a :class:`ConjunctiveQuery`."""
    stripped = text.strip()
    if not is_crpq_text(stripped):
        raise ReproError("a conjunctive query starts with the MATCH keyword")
    body = stripped[len("MATCH") :]
    spans = _expression_spans(body)

    match_part, where_part, return_part = body, "", ""
    keyword_hits = [m for m in _KEYWORD.finditer(body) if _outside(spans, m.start())]
    expected = ["WHERE", "RETURN"]
    cut = len(body)
    for hit in reversed(keyword_hits):
        if hit.group() not in expected:
            raise ReproError(f"misplaced {hit.group()} clause in conjunctive query")
        expected = expected[: expected.index(hit.group())]
        clause = body[hit.end() : cut]
        if hit.group() == "WHERE":
            where_part = clause
        else:
            return_part = clause
        cut = hit.start()
    match_part = body[:cut]

    atoms = []
    for chunk in _split_outside(match_part, spans, _COMMA):
        if not chunk.strip():
            raise ReproError("empty atom in MATCH clause")
        shaped = _ATOM_RE.fullmatch(chunk)
        if shaped is None:
            raise ReproError(
                f"malformed atom {chunk.strip()!r}: expected var -[expression]-> var"
            )
        source, expression_text, target = shaped.groups()
        try:
            expression = parse(expression_text)
        except RegexSyntaxError as error:
            raise ReproError(
                f"bad expression in atom {chunk.strip()!r}: {error}"
            ) from error
        atoms.append(Atom(source, expression, target))

    bindings = []
    if where_part.strip():
        for chunk in _split_outside(where_part, [], _AND_OR_COMMA):
            cond = _COND_RE.fullmatch(chunk)
            if cond is None:
                raise ReproError(
                    f"malformed WHERE condition {chunk.strip()!r}: expected var = constant"
                )
            bindings.append((cond.group(1), cond.group(2)))

    returns = []
    if return_part.strip():
        for chunk in return_part.split(","):
            name = chunk.strip()
            if not _VAR_RE.fullmatch(name):
                raise ReproError(f"malformed RETURN variable {name!r}")
            returns.append(name)

    return ConjunctiveQuery(
        atoms=tuple(atoms), bindings=tuple(bindings), returns=tuple(returns)
    )


# --------------------------------------------------------------------------
# Join planning
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PlannedAtom:
    """One atom with the expression the engine will actually evaluate."""

    atom: Atom
    prepared: object  # constraint-rewritten Regex (or the original query form)
    estimated_pairs: float
    estimated_cost: float


@dataclass(frozen=True)
class JoinPlan:
    """A left-deep join order over a CRPQ's atoms.

    ``acyclic`` records whether the variable graph (distinct endpoint pairs
    as edges) is a forest — the semantic-tree-width-friendly case where a
    connected ear ordering exists and no step needs a cartesian product.
    ``domain`` is the active domain the planner assumed; execution seeds
    unbound-source atoms from it.
    """

    query: ConjunctiveQuery
    order: "tuple[PlannedAtom, ...]"
    acyclic: bool
    estimated_cost: float
    strategy: str
    domain: "tuple[Oid, ...]" = ()

    def describe(self) -> "list[dict]":
        """JSON-ready per-step view (CLI ``--plan``, bench artifacts)."""
        return [
            {
                "atom": planned.atom.text(),
                "prepared": query_text(planned.prepared),
                "estimated_pairs": planned.estimated_pairs,
                "estimated_cost": planned.estimated_cost,
            }
            for planned in self.order
        ]


def query_text(prepared: object) -> str:
    """Printable form of a prepared expression (Regex, query or string)."""
    if isinstance(prepared, Regex):
        return to_string(prepared)
    expression = getattr(prepared, "expression", None)
    if isinstance(expression, Regex):
        return to_string(expression)
    return str(prepared)


def _is_acyclic(query: ConjunctiveQuery) -> bool:
    parent: dict[str, str] = {}

    def find(var: str) -> str:
        root = var
        while parent.setdefault(root, root) != root:
            root = parent[root]
        parent[var] = root
        return root

    seen_pairs = set()
    for atom in query.atoms:
        if atom.source == atom.target:
            continue  # a self-loop atom is a unary hyperedge: never cyclic
        pair = frozenset((atom.source, atom.target))
        if pair in seen_pairs:
            continue  # parallel atoms join pairwise, no new cycle
        seen_pairs.add(pair)
        left, right = find(atom.source), find(atom.target)
        if left == right:
            return False
        parent[left] = right
    return True


def plan_join(
    query: ConjunctiveQuery,
    stats: DegreeStats,
    model: "CostModel | None" = None,
    *,
    strategy: str = "optimized",
    prepared: "Sequence[object] | None" = None,
    domain: "tuple[Oid, ...]" = (),
) -> JoinPlan:
    """Choose a left-deep join order for ``query``.

    Greedy: at each step pick the atom whose evaluation is estimated
    cheapest given the variables already bound — a bound source restricts
    the batch to the current relation's endpoints (cost ≈ pairs / n per
    source), an unbound source evaluates from the whole domain (cost ≈ all
    pairs), and an atom disconnected from everything bound additionally
    cartesian-multiplies the intermediate relation.  ``strategy`` selects
    ``"optimized"`` (greedy-min, the default), ``"declared"`` (syntactic
    order) or ``"worst"`` (greedy-max — the benchmark's adversarial
    baseline).  ``prepared`` optionally supplies the constraint-rewritten
    expression per atom (same order as ``query.atoms``); estimates are
    computed on what will actually run.
    """
    if strategy not in PLAN_STRATEGIES:
        raise ReproError(f"unknown plan strategy {strategy!r}")
    model = model or DEFAULT_COST_MODEL
    atoms = query.atoms
    if prepared is None:
        prepared = [atom.expression for atom in atoms]
    if len(prepared) != len(atoms):
        raise ReproError("prepared expressions must align with query atoms")
    estimates = []
    for expr in prepared:
        expression = expr if isinstance(expr, (Regex, str)) else getattr(
            expr, "expression", expr
        )
        estimates.append(estimate_cardinality(expression, stats, model))

    nodes = max(1, stats.num_nodes)
    bound = {var for var, _value in query.bindings}
    rows_estimate = 1.0

    def step_cost(index: int) -> float:
        atom = atoms[index]
        pairs = estimates[index]
        if atom.source in bound:
            return max(1.0, rows_estimate) * pairs / nodes
        cost = pairs  # evaluated from the full domain
        if atom.target not in bound and bound:
            cost *= max(1.0, rows_estimate)  # disconnected: cartesian join
        return cost

    remaining = list(range(len(atoms)))
    total = 0.0
    order: list[PlannedAtom] = []
    while remaining:
        if strategy == "declared":
            pick = remaining[0]
        else:
            ranked = sorted(
                remaining, key=lambda i: (step_cost(i), estimates[i], i)
            )
            pick = ranked[0] if strategy == "optimized" else ranked[-1]
        cost = step_cost(pick)
        total += cost
        atom = atoms[pick]
        order.append(
            PlannedAtom(
                atom=atom,
                prepared=prepared[pick],
                estimated_pairs=estimates[pick],
                estimated_cost=cost,
            )
        )
        joined = (atom.source in bound) or (atom.target in bound) or not bound
        grow = estimates[pick] / nodes
        if not joined:
            grow = estimates[pick]
        rows_estimate = max(1.0, rows_estimate * max(grow, 1.0 / nodes))
        bound.update((atom.source, atom.target))
        remaining.remove(pick)

    return JoinPlan(
        query=query,
        order=tuple(order),
        acyclic=_is_acyclic(query),
        estimated_cost=total,
        strategy=strategy,
        domain=domain,
    )


# --------------------------------------------------------------------------
# Sans-io execution
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AtomRequest:
    """One batch evaluation the execution needs next: run ``expression``
    from every object in ``sources`` and feed back the pair map."""

    step: PlannedAtom
    expression: object
    sources: "tuple[Oid, ...]"


@dataclass(slots=True)
class JoinStep:
    """Accounting for one executed join step (telemetry + plan reports)."""

    atom: str
    sources: int
    pairs: int
    rows_in: int
    rows_out: int


def _row_key(row: "tuple[Oid, ...]") -> "tuple[str, ...]":
    return tuple(repr(value) for value in row)


class PlanExecution:
    """Drives a :class:`JoinPlan` one atom at a time, engine-agnostic.

    Call :meth:`pending` for the next :class:`AtomRequest` (``None`` when
    done or the intermediate relation went empty — the short-circuit),
    evaluate it however the driver likes (``query_batch``, the serving
    admission queue, a naive evaluator), then :meth:`feed` the resulting
    ``{source: answer set}`` map.  Not thread-safe; each execution belongs
    to one driver.

    After every join the relation is projected down to the variables still
    needed (later atoms + ``RETURN``) and deduplicated — the classic
    acyclic-join economy, valid for cyclic plans too since the final result
    is a set-projection anyway.
    """

    def __init__(self, plan: JoinPlan, domain: "tuple[Oid, ...] | None" = None):
        self.plan = plan
        self._domain = tuple(domain) if domain is not None else tuple(plan.domain)
        self._columns: "tuple[str, ...]" = tuple(
            var for var, _value in plan.query.bindings
        )
        self._rows: "list[tuple[Oid, ...]]" = [
            tuple(value for _var, value in plan.query.bindings)
        ]
        if self._domain:
            # A WHERE constant naming no object matches nothing — filter it
            # here rather than letting a nullable atom manufacture a phantom
            # ε self-answer from a source the graph never held.
            members = set(self._domain)
            if any(value not in members for value in self._rows[0]):
                self._rows = []
        self._index = 0
        self.steps: "list[JoinStep]" = []
        # Variables still needed at step i: everything a later atom touches
        # plus the projection list.
        needed = set(plan.query.returns)
        self._needed_after: "list[frozenset[str]]" = [frozenset(needed)] * (
            len(plan.order) + 1
        )
        for i in range(len(plan.order) - 1, -1, -1):
            self._needed_after[i + 1] = frozenset(needed)
            needed.add(plan.order[i].atom.source)
            needed.add(plan.order[i].atom.target)
        self._needed_after[0] = frozenset(needed)

    @property
    def done(self) -> bool:
        return self._index >= len(self.plan.order) or not self._rows

    def pending(self) -> "AtomRequest | None":
        """The next batch evaluation, or ``None`` when the join is done."""
        if self.done:
            return None
        step = self.plan.order[self._index]
        source = step.atom.source
        if source in self._columns:
            at = self._columns.index(source)
            sources = tuple(
                sorted({row[at] for row in self._rows}, key=repr)
            )
        else:
            if not self._domain:
                raise ReproError(
                    f"atom {step.atom.text()!r} starts unbound and the plan "
                    "carries no domain to seed it from"
                )
            sources = self._domain
        return AtomRequest(step=step, expression=step.prepared, sources=sources)

    def feed(self, pairs: "Mapping[Oid, Iterable[Oid]]") -> JoinStep:
        """Join the evaluated pair map for the current atom into the relation."""
        if self.done:
            raise ReproError("feed() called on a finished execution")
        step = self.plan.order[self._index]
        src, tgt = step.atom.source, step.atom.target
        columns = self._columns
        rows = self._rows
        si = columns.index(src) if src in columns else None
        ti = columns.index(tgt) if tgt in columns else None
        sets = {s: frozenset(ts) for s, ts in pairs.items()}

        out: "list[tuple[Oid, ...]]" = []
        if src == tgt:
            if si is not None:
                out = [r for r in rows if r[si] in sets.get(r[si], frozenset())]
                new_columns = columns
            else:
                loops = [s for s, ts in sets.items() if s in ts]
                out = [r + (s,) for r in rows for s in loops]
                new_columns = columns + (src,)
        elif si is not None and ti is not None:
            out = [r for r in rows if r[ti] in sets.get(r[si], frozenset())]
            new_columns = columns
        elif si is not None:
            out = [r + (t,) for r in rows for t in sets.get(r[si], frozenset())]
            new_columns = columns + (tgt,)
        elif ti is not None:
            reverse: "dict[Oid, list[Oid]]" = {}
            for s, ts in sets.items():
                for t in ts:
                    reverse.setdefault(t, []).append(s)
            out = [r + (s,) for r in rows for s in reverse.get(r[ti], ())]
            new_columns = columns + (src,)
        else:
            flat = [(s, t) for s, ts in sets.items() for t in ts]
            out = [r + pair for r in rows for pair in flat]
            new_columns = columns + (src, tgt)

        self._index += 1
        needed = self._needed_after[self._index]
        if any(var not in needed for var in new_columns):
            keep = [i for i, var in enumerate(new_columns) if var in needed]
            new_columns = tuple(new_columns[i] for i in keep)
            out = [tuple(r[i] for i in keep) for r in out]
        out = list(dict.fromkeys(out))

        report = JoinStep(
            atom=step.atom.text(),
            sources=len(sets),
            pairs=sum(len(ts) for ts in sets.values()),
            rows_in=len(rows),
            rows_out=len(out),
        )
        self.steps.append(report)
        self._columns = new_columns
        self._rows = out
        return report

    def result_rows(self) -> "tuple[tuple[Oid, ...], ...]":
        """The final projected relation, deduplicated and sorted."""
        if not self.done:
            raise ReproError("execution still has pending atoms")
        if not self._rows:
            # Short-circuited: later atoms never joined their columns in,
            # so project off the (empty) relation without indexing them.
            return ()
        returns = self.plan.query.returns
        indices = [self._columns.index(var) for var in returns]
        projected = {tuple(row[i] for i in indices) for row in self._rows}
        return tuple(sorted(projected, key=_row_key))


@dataclass(frozen=True)
class ConjunctiveResult:
    """Answer relation of one CRPQ: ``variables`` names the columns of
    ``rows`` (sorted, duplicate-free), ``plan`` and ``steps`` record how
    the join ran."""

    variables: "tuple[str, ...]"
    rows: "tuple[tuple[Oid, ...], ...]"
    plan: JoinPlan
    steps: "tuple[JoinStep, ...]" = field(default=())

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> "list[dict[str, Oid]]":
        return [dict(zip(self.variables, row)) for row in self.rows]


# --------------------------------------------------------------------------
# Naive reference
# --------------------------------------------------------------------------


def nested_loop_rows(
    query: ConjunctiveQuery,
    instance: "Instance",
    evaluate_fn: "Callable[[Regex, Oid], set] | None" = None,
) -> "tuple[tuple[Oid, ...], ...]":
    """Spec-level reference: nested loops over per-atom ``evaluate`` answers.

    Enumerates variable assignments atom-by-atom in declared order with no
    planning, no batching and no pruning — exponential in the worst case,
    sized for tests and benchmark cross-checks only.  The differential
    suite pins every engine backend's ``query_conjunctive`` to this.
    """
    if evaluate_fn is None:
        from ..query.evaluation import evaluate as _evaluate

        def evaluate_fn(expression: Regex, source: "Oid") -> set:
            return set(_evaluate(expression, source, instance).answers)

    memo: "dict[tuple[int, Oid], set]" = {}

    def answers(atom_index: int, source: "Oid") -> set:
        key = (atom_index, source)
        if key not in memo:
            memo[key] = evaluate_fn(query.atoms[atom_index].expression, source)
        return memo[key]

    domain = sorted(instance.objects, key=repr)
    rows: "list[dict[str, Oid]]" = [dict(query.bindings)]
    for index, atom in enumerate(query.atoms):
        out: "list[dict[str, Oid]]" = []
        for row in rows:
            sources = [row[atom.source]] if atom.source in row else domain
            for source in sources:
                if source not in instance.objects:
                    continue  # a WHERE constant naming no object matches nothing
                found = answers(index, source)
                if atom.source == atom.target:
                    if source in found:
                        out.append({**row, atom.source: source})
                elif atom.target in row:
                    if row[atom.target] in found:
                        out.append({**row, atom.source: source})
                else:
                    for target in found:
                        out.append({**row, atom.source: source, atom.target: target})
        rows = out
    projected = {tuple(row[var] for var in query.returns) for row in rows}
    return tuple(sorted(projected, key=_row_key))
