"""Telemetry substrate: metrics registry, structured tracing, live export.

Every later performance PR (kernel passes, the multiprocess tier, answer
streaming) needs to *see* where time goes before it can claim to move it.
This module is that observability substrate for the whole serving stack, in
three layers that deliberately share nothing but a module-level enabled
flag:

* :class:`MetricsRegistry` — thread-safe **counters**, **gauges** (callback
  style: the existing ``EngineStats`` / ``ShardedStats`` / ``ServingStats``
  dataclasses *register into* a session's registry, so one
  ``registry.snapshot()`` covers the entire session without double
  bookkeeping), and fixed-bucket latency :class:`Histogram`\\ s whose
  p50/p95/p99 come from cumulative-bucket linear interpolation — no
  third-party dependency, Prometheus-compatible rendering
  (:meth:`MetricsRegistry.render_prometheus`);

* a **structured tracing layer** — lightweight :class:`Span`\\ s
  (``trace_id``, name, start, duration, parent, attributes) collected into
  per-request :class:`Trace` trees and recorded by a :class:`Tracer` into a
  bounded ring buffer plus a *slow-query log* keeping the N worst traces.
  Spans nest through a :mod:`contextvars` current-span variable within a
  thread, and cross thread boundaries explicitly
  (:meth:`Telemetry.span_under` / :meth:`Telemetry.under`) — which is how
  one serving trace spans the event loop, the flush pool and the superstep
  scheduler's workers;

* **export surfaces** — ``registry.snapshot()`` (JSON-ready dict with
  stable key names), ``render_prometheus()`` (text exposition format 0.0.4),
  :func:`render_text` (the unified ``--stats`` dump), and
  :class:`TelemetryHTTPServer`, a stdlib ``http.server`` thread answering
  ``/metrics`` and ``/healthz`` for the CLI's ``serve --metrics``.

**Overhead contract**: instrumentation must be near-free when disabled.
The module-level flag (:func:`enabled` / :func:`set_enabled`, seeded from
the ``REPRO_TELEMETRY`` environment variable) short-circuits every entry
point: ``Telemetry.span(...)`` returns the shared :data:`NULL_SPAN`
singleton (no allocation), ``Histogram.observe`` returns before touching
its lock, and callers gate their own ``perf_counter`` bookkeeping on
:attr:`Telemetry.enabled`.  The serving benchmark gates enabled-vs-disabled
throughput within 5%.
"""

from __future__ import annotations

import itertools
import json
import threading
from bisect import bisect_left
from collections import OrderedDict, deque
from contextvars import ContextVar
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Sequence

from ..exceptions import ReproError

import os as _os

# -- the enabled flag ----------------------------------------------------------
TELEMETRY_ENV = "REPRO_TELEMETRY"
_OFF_VALUES = {"0", "off", "false", "no"}

_enabled = _os.environ.get(TELEMETRY_ENV, "on").strip().lower() not in _OFF_VALUES


def enabled() -> bool:
    """Whether telemetry capture (spans, histogram observations) is on."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip telemetry capture; returns the previous value.

    Registries and their registered gauges keep working either way (they
    read live counters); what the flag gates is the *capture* work — span
    trees, histogram observations, per-request timestamping.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


# -- lock witness --------------------------------------------------------------
# Debug-mode runtime recorder for lock-acquisition order.  Off by default;
# ``REPRO_LOCK_WITNESS=1`` makes the engine's locks (created through
# :func:`witnessed_lock` / named ``_ReadWriteLock``) report every acquisition
# so the per-thread nesting order can be checked against the static graph
# that ``python -m repro.analysis`` builds (LockOrder rule).
LOCK_WITNESS_ENV = "REPRO_LOCK_WITNESS"
_ON_VALUES = {"1", "on", "true", "yes"}

_witness_enabled = (
    _os.environ.get(LOCK_WITNESS_ENV, "").strip().lower() in _ON_VALUES
)


class LockOrderError(ReproError):
    """Observed lock-acquisition order is inconsistent (potential deadlock)."""


class LockWitness:
    """Records ``held -> acquired`` lock pairs per thread.

    Each thread keeps a stack of the named locks it currently holds; when it
    acquires lock ``B`` while holding ``A``, the edge ``A -> B`` is recorded.
    :meth:`assert_consistent` then rejects any inversion — observing both
    ``A -> B`` and ``B -> A`` (or a longer cycle, optionally combined with
    the statically derived edges) means two threads can deadlock.

    Re-entrant re-acquisition of one lock (``RLock``) records nothing: the
    graph orders *distinct* locks.
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._edges: "dict[tuple[str, str], int]" = {}
        self._inversions: "list[str]" = []

    def _stack(self) -> "list[str]":
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def note_acquire(self, name: str) -> None:
        stack = self._stack()
        fresh = [(held, name) for held in stack if held != name]
        stack.append(name)
        if not fresh:
            return
        with self._lock:
            for edge in fresh:
                if edge not in self._edges:
                    self._edges[edge] = 0
                    inverse = (edge[1], edge[0])
                    if inverse in self._edges:
                        self._inversions.append(
                            f"{edge[0]} and {edge[1]} each acquired while "
                            f"the other was held"
                        )
                self._edges[edge] += 1

    def note_release(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def edges(self) -> "set[tuple[str, str]]":
        with self._lock:
            return set(self._edges)

    def inversions(self) -> "list[str]":
        with self._lock:
            return list(self._inversions)

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()
            self._inversions.clear()

    def assert_consistent(
        self, static_edges: "set[tuple[str, str]] | None" = None
    ) -> None:
        """Raise :class:`LockOrderError` on inverted or cyclic order.

        With ``static_edges`` (from ``repro.analysis.engine_static_edges``)
        the observed edges are merged into the static graph first, so a
        runtime order that contradicts the *declared* order also fails.
        """
        problems = self.inversions()
        combined = self.edges() | set(static_edges or ())
        from ..analysis.lockgraph import find_cycles

        for cycle in find_cycles(combined):
            problems.append("lock-order cycle: " + " -> ".join(cycle))
        if problems:
            raise LockOrderError("; ".join(problems))


_witness: "LockWitness | None" = LockWitness() if _witness_enabled else None


def witness_enabled() -> bool:
    return _witness_enabled


def set_witness_enabled(flag: bool) -> bool:
    """Flip witness mode (tests); locks created *afterwards* are recorded."""
    global _witness_enabled, _witness
    previous = _witness_enabled
    _witness_enabled = bool(flag)
    if _witness_enabled and _witness is None:
        _witness = LockWitness()
    return previous


def lock_witness() -> "LockWitness | None":
    """The active recorder, or ``None`` when witness mode is off."""
    return _witness if _witness_enabled else None


class _WitnessedLock:
    """Wraps a ``threading.Lock``/``RLock``, reporting to the witness."""

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            witness = lock_witness()
            if witness is not None:
                witness.note_acquire(self.name)
        return ok

    def release(self) -> None:
        self._inner.release()
        witness = lock_witness()
        if witness is not None:
            witness.note_release(self.name)

    def __enter__(self) -> "_WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_WitnessedLock({self.name!r}, {self._inner!r})"


def witnessed_lock(name: str, factory: "Callable[[], object]" = threading.Lock):
    """A lock that reports to the witness — or a plain one when mode is off.

    The engine's long-lived locks are created through this factory with
    stable ``Class.attr`` names matching the static graph's node names.
    With ``REPRO_LOCK_WITNESS`` unset this returns ``factory()`` unchanged:
    zero overhead on the production path.
    """
    inner = factory()
    if not _witness_enabled:
        return inner
    return _WitnessedLock(name, inner)


# -- metrics -------------------------------------------------------------------
# Log-spaced seconds, tuned for query latencies between ~0.1ms and ~10s.
DEFAULT_LATENCY_BUCKETS: "tuple[float, ...]" = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
# Power-of-two-ish sizes, for batch-width histograms.
DEFAULT_SIZE_BUCKETS: "tuple[float, ...]" = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing tally, optionally labeled.

    Unlabeled: ``counter.inc()``.  Labeled (``labelnames`` given at
    registration): ``counter.inc(1, "numpy")`` — one value series per label
    tuple.  Unlike histogram observation, counter increments are *not*
    gated on the enabled flag: they are the registry's cheap bookkeeping
    primitive and several are read back by tests and gates.
    """

    kind = "counter"

    GUARDED_BY = {"_values": "_lock"}

    __slots__ = ("name", "help", "labelnames", "_values", "_lock")

    def __init__(self, name: str, help: str, labelnames: "tuple[str, ...]" = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: "dict[tuple[str, ...], float]" = {}
        self._lock = witnessed_lock("Counter._lock")

    def inc(self, amount: float = 1, *labelvalues: str) -> None:
        if len(labelvalues) != len(self.labelnames):
            raise ReproError(
                f"counter {self.name!r} wants labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )
        with self._lock:
            self._values[labelvalues] = self._values.get(labelvalues, 0) + amount

    def value(self, *labelvalues: str) -> float:
        with self._lock:
            return self._values.get(labelvalues, 0)

    def collect(self) -> "dict[tuple[str, ...], float]":
        with self._lock:
            if not self.labelnames and not self._values:
                return {(): 0}
            return dict(self._values)


class Gauge:
    """A point-in-time value read from a callback at snapshot time.

    This is how the stats dataclasses "register into" the registry: the
    callback closes over the live counter (e.g. ``lambda:
    stats.graph_builds``), so snapshots always reflect the current session
    state and no write path pays double bookkeeping.  A callback returning
    a ``dict`` renders as one series per key (``labelnames`` names the
    single label dimension).
    """

    kind = "gauge"

    __slots__ = ("name", "help", "labelnames", "_fn")

    def __init__(
        self,
        name: str,
        help: str,
        fn: "Callable[[], float | Mapping[str, float]]",
        labelnames: "tuple[str, ...]" = (),
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._fn = fn

    def collect(self) -> "dict[tuple[str, ...], float]":
        value = self._fn()
        if isinstance(value, Mapping):
            return {(str(key),): val for key, val in value.items()}
        return {(): value}


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``buckets`` are the *upper bounds* of each bucket (ascending); values
    beyond the last bound land in an implicit overflow bucket.
    :meth:`percentile` walks the cumulative counts and linearly
    interpolates inside the bucket holding the target rank — the classic
    Prometheus ``histogram_quantile`` estimate, except the overflow bucket
    interpolates toward the observed maximum instead of clamping to the
    last bound.  ``observe`` is a no-op while telemetry is disabled.
    """

    kind = "histogram"

    # _sum/_count are ``:mutate``: the ``count``/``sum``/``summary``
    # accessors do documented racy point-reads of one scalar each.
    GUARDED_BY = {
        "_counts": "_lock",
        "_sum": "_lock:mutate",
        "_count": "_lock:mutate",
        "_min": "_lock",
        "_max": "_lock",
    }

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, help: str, buckets: "Sequence[float] | None" = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError(f"histogram {name!r} wants ascending bucket bounds")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = 0.0
        self._lock = witnessed_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        position = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, quantile: float) -> float:
        """The interpolated ``quantile`` (in ``[0, 1]``) of the distribution.

        An empty histogram reports ``0.0`` for every quantile (there is no
        distribution to estimate — callers render it as "no samples", they
        do not get ``inf``/``nan`` arithmetic artifacts).  The bucket
        holding the target uses the observed ``min`` as its lower edge when
        no observation precedes it (the overflow bucket's upper edge is the
        observed ``max`` already): a distribution living entirely in the
        overflow bucket interpolates within ``[min, max]`` instead of
        upward from the last bucket *bound* — a value that was never
        observed — and a single-valued distribution reports that exact
        value at every quantile.
        """
        if not 0 <= quantile <= 1:
            raise ReproError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = quantile * total
            cumulative = 0
            lower = 0.0
            for position, count in enumerate(self._counts):
                if count == 0:
                    lower = (
                        self.buckets[position]
                        if position < len(self.buckets)
                        else lower
                    )
                    continue
                upper = (
                    self.buckets[position]
                    if position < len(self.buckets)
                    else max(self._max, lower)
                )
                if cumulative + count >= target:
                    # The observed minimum is a tighter lower edge than the
                    # bucket bound when no observation precedes this bucket
                    # — without it, a distribution living entirely in the
                    # overflow bucket interpolates upward from the last
                    # bucket *bound*, a value that was never observed.
                    if cumulative == 0:
                        lower = max(lower, self._min)
                    fraction = (target - cumulative) / count
                    estimate = lower + (upper - lower) * fraction
                    # Never estimate outside the observed range.
                    return min(max(estimate, self._min), self._max)
                cumulative += count
                lower = upper
            return self._max  # pragma: no cover - arithmetic guard

    def collect(self) -> "dict":
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max,
                "bucket_counts": list(self._counts),
            }

    def summary(self) -> "dict":
        """The snapshot form: count, sum and the three canonical percentiles."""
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    One registry per session (:class:`~repro.engine.session.Engine` or
    :class:`~repro.engine.sharding.ShardedEngine`); the serving layer
    registers its gauges into the *engine's* registry so a single snapshot
    covers admission, evaluation and supersteps.  Registration is
    get-or-create for counters and histograms (same name → same instrument)
    and last-wins for gauges (a new ``QueryServer`` over the same engine
    re-points the serving gauges at its own stats).
    """

    GUARDED_BY = {"_metrics": "_lock"}

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, object]" = OrderedDict()
        self._lock = witnessed_lock("MetricsRegistry._lock")

    def counter(
        self, name: str, help: str = "", labelnames: "tuple[str, ...]" = ()
    ) -> Counter:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Counter):
                    raise ReproError(f"{name!r} is already a {existing.kind}")
                return existing
            metric = Counter(name, help, labelnames)
            self._metrics[name] = metric
            return metric

    def gauge(
        self,
        name: str,
        help: str,
        fn: "Callable[[], float | Mapping[str, float]]",
        labelnames: "tuple[str, ...]" = (),
    ) -> Gauge:
        metric = Gauge(name, help, fn, labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None and not isinstance(existing, Gauge):
                raise ReproError(f"{name!r} is already a {existing.kind}")
            self._metrics[name] = metric  # gauges: last registration wins
        return metric

    def histogram(
        self, name: str, help: str = "", buckets: "Sequence[float] | None" = None
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ReproError(f"{name!r} is already a {existing.kind}")
                return existing
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric

    def __len__(self) -> int:
        return len(self._metrics)  # repro: allow(LockDiscipline) dict len() is atomic under the GIL

    def __contains__(self, name: str) -> bool:
        return name in self._metrics  # repro: allow(LockDiscipline) dict membership is atomic under the GIL

    def _items(self) -> "list[tuple[str, object]]":
        with self._lock:
            return list(self._metrics.items())

    def snapshot(self) -> "dict":
        """A JSON-ready view of every metric, under stable key names.

        Counters and gauges map to numbers (labeled series to a
        ``{label_value: number}`` dict); histograms map to
        ``{count, sum, p50, p95, p99}``.  Key names are part of the
        documented surface (see README "Observability") — the CLI's
        ``--stats``, the ``!stats`` verb and the ``/metrics`` endpoint all
        derive from this one dict.
        """
        out: "dict[str, object]" = {}
        for name, metric in self._items():
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                series = metric.collect()
                if () in series and len(series) == 1:
                    out[name] = series[()]
                else:
                    out[name] = {labels[0]: value for labels, value in series.items()}
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: "list[str]" = []
        for name, metric in self._items():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Histogram):
                lines.append(f"# TYPE {name} histogram")
                data = metric.collect()
                cumulative = 0
                for bound, count in zip(metric.buckets, data["bucket_counts"]):
                    cumulative += count
                    lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
                lines.append(f"{name}_sum {_fmt(data['sum'])}")
                lines.append(f"{name}_count {data['count']}")
                continue
            lines.append(f"# TYPE {name} {metric.kind}")
            for labelvalues, value in sorted(metric.collect().items()):
                if labelvalues:
                    pairs = ",".join(
                        f'{label}="{value_}"'
                        for label, value_ in zip(metric.labelnames, labelvalues)
                    )
                    lines.append(f"{name}{{{pairs}}} {_fmt(value)}")
                else:
                    lines.append(f"{name} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Compact number formatting: integers stay integral, floats stay short."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return format(value, ".9g")


def render_text(snapshot: Mapping) -> "list[str]":
    """Render a registry snapshot as stable, sorted ``name value`` lines.

    This is the unified ``--stats`` surface: labeled series print as
    ``name{label="value"} n``, histograms expand to ``name_count`` /
    ``name_sum`` / ``name_p50`` / ``name_p95`` / ``name_p99``.
    """
    lines: "list[str]" = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, Mapping):
            if "count" in value and "p50" in value:  # histogram summary
                for stat in ("count", "sum", "p50", "p95", "p99"):
                    lines.append(f"{name}_{stat} {_fmt(value[stat])}")
            else:
                for label in sorted(value):
                    lines.append(f'{name}{{{label}}} {_fmt(value[label])}')
        else:
            lines.append(f"{name} {_fmt(value)}")
    return lines


# -- tracing -------------------------------------------------------------------
_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)

try:  # perf_counter resolved once; spans are created on hot-ish paths
    from time import perf_counter
except ImportError:  # pragma: no cover - stdlib always has it
    raise


class Trace:
    """One request's span tree, assembled as its spans end.

    Spans append themselves on creation (under a small lock — the superstep
    scheduler creates sibling spans from worker threads); the tree is
    bounded by ``max_spans``, beyond which spans are counted but dropped,
    so a pathological fixpoint cannot grow a trace without limit.
    """

    # ``spans`` is deliberately *not* guarded: workers append via ``_adopt``
    # (under the lock) while the tree is live, and readers only walk it after
    # the root span ended — the post-completion read is the documented idiom.
    GUARDED_BY = {"dropped": "_lock:mutate"}

    __slots__ = ("trace_id", "tracer", "spans", "dropped", "max_spans", "_lock")

    def __init__(self, tracer: "Tracer | None", max_spans: int = 512) -> None:
        self.trace_id = f"t{next(_TRACE_IDS)}"
        self.tracer = tracer
        self.spans: "list[Span]" = []
        self.dropped = 0
        self.max_spans = max_spans
        self._lock = witnessed_lock("Trace._lock")

    def _adopt(self, span: "Span") -> bool:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return False
            self.spans.append(span)
            return True

    @property
    def root(self) -> "Span":
        return self.spans[0]

    @property
    def duration(self) -> float:
        root = self.root
        return root.duration if root.duration is not None else 0.0

    def to_dict(self) -> dict:
        root = self.root
        return {
            "trace_id": self.trace_id,
            "name": root.name,
            "duration_s": self.duration,
            "dropped_spans": self.dropped,
            "spans": [span.to_dict() for span in self.spans],
        }

    def render(self) -> "list[str]":
        """An indented text tree of the trace, one line per span."""
        children: "dict[int | None, list[Span]]" = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)

        lines: "list[str]" = []

        def walk(span: "Span", depth: int) -> None:
            duration = span.duration if span.duration is not None else 0.0
            attrs = ""
            if span.attributes:
                inner = ", ".join(
                    f"{key}={value}" for key, value in sorted(span.attributes.items())
                )
                attrs = f"  {{{inner}}}"
            lines.append(f"{'  ' * depth}{span.name} {duration * 1000:.3f}ms{attrs}")
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        root = self.root
        lines.append(f"trace {self.trace_id} ({root.name}, {self.duration * 1000:.3f}ms)")
        walk(root, 1)
        if self.dropped:
            lines.append(f"  ... {self.dropped} spans dropped (cap {self.max_spans})")
        return lines


class Span:
    """One timed operation inside a trace.

    Use as a context manager (``with tele.span("compile") as span:``) for
    the common nested case, or hold it and call :meth:`end` explicitly when
    the operation's lifetime crosses threads or awaits (the serving layer's
    batch root span does both).  ``set(**attrs)`` attaches attributes at
    any point before :meth:`end`.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "attributes",
                 "start", "duration", "_token")

    def __init__(
        self,
        trace: Trace,
        name: str,
        parent_id: "int | None",
        attributes: "dict | None" = None,
        start: "float | None" = None,
    ) -> None:
        self.trace = trace
        self.span_id = next(_SPAN_IDS)
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes or {}
        self.start = perf_counter() if start is None else start
        self.duration: "float | None" = None
        self._token = None
        trace._adopt(self)

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def set(self, **attrs) -> "Span":
        self.attributes.update(attrs)
        return self

    def child(self, name: str, **attrs) -> "Span":
        """A new child span of this one (explicit parentage, any thread)."""
        return Span(self.trace, name, self.span_id, attrs or None)

    def event(self, name: str, start: float, duration: float, **attrs) -> "Span":
        """A pre-timed child span — for intervals measured elsewhere, like
        the admission wait between a bucket's creation and its flush."""
        span = Span(self.trace, name, self.span_id, attrs or None, start=start)
        span.duration = duration
        return span

    def end(self, **attrs) -> float:
        """Close the span; the root span's end records the whole trace."""
        if self.duration is None:
            self.duration = perf_counter() - self.start
            if attrs:
                self.attributes.update(attrs)
            if self.parent_id is None and self.trace.tracer is not None:
                self.trace.tracer.record(self.trace)
        return self.duration

    # -- context manager: activate in the current context ---------------------
    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.attributes.setdefault("error", repr(exc))
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self.end()

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace.trace_id}, "
            f"duration={self.duration})"
        )


class _NullSpan:
    """The shared do-nothing span: what every capture call gets when
    telemetry is disabled.  A singleton, so the disabled path allocates
    nothing; every method returns ``self`` or a constant."""

    __slots__ = ()

    trace_id = ""
    span_id = 0
    parent_id = None
    name = ""
    attributes: dict = {}
    start = 0.0
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def child(self, name: str, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, start: float, duration: float, **attrs) -> "_NullSpan":
        return self

    def end(self, **attrs) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()

# The active span of the current thread/task context.  Spans from *any*
# session's Telemetry nest under it — a shard engine's compile span attaches
# to the sharded evaluation trace that is current when it runs.
_CURRENT_SPAN: "ContextVar[Span | _NullSpan]" = ContextVar(
    "repro_current_span", default=NULL_SPAN
)


def current_span() -> "Span | _NullSpan":
    return _CURRENT_SPAN.get()


class _Under:
    """Context manager that activates an existing span without ending it."""

    __slots__ = ("span", "_token")

    def __init__(self, span: "Span | _NullSpan") -> None:
        self.span = span
        self._token = None

    def __enter__(self) -> "Span | _NullSpan":
        self._token = _CURRENT_SPAN.set(self.span)
        return self.span

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None


class Tracer:
    """Bounded trace storage: a ring buffer plus a slow-query log.

    The ring buffer (``capacity`` most recent traces) answers ``!trace
    <id>`` and ``engine --explain``; the slow log keeps the
    ``slow_capacity`` *worst* traces by root duration — the ``!slow N``
    surface — independent of recency, so one pathological request survives
    a flood of fast ones.
    """

    GUARDED_BY = {
        "_traces": "_lock",
        "_slow": "_lock",
        "recorded": "_lock:mutate",
    }

    def __init__(self, capacity: int = 128, slow_capacity: int = 32) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ReproError("tracer capacities must be positive")
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self._traces: "deque[Trace]" = deque(maxlen=capacity)
        self._slow: "list[Trace]" = []  # kept sorted, worst first
        self._lock = witnessed_lock("Tracer._lock")
        self.recorded = 0

    def record(self, trace: Trace) -> None:
        with self._lock:
            self.recorded += 1
            self._traces.append(trace)
            slow = self._slow
            duration = trace.duration
            if len(slow) < self.slow_capacity or duration > slow[-1].duration:
                slow.append(trace)
                slow.sort(key=lambda entry: entry.duration, reverse=True)
                del slow[self.slow_capacity:]

    def last(self) -> "Trace | None":
        with self._lock:
            return self._traces[-1] if self._traces else None

    def get(self, trace_id: str) -> "Trace | None":
        with self._lock:
            for trace in reversed(self._traces):
                if trace.trace_id == trace_id:
                    return trace
            for trace in self._slow:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def slowest(self, n: int) -> "list[Trace]":
        with self._lock:
            return list(self._slow[: max(0, n)])

    def traces(self) -> "list[Trace]":
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)  # repro: allow(LockDiscipline) deque len() is atomic under the GIL


class Telemetry:
    """One session's registry + tracer, with the span-capture helpers.

    Both session kinds hold one as ``self.metrics``; the serving layer
    reuses its engine's instance, so one snapshot — and one trace tree per
    request — covers the whole stack.  Every capture helper checks the
    module-level enabled flag first and hands back :data:`NULL_SPAN`
    without allocating when it is off.
    """

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry.gauge(
            "telemetry_enabled", "whether capture is on", lambda: 1 if _enabled else 0
        )
        self.registry.gauge(
            "telemetry_traces_recorded",
            "completed root traces recorded",
            lambda: self.tracer.recorded,
        )

    @property
    def enabled(self) -> bool:
        return _enabled

    def span(self, name: str, **attrs) -> "Span | _NullSpan":
        """A new span under the current context span (or a new root trace).

        Use as a context manager; entering activates it for nested calls on
        the same thread, exiting ends it (and records the trace when it was
        the root).
        """
        if not _enabled:
            return NULL_SPAN
        parent = _CURRENT_SPAN.get()
        if parent is NULL_SPAN:
            trace = Trace(self.tracer)
            return Span(trace, name, None, attrs or None)
        return Span(parent.trace, name, parent.span_id, attrs or None)

    def span_under(self, parent: "Span | _NullSpan", name: str, **attrs):
        """A new span under an *explicit* parent — the cross-thread form."""
        if not _enabled or parent is NULL_SPAN:
            return NULL_SPAN
        return Span(parent.trace, name, parent.span_id, attrs or None)

    def under(self, span: "Span | _NullSpan") -> _Under:
        """Activate ``span`` as the current span for a block, without ending
        it — how a pool thread joins the trace the event loop started."""
        return _Under(span if _enabled else NULL_SPAN)

    def snapshot(self) -> dict:
        return self.registry.snapshot()


# -- HTTP export ---------------------------------------------------------------
class TelemetryHTTPServer:
    """A stdlib HTTP thread serving ``/metrics`` and ``/healthz``.

    ``port=0`` binds an ephemeral port; read the real one off
    :attr:`address` after :meth:`start`.  The handler reads the telemetry
    registry on every request, so a long-lived scrape loop always sees live
    values; ``/healthz`` answers ``ok`` while the thread runs — liveness,
    not load.
    """

    def __init__(
        self, telemetry: Telemetry, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        registry = telemetry.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = registry.render_prometheus().encode("utf-8")
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    body = b"ok\n"
                    content_type = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown path (try /metrics or /healthz)")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:  # noqa: A002
                pass  # scrapes must not spam the serving process's stderr

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "tuple[str, int]":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- trace export helpers ------------------------------------------------------
def trace_to_json(trace: Trace) -> str:
    """One-line JSON of a trace — the ``!trace`` / ``!slow`` wire form."""
    return json.dumps(trace.to_dict(), separators=(",", ":"), default=str)


def slow_log_json(tracer: Tracer, n: int) -> str:
    """One-line JSON array of the ``n`` worst traces with span breakdowns."""
    return json.dumps(
        [trace.to_dict() for trace in tracer.slowest(n)],
        separators=(",", ":"),
        default=str,
    )
