"""Sharded compiled serving: one :class:`CompiledGraph` per site group.

The paper's Section 3 evaluates path queries over a *distributed* instance —
every object is a site that only knows its own outgoing links, and sites
exchange subquery messages until the whole query is answered.
:mod:`repro.distributed` reproduces that protocol message-for-message over
the slow baseline evaluator; this module is its compiled, batched analogue:

* a pluggable :class:`ShardMap` assigns every object (site) to one shard —
  stable hashing by oid (:class:`HashShardMap`, the default), an explicit
  assignment (:class:`ExplicitShardMap`), or one shard per site
  (:meth:`ShardMap.by_site`, the 1:1 image of the distributed site model);
* each shard compiles *its own nodes' descriptions* into a private
  :class:`CompiledGraph` (wrapped in a full :class:`Engine` session, so the
  per-shard query caches, staleness stamps and snapshots all come for free).
  Edge targets owned by other shards are interned locally as **ghost**
  nodes: reachable, never expanded;
* a query runs as **supersteps**: every shard drives the ordinary
  :func:`~repro.engine.executor.run_batch` executor to a local fixpoint,
  then the ``(state, node)`` facts that landed on ghost nodes are scattered
  to the owning shards — the compiled analogue of the paper's ``subquery``
  messages — and imported there as the next superstep's seed frontier.
  Rounds repeat until no shard produces a fact the owner has not absorbed.
  Re-imports are *semi-naive*: previously derived facts are pre-loaded into
  the executor as ``known`` masks, so a superstep only expands genuinely
  new information instead of re-flooding the shard;
* every shard graph is built against the **shared global label universe**
  (one live label list passed to all shard engines), because shard-local
  DFA lowering would prune states whose continuation labels only occur on
  other shards.

Answers are gathered from the accepting-state facts of each shard's *owned*
nodes; a fact derived at a ghost node always reaches its owner (it is either
exported, or the owner had already absorbed it), so nothing is lost.

Persistence plugs into :mod:`repro.engine.snapshot`: :meth:`ShardedEngine.save`
writes one snapshot file per shard plus a small JSON manifest (shard map
spec, shared label order, per-shard sub-instance fingerprints), and
:meth:`ShardedEngine.open` warm-starts each shard independently — a stale
shard falls back to a cold rebuild of *its* partition while warm shards load
from disk untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict, defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..analysis.annotations import acquires, guarded_by
from ..exceptions import ReproError
from ..graph.instance import Instance, Oid
from ..query.evaluation import EvaluationResult
from .compiled_query import query_key
from .csr import CompiledGraph
from ..optimize.cost import DegreeStats
from .executor import BACKENDS, available_backends, resolve_backend, run_batch
from .session import Engine, ServingSurface, _lower_batch_request
from .telemetry import MetricsRegistry, Telemetry, witnessed_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..constraints.constraint import ConstraintSet
    from ..optimize.cost import CostModel
    from .compiled_query import CompiledQuery
    from .serving import SuperstepScheduler

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT_VERSION = 1


def _oid_digest(oid: Oid) -> int:
    """A process-stable 64-bit digest of one oid (``repr``-based, like the
    instance content fingerprint, so shard assignment survives restarts)."""
    payload = repr(oid).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class ShardMap:
    """Assignment of every object (site) to one shard in ``0..num_shards-1``.

    Subclasses implement :meth:`shard_of` and :meth:`spec`; the spec is what
    the snapshot manifest records, and :meth:`from_spec` reconstructs maps
    whose spec is self-contained (hash maps).  Explicit maps record only a
    digest — reopening their snapshots requires the caller to re-supply the
    map, which is validated against the digest.
    """

    num_shards: int

    def shard_of(self, oid: Oid) -> int:
        raise NotImplementedError

    def spec(self) -> dict:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """A stable digest of the spec, for manifest validation."""
        blob = json.dumps(self.spec(), sort_keys=True).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    @staticmethod
    def from_spec(spec: Mapping) -> "ShardMap":
        """Rebuild a shard map from a manifest spec (hash maps only)."""
        kind = spec.get("kind")
        if kind == "hash":
            return HashShardMap(int(spec["num_shards"]))
        if kind == "explicit":
            raise ReproError(
                "this snapshot was sharded with an explicit site->shard "
                "assignment, which the manifest stores only as a digest; "
                "pass the same shard_map= to open it"
            )
        raise ReproError(f"unknown shard map kind {kind!r} in manifest")

    @staticmethod
    def by_site(instance: Instance) -> "ExplicitShardMap":
        """One shard per object: the 1:1 image of the paper's site model.

        Every object of ``instance`` becomes its own shard (sorted by
        ``repr`` for a deterministic numbering), so the superstep exchange
        carries exactly the cross-site frontier the distributed protocol
        would ship as subquery messages.
        """
        assignment = {
            oid: position
            for position, oid in enumerate(sorted(instance.objects, key=repr))
        }
        return ExplicitShardMap(assignment, num_shards=max(1, len(assignment)))


class HashShardMap(ShardMap):
    """Stable hash-by-oid placement: the default, reconstructible map."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ReproError("a sharded engine needs at least one shard")
        self.num_shards = num_shards

    def shard_of(self, oid: Oid) -> int:
        return _oid_digest(oid) % self.num_shards

    def spec(self) -> dict:
        return {"kind": "hash", "num_shards": self.num_shards}

    def __repr__(self) -> str:
        return f"HashShardMap(num_shards={self.num_shards})"


class ExplicitShardMap(ShardMap):
    """An explicit site→shard assignment (e.g. one shard per distributed site).

    Objects missing from the assignment — typically oids added after the map
    was fixed — fall back to stable hashing so every object always has an
    owner.  The manifest records only an order-insensitive digest of the
    assignment; reopening a snapshot sharded this way requires re-supplying
    the map.
    """

    def __init__(self, assignment: Mapping[Oid, int], num_shards: "int | None" = None) -> None:
        self._assignment = dict(assignment)
        inferred = max(self._assignment.values(), default=-1) + 1
        self.num_shards = inferred if num_shards is None else num_shards
        if self.num_shards < 1:
            raise ReproError("a sharded engine needs at least one shard")
        for oid, shard in self._assignment.items():
            if not 0 <= shard < self.num_shards:
                raise ReproError(
                    f"shard {shard} of oid {oid!r} is outside 0..{self.num_shards - 1}"
                )

    def shard_of(self, oid: Oid) -> int:
        shard = self._assignment.get(oid)
        if shard is None:
            return _oid_digest(oid) % self.num_shards
        return shard

    def spec(self) -> dict:
        digest = 0
        for oid, shard in self._assignment.items():
            digest ^= _oid_digest((repr(oid), shard))
        return {
            "kind": "explicit",
            "num_shards": self.num_shards,
            "assignment_digest": format(digest, "016x"),
            "assigned": len(self._assignment),
        }

    def __repr__(self) -> str:
        return (
            f"ExplicitShardMap({len(self._assignment)} oids, "
            f"num_shards={self.num_shards})"
        )


def partition_instance(instance: Instance, shard_map: ShardMap) -> list[Instance]:
    """Split ``instance`` into one sub-instance per shard.

    Shard ``i``'s sub-instance holds every object the map assigns to it plus
    the full *description* (outgoing edges) of those objects — edge targets
    owned elsewhere appear as objects too, exactly the ghost set the shard's
    compiled graph interns.  Sub-instances are what the per-shard
    :class:`Engine` sessions stamp and snapshot, and the partition is
    deterministic (content fingerprints are order-insensitive), so a
    re-partition of an unchanged instance revalidates every shard snapshot.
    """
    subs = [Instance() for _ in range(shard_map.num_shards)]
    for oid in instance.objects:
        subs[shard_map.shard_of(oid)].add_object(oid)
    for source, label, destination in instance.edges():
        subs[shard_map.shard_of(source)].add_edge(source, label, destination)
    return subs


def shard_graph(
    instance: Instance,
    shard_map: ShardMap,
    shard: int,
    *,
    labels: "Sequence[str] | None" = None,
) -> CompiledGraph:
    """Compile one shard's subgraph straight from the global instance.

    A convenience over ``CompiledGraph.from_instance(instance, nodes=owned)``
    for callers that want a standalone partition CSR without a session; the
    result is structurally identical to compiling the shard's sub-instance.
    """
    owned = [oid for oid in instance.objects if shard_map.shard_of(oid) == shard]
    return CompiledGraph.from_instance(instance, nodes=owned, labels=labels)


@dataclass
class SuperstepCounters:
    """One evaluation's superstep fixpoint, in isolation.

    The cumulative :class:`ShardedStats` counters keep growing across a
    session's lifetime; this per-evaluation view (``ShardedStats.last_run``)
    is what callers should read to understand a *single* scatter-gather
    fixpoint — e.g. how many rounds it took and how much frontier it shipped.
    """

    supersteps: int = 0
    local_runs: int = 0
    exchanged_facts: int = 0
    steal_events: int = 0

    def reset(self) -> None:
        self.supersteps = 0
        self.local_runs = 0
        self.exchanged_facts = 0
        self.steal_events = 0


@dataclass
class ShardedStats:
    """Counters accumulated across the lifetime of one sharded session.

    Two backend tallies exist because superstep re-seeding makes "a run"
    ambiguous: ``backend_runs`` counts every *local* executor run (a shard
    re-seeded across K supersteps of one evaluation counts K times — the
    honest cost measure), while ``backend_evaluations`` counts each *logical
    evaluation* once, which is the number comparable 1:1 with the monolithic
    :attr:`~repro.engine.session.EngineStats.backend_runs`.  Earlier
    versions funnelled every re-seeded run into the shard engines' own
    counters, silently inflating them relative to the monolithic engine;
    per-superstep accounting now lives here, and ``last_run`` holds the most
    recent evaluation's :class:`SuperstepCounters` in isolation.
    """

    single_evaluations: int = 0
    batch_evaluations: int = 0
    batched_sources: int = 0
    supersteps: int = 0
    local_runs: int = 0
    exchanged_facts: int = 0
    visited_pairs: int = 0
    visited_objects: int = 0
    rewrites_applied: int = 0
    steal_events: int = 0
    # max/mean per-step wall time of the most recent multi-step superstep:
    # 1.0 means perfectly balanced shards, >>1 means one shard held the
    # barrier while the others idled (the skew work-stealing exists to fix).
    superstep_skew_ratio: float = 1.0
    # Which executor served each local run (cumulative, one per run_batch).
    backend_runs: dict[str, int] = field(default_factory=dict)
    # One count per logical evaluation — the monolithic-comparable tally.
    backend_evaluations: dict[str, int] = field(default_factory=dict)
    # The most recent evaluation's superstep counters, reset per evaluation.
    last_run: SuperstepCounters = field(default_factory=SuperstepCounters)

    def record_local_run(self, backend: str) -> None:
        self.local_runs += 1
        self.backend_runs[backend] = self.backend_runs.get(backend, 0) + 1

    def record_evaluation(self, backend: str) -> None:
        self.backend_evaluations[backend] = (
            self.backend_evaluations.get(backend, 0) + 1
        )

    _GAUGES = (
        ("single_evaluations", "single-source evaluations"),
        ("batch_evaluations", "batched evaluations"),
        ("batched_sources", "sources answered across batched evaluations"),
        ("supersteps", "bulk-synchronous superstep rounds"),
        ("local_runs", "per-shard local executor runs"),
        ("exchanged_facts", "cross-shard frontier facts shipped at barriers"),
        ("visited_pairs", "(node, state) pairs visited across shards"),
        ("visited_objects", "objects visited across shards"),
        ("rewrites_applied", "queries improved by the constraint rewriter"),
        ("steal_events", "superstep chunk tasks claimed by a non-owner worker"),
    )

    def register(self, registry: MetricsRegistry, prefix: str = "sharded") -> None:
        """Expose every counter through ``registry`` as a callback gauge.

        Mirrors :meth:`EngineStats.register`; the ``last_run`` gauges read
        the most recently *published* evaluation (see :meth:`ShardedEngine.
        _evaluate` — the reference is swapped atomically, never mutated in
        place), so a scrape racing an evaluation sees a consistent triple.
        """
        for attr, help_text in self._GAUGES:
            registry.gauge(
                f"{prefix}_{attr}", help_text, lambda a=attr: getattr(self, a)
            )
        registry.gauge(
            f"{prefix}_backend_runs",
            "local executor runs per backend (superstep re-seeds count)",
            lambda: dict(self.backend_runs),
            labelnames=("backend",),
        )
        registry.gauge(
            f"{prefix}_backend_evaluations",
            "logical evaluations per backend (monolithic-comparable)",
            lambda: dict(self.backend_evaluations),
            labelnames=("backend",),
        )
        for attr in ("supersteps", "local_runs", "exchanged_facts", "steal_events"):
            registry.gauge(
                f"{prefix}_last_run_{attr}",
                f"{attr} of the most recent evaluation, in isolation",
                lambda a=attr: getattr(self.last_run, a),
            )
        registry.gauge(
            f"{prefix}_superstep_skew_ratio",
            "max/mean per-step wall time of the most recent multi-step superstep",
            lambda: self.superstep_skew_ratio,
        )

    def summary(self, engine: "ShardedEngine") -> str:
        backends = (
            ", ".join(
                f"{name}={self.backend_evaluations.get(name, 0)}"
                f"/{count} runs"
                for name, count in sorted(self.backend_runs.items())
            )
            or "none"
        )
        # One reference read: ``last_run`` is swapped atomically per
        # evaluation (never reset in place), so the triple below is always
        # one completed evaluation's, even with an evaluation mid-flight.
        last = self.last_run
        return (
            f"shards: {engine.num_shards} "
            f"({engine.warm_shards} warm-started, {engine.rebuilt_shards} rebuilt); "
            f"evaluations: {self.single_evaluations} single, "
            f"{self.batch_evaluations} batched ({self.batched_sources} sources); "
            f"supersteps: {self.supersteps} ({self.local_runs} local runs, "
            f"{self.exchanged_facts} cross-shard frontier exports, "
            f"{self.steal_events} chunk steals; last "
            f"evaluation {last.supersteps} supersteps / "
            f"{last.local_runs} runs); "
            f"backend evaluations/runs: {backends}; "
            f"visited pairs: {self.visited_pairs}"
        )


@dataclass
class _StealPool:
    """One superstep's chunked local fixpoints, shared across scheduler steps.

    ``queue`` holds the stealable chunk tasks
    (:class:`~repro.engine.serving.StealQueue`); ``shards`` maps each shard
    with unabsorbed seeds to ``(masks, chunk_runs, graph, version)`` — the
    shared packed tensor its chunks write disjoint word columns of, the list
    each finished chunk appends its ``touched`` matrix to (list appends are
    atomic under the GIL; chunks of one shard may finish on different
    workers), and the graph/version the merged frontier is stamped with.
    A shard absent from ``shards`` absorbed its whole import already.
    """

    queue: object
    shards: dict = field(default_factory=dict)


@dataclass
class _GlobalRun:
    """One scatter-gather fixpoint: frontiers per shard plus gathered answers."""

    bit_of: dict
    compiled: "list[CompiledQuery]"
    frontiers: list
    per_bit: "list[set]"
    visited_pairs: int = 0
    visited_objects: int = 0


class ShardedEngine(ServingSurface):
    """A sharded compiled-evaluation session with scatter-gather serving.

    Mirrors the :class:`Engine` surface — ``query`` / ``query_batch`` /
    ``query_all`` / ``add_edge`` / ``remove_edge`` / ``save`` / ``stats`` —
    but partitions the instance across ``num_shards`` compiled graphs and
    evaluates by superstep frontier exchange (module docstring).  Construct
    with :meth:`open` (an instance, or a snapshot directory written by
    :meth:`save`).

    With ``concurrency=N`` (N > 1) each superstep's per-shard local
    fixpoints — independent by construction: a shard's step touches only its
    own compiled graph and frontier, and cross-shard facts exchange at the
    barrier — run on a thread-pool
    :class:`~repro.engine.serving.SuperstepScheduler` instead of
    sequentially.  The numpy executor releases the GIL inside its
    ``reduceat`` hot loops, so shard steps genuinely overlap; the python
    backend still wins when steps interleave with I/O.

    Thread-safety mirrors :class:`Engine`: concurrent callers are safe —
    evaluations serialize on an internal lock (the supersteps *within* one
    evaluation are what parallelize) — and the serving layer's admission
    queue (:meth:`as_server`) batches concurrent requests in front of it.
    """

    # ``_subs``/``_shards`` are rebuilt references, atomically published
    # under ``_lock``; read paths (properties, gauges, ghost cache) take
    # lock-free point reads of whichever build they land on.  ``_rewrites``
    # is inherited from :class:`ServingSurface` under ``_rewrite_lock``.
    GUARDED_BY = {
        "_subs": "_lock:mutate",
        "_shards": "_lock:mutate",
        "_instance_version": "_lock",
    }

    def __init__(
        self,
        instance: Instance,
        *,
        shards: "int | None" = None,
        shard_map: "ShardMap | None" = None,
        constraints: "ConstraintSet | None" = None,
        cost_model: "CostModel | None" = None,
        cache_capacity: int = 128,
        backend: str = "auto",
        concurrency: "int | None" = None,
        steal_threshold: "int | None" = 2,
        _restored: "tuple[list[Instance], list[Engine], list[str]] | None" = None,
    ) -> None:
        self._map = self._resolve_map(shards, shard_map)
        self._instance = instance
        self.constraints = constraints
        self.cost_model = cost_model
        self.cache_capacity = cache_capacity
        if backend not in BACKENDS:
            resolve_backend(backend)  # raises with the canonical message
        self.backend = backend
        self.stats = ShardedStats()
        # One telemetry bundle for the whole sharded session.  Shard engines
        # carry their own (never-snapshotted) registries; their *spans* still
        # join this session's traces — span parentage follows the active
        # context, not the owning session — so a trace shows shard compiles
        # under the sharded evaluation that triggered them.
        self.metrics = Telemetry()
        registry = self.metrics.registry
        self.stats.register(registry)
        registry.gauge(
            "sharded_shards", "shard count", self._map.num_shards.__int__
        )
        registry.gauge(
            "sharded_warm_shards", "shards warm-started from snapshots",
            lambda: self.warm_shards,
        )
        registry.gauge(
            "sharded_rebuilt_shards", "shards built from scratch",
            lambda: self.rebuilt_shards,
        )
        self._hist_query = registry.histogram(
            "sharded_query_seconds", "end-to-end evaluation latency per call"
        )
        self._hist_superstep = registry.histogram(
            "sharded_superstep_seconds", "one bulk-synchronous superstep round"
        )
        self._hist_local = registry.histogram(
            "sharded_local_fixpoint_seconds", "one shard's local superstep"
        )
        self._hist_rewrite = registry.histogram(
            "sharded_rewrite_seconds", "cold constraint-rewrite search latency"
        )
        # Serializes evaluations and mutation against concurrent server
        # threads; per-shard superstep work happens on scheduler threads
        # *inside* an evaluation, while the caller's thread holds this lock.
        self._lock = witnessed_lock("ShardedEngine._lock", threading.RLock)
        # The rewrite memo gets its own short-lived lock so the serving
        # layer's admission path (admission_key, on the event loop) never
        # waits behind a whole scatter-gather evaluation holding _lock.
        self._rewrite_lock = witnessed_lock("ShardedEngine._rewrite_lock")
        if concurrency is not None and concurrency < 1:
            raise ReproError("concurrency must be a positive worker count")
        if steal_threshold is not None and steal_threshold < 1:
            raise ReproError(
                "steal_threshold must be a positive word count (or None "
                "to disable superstep work-stealing)"
            )
        # Minimum packed width, in 64-bit words, before a shard's local
        # fixpoint is split into stealable word-range chunks (None disables).
        # Chunking needs at least two words to split, so the effective floor
        # is max(2, steal_threshold).
        self._steal_threshold = steal_threshold
        self._scheduler: "SuperstepScheduler | None" = None
        if concurrency is not None and concurrency > 1:
            from .serving import SuperstepScheduler

            self._scheduler = SuperstepScheduler(concurrency)
            scheduler = self._scheduler
            registry.gauge(
                "sharded_scheduler_steps", "per-shard steps scheduled",
                lambda: scheduler.steps,
            )
            registry.gauge(
                "sharded_scheduler_barriers", "superstep barriers joined",
                lambda: scheduler.barriers,
            )
            registry.gauge(
                "sharded_scheduler_concurrent_steps",
                "peak simultaneously in-flight shard steps",
                lambda: scheduler.concurrent_steps,
            )
        self._labels: list[str] = []
        self._label_set: set[str] = set()
        # Constraint pre-rewrite happens ONCE here, not per shard: every
        # shard must compile the *same* expression, or the exchanged DFA
        # state ids would not line up.  Shard engines are therefore built
        # constraint-free; the memo mirrors Engine's (LRU-bounded).
        self._rewrites: "OrderedDict[str, object]" = OrderedDict()
        if _restored is None:
            self._build()
        else:
            subs, engines, labels = _restored
            # Adopt the exact list the shard engines were seeded with: it is
            # live and shared, so labels appended later reach their rebuilds.
            self._labels = labels
            self._label_set = set(labels)
            self._subs = subs
            self._shards = engines
            self._reset_ghost_cache()
            # Stale shards may have rebuilt with labels the warm shards (or
            # the manifest) have never seen; level the universes.
            self._sync_labels(instance.labels())
            self._instance_version = instance.version

    @staticmethod
    def _resolve_map(shards: "int | None", shard_map: "ShardMap | None") -> ShardMap:
        if shard_map is not None:
            if shards is not None and shards != shard_map.num_shards:
                raise ReproError(
                    f"shards={shards} contradicts the supplied shard map "
                    f"({shard_map.num_shards} shards)"
                )
            return shard_map
        if shards is None:
            raise ReproError("a sharded engine needs shards=N or an explicit shard_map=")
        return HashShardMap(shards)

    # -- lifecycle ------------------------------------------------------------
    @guarded_by("_lock")
    def _build(self) -> None:
        instance = self._instance
        self._sync_labels(instance.labels())
        self._subs = partition_instance(instance, self._map)
        self._shards = [
            Engine(
                sub,
                cache_capacity=self.cache_capacity,
                backend=self.backend,
                labels=self._labels,
            )
            for sub in self._subs
        ]
        self._reset_ghost_cache()
        self._instance_version = instance.version

    def _reset_ghost_cache(self) -> None:
        count = self._map.num_shards
        self._ghosts: list[set[int]] = [set() for _ in range(count)]
        self._ghost_lists: "list[list[int]]" = [[] for _ in range(count)]
        self._ghost_seen = [0] * count
        self._ghost_graphs: "list[CompiledGraph | None]" = [None] * count

    def _sync_labels(self, labels: Iterable[str]) -> bool:
        """Append any new labels to the shared order and to every shard graph.

        Sorted insertion keeps the order deterministic; existing ids never
        move (the shared list is append-only, like the interners it seeds).
        """
        fresh = sorted(set(labels) - self._label_set)
        if not fresh:
            return False
        self._labels.extend(fresh)
        self._label_set.update(fresh)
        for engine in getattr(self, "_shards", ()):
            for label in fresh:
                engine.graph.ensure_label(label)
        return True

    def _ghost_nodes(self, shard: int) -> set[int]:
        """Local node ids of ``shard`` owned by *other* shards, cached.

        Node ids are append-only, so the cache only scans newly interned
        oids; a replaced graph object (shard rebuild) resets the scan.
        """
        graph = self._shards[shard].graph
        if self._ghost_graphs[shard] is not graph:
            self._ghost_graphs[shard] = graph
            self._ghosts[shard] = set()
            self._ghost_lists[shard] = []
            self._ghost_seen[shard] = 0
        values = graph.nodes.backing_list()
        shard_of = self._map.shard_of
        for node in range(self._ghost_seen[shard], len(values)):
            if shard_of(values[node]) != shard:
                self._ghosts[shard].add(node)
                self._ghost_lists[shard].append(node)
        self._ghost_seen[shard] = len(values)
        return self._ghosts[shard]

    # -- introspection --------------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def num_shards(self) -> int:
        return self._map.num_shards

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def shard_engines(self) -> "tuple[Engine, ...]":
        return tuple(self._shards)

    @property
    def scheduler(self) -> "SuperstepScheduler | None":
        """The concurrent superstep scheduler, or ``None`` when sequential."""
        return self._scheduler

    @property
    def steal_threshold(self) -> "int | None":
        """Minimum packed width (64-bit words) before local fixpoints are
        split into stealable word-range chunks; ``None`` disables stealing."""
        return self._steal_threshold

    @steal_threshold.setter
    def steal_threshold(self, threshold: "int | None") -> None:
        if threshold is not None and threshold < 1:
            raise ReproError(
                "steal_threshold must be a positive word count (or None "
                "to disable superstep work-stealing)"
            )
        self._steal_threshold = threshold

    def close(self) -> None:
        """Release the superstep scheduler's worker threads (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()

    @property
    def warm_shards(self) -> int:
        return sum(1 for engine in self._shards if engine.stats.snapshot_restores)

    @property
    def rebuilt_shards(self) -> int:
        return sum(1 for engine in self._shards if engine.stats.graph_builds)

    def describe(self) -> str:
        return self.stats.summary(self)

    def __repr__(self) -> str:
        return (
            f"ShardedEngine({self._map!r}, objects={len(self._instance)}, "
            f"edges={self._instance.edge_count()})"
        )

    # -- mutation -------------------------------------------------------------
    def refresh(self) -> bool:
        """Re-partition if the global instance mutated behind our back.

        Mutations routed through :meth:`add_edge` / :meth:`remove_edge` stay
        incremental (the owning shard absorbs them via overflow/tombstones);
        out-of-band instance edits are coarse by design — the partition is a
        derived artifact, so the whole thing is rebuilt.
        """
        with self._lock:
            if self._instance.version == self._instance_version:
                return False
            self._build()
            return True

    @acquires("Engine._lock")
    def add_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Add one edge, routed to the shard that owns ``source``.

        The destination is registered with *its* owner too (objects must
        always have an owner for the gather step), and a genuinely new label
        is interned into every shard graph so the shared label universe —
        and with it cross-shard DFA state numbering — stays aligned.
        """
        with self._lock:
            self.refresh()
            instance = self._instance
            if instance.has_edge(source, label, destination):
                return
            instance.add_edge(source, label, destination)
            self._sync_labels((label,))
            owner = self._map.shard_of(source)
            self._shards[owner].add_edge(source, label, destination)
            for endpoint in (source, destination):
                home = self._map.shard_of(endpoint)
                if home != owner and endpoint not in self._subs[home]:
                    self._subs[home].add_object(endpoint)
            self._instance_version = instance.version

    @acquires("Engine._lock")
    def remove_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Remove one edge from the shard that owns ``source`` (tombstone)."""
        with self._lock:
            self.refresh()
            self._instance.remove_edge(source, label, destination)
            owner = self._map.shard_of(source)
            self._shards[owner].remove_edge(source, label, destination)
            self._instance_version = self._instance.version

    @acquires("Engine._lock")
    def compact_now(self) -> bool:
        """Compact every shard graph now (see ``Engine.compact_now``).

        Returns ``True`` when any shard's layout changed.  Each shard
        drains its own in-flight runs independently — there is no global
        barrier, matching how incremental edits land shard-locally.
        """
        with self._lock:
            self.refresh()
            compacted = [engine.compact_now() for engine in self._shards]
            return any(compacted)

    @property
    def auto_compact_ratio(self) -> "int | None":
        """The shards' shared auto-compaction divisor (see ``Engine``)."""
        return self._shards[0].auto_compact_ratio

    @auto_compact_ratio.setter
    @acquires("Engine._lock")
    def auto_compact_ratio(self, ratio: "int | None") -> None:
        with self._lock:
            for engine in self._shards:
                engine.auto_compact_ratio = ratio

    # -- evaluation -----------------------------------------------------------
    # _prepared comes from ServingSurface and runs exactly once for all
    # shards: the rewritten expression is what every shard compiles, so the
    # DFA state ids exchanged between shards always agree.
    @property
    def _rewrite_capacity(self) -> int:
        return self.cache_capacity

    @acquires("Engine._lock")
    def _compiled_everywhere(self, prepared) -> list:
        """One compiled table per shard, compiled (at most) once overall.

        DFA construction is graph-independent and every shard normally
        interns the same label universe in the same order, so shard 0's
        table is byte-for-byte what every other shard would compile; it is
        seeded into their caches (keeping per-shard snapshots warm) instead
        of re-running the subset construction per shard — with a
        ``by_site`` map that is one compile instead of one per *object*.
        A shard whose interning order diverged (possible after a
        stale-shard rebuild) compiles its own table.
        """
        first = self._shards[0]
        compiled_first = first.compiled(prepared)  # refreshes shard 0
        fingerprint = first.graph.labels_fingerprint()
        key = query_key(prepared)
        compiled = [compiled_first]
        for engine in self._shards[1:]:
            engine.refresh()
            if engine.graph.labels_fingerprint() == fingerprint:
                engine.compiler.seed(key, compiled_first, fingerprint)
                compiled.append(compiled_first)
            else:
                compiled.append(engine.compiled(prepared))
        return compiled

    def _local_fixpoint(
        self,
        shard: int,
        pending: "Mapping[tuple[int, int], int]",
        frontier,
        compiled: "CompiledQuery",
        num_bits: int,
        answer_sink=None,
    ):
        """One shard's local superstep: drive the executor to a fixpoint.

        Pure with respect to every *other* shard — the step touches only
        this shard's engine, compiled graph and frontier handle, which is
        what lets the scheduler run the steps of one superstep concurrently.
        Returns ``(frontier, exports, backend)`` where ``exports`` lists the
        ``(oid, state, mask)`` facts that grew onto ghost nodes this run
        (owner routing happens at the barrier, where all frontiers are
        stable), and ``backend`` is ``None`` when the imported frontier was
        fully absorbed already and no executor run was needed.
        """
        seeds = self._filter_seeds(pending, frontier)
        if not seeds:
            return frontier, (), None
        graph = self._shards[shard].graph
        run = run_batch(
            graph,
            compiled,
            (),
            seeds=seeds,
            known=frontier,
            num_bits=num_bits,
            answer_sink=answer_sink,
            backend=self.backend,
        )
        exports = self._fresh_exports(shard, graph, run.frontier)
        return run.frontier, exports, run.backend

    @staticmethod
    def _filter_seeds(pending: "Mapping[tuple[int, int], int]", frontier) -> dict:
        """Drop bits the shard absorbed since the export was computed (it
        derived the same fact itself later that round); a fully absorbed
        frontier costs no local run at all."""
        seeds: "dict[tuple[int, int], int]" = {}
        for (state, node), mask in pending.items():
            absorbed = frontier.mask_at(state, node) if frontier else 0
            new_bits = mask & ~absorbed
            if new_bits:
                seeds[(state, node)] = new_bits
        return seeds

    def _fresh_exports(
        self, shard: int, graph: CompiledGraph, frontier
    ) -> "list[tuple[Oid, int, int]]":
        """The ``(oid, state, mask)`` facts that grew onto ghost nodes."""
        self._ghost_nodes(shard)  # refresh the cache (this shard's only)
        ghost_list = self._ghost_lists[shard]
        if not ghost_list:
            return []
        oid_of = graph.nodes.backing_list()
        return [
            (oid_of[node], state, mask)
            for state, node, mask in frontier.items(
                fresh_only=True, restrict=ghost_list
            )
        ]

    def _build_steal_pool(
        self, active, pending, frontiers, compiled, num_bits: int, sink_factory
    ) -> "_StealPool | None":
        """Split this superstep's local fixpoints into stealable word chunks.

        The packed fixpoint is bitwise-parallel: every source bit's
        reachability closure is independent of every other's, so a word-
        aligned column slice ``masks[:, :, lo:hi]`` of a shard's tensor is a
        complete, self-contained sub-fixpoint.  Splitting pays off twice:

        * **balance** — chunks go into one :class:`StealQueue`, so a worker
          whose shard converged early steals columns from the slowest shard
          instead of idling at the barrier;
        * **early exit** — the monolithic kernel moves *all* ``W`` words per
          edge visit until the *last* bit converges, paying
          ``O(edges x W x R_max)``; per-word chunks each stop at their own
          round count, ``O(edges x sum(R_chunk))``, which is strictly less
          whenever convergence is skewed across sources.

        Returns ``None`` when chunking does not apply — stealing disabled,
        width under the threshold (or a single word: nothing to split), the
        numpy executor unavailable or not selected, or a shard carrying a
        foreign/width-drifted frontier handle — in which case the caller
        falls back to the monolithic per-shard path.
        """
        threshold = self._steal_threshold
        words = max(1, (num_bits + 63) >> 6)
        if threshold is None or words < max(2, threshold):
            return None
        if "numpy" not in available_backends():
            return None
        if resolve_backend(self.backend) != "numpy":
            return None
        from . import executor_np
        from .serving import StealQueue

        np = executor_np.np
        for shard in active:
            frontier = frontiers[shard]
            if frontier is not None and (
                not isinstance(frontier, executor_np.NpFrontier)
                or frontier.words != words
            ):
                return None
        pool = _StealPool(StealQueue())
        word_mask = (1 << 64) - 1
        for shard in active:
            seeds = self._filter_seeds(pending[shard], frontiers[shard])
            if not seeds:
                continue
            graph = self._shards[shard].graph
            frontier = frontiers[shard]
            if frontier is None:
                masks = np.zeros(
                    (compiled[shard].num_states, graph.num_nodes, words),
                    dtype=np.uint64,
                )
            else:
                masks = frontier.masks
            chunk_runs: list = []
            pool.shards[shard] = (masks, chunk_runs, graph, graph.version)
            sink = sink_factory(shard) if sink_factory is not None else None
            for word in range(words):
                lo_bit = word << 6
                chunk_seeds = {
                    key: bits
                    for key, mask in seeds.items()
                    if (bits := (mask >> lo_bit) & word_mask)
                }
                if not chunk_seeds:
                    continue
                pool.queue.put(
                    shard,
                    self._chunk_task(
                        executor_np,
                        graph,
                        compiled[shard],
                        masks,
                        word,
                        chunk_seeds,
                        sink,
                        chunk_runs,
                    ),
                )
        return pool

    @staticmethod
    def _chunk_task(
        executor_np, graph, query, masks, word: int, chunk_seeds, sink, chunk_runs
    ):
        """One stealable unit: the fixpoint of a single 64-bit word column.

        Chunks of one shard write disjoint word columns of the shared
        tensor, so any two chunks — same shard or not — run on different
        workers without synchronization.  Seeds arrive pre-shifted into the
        chunk's local bit space; streamed answer bits shift back before
        reaching the shard sink, and the chunk's ``touched`` matrix lands in
        ``chunk_runs`` for the barrier's OR-merge.
        """
        np = executor_np.np
        version = graph.version
        base = word << 6
        chunk_sink = None
        if sink is not None:

            def chunk_sink(bit, nodes):
                sink(bit + base, nodes)

        def task() -> None:
            view = masks[:, :, word : word + 1]
            known = executor_np.NpFrontier(
                view, np.zeros(view.shape[:2], dtype=bool), version
            )
            run = executor_np.run_batch(
                graph,
                query,
                (),
                seeds=chunk_seeds,
                known=known,
                answer_sink=chunk_sink,
            )
            chunk_runs.append(run.frontier.touched)

        return task

    def _finalize_steal_shard(self, pool: _StealPool, shard: int, previous):
        """Merge one shard's chunk runs into a superstep result triple.

        Runs at the barrier, after every chunk has completed: the per-chunk
        ``touched`` matrices OR into the merged frontier's fresh set (a pair
        is fresh iff *any* word column grew there — exactly the monolithic
        kernel's semantics), and ghost exports are computed off the merged
        handle so each fact ships its full cross-column mask once.
        """
        entry = pool.shards.get(shard)
        if entry is None:
            return previous, (), None
        from . import executor_np

        masks, chunk_runs, graph, version = entry
        touched = chunk_runs[0]
        for extra in chunk_runs[1:]:
            touched = touched | extra
        frontier = executor_np.NpFrontier(masks, touched, version)
        exports = self._fresh_exports(shard, graph, frontier)
        return frontier, exports, "numpy"

    def _evaluate(
        self, query, sources: "Sequence[Oid]", answer_sink=None
    ) -> _GlobalRun:
        """Run the scatter-gather superstep fixpoint for ``sources``.

        ``sources`` must be objects of the instance.  Each shard's state
        lives in a backend-native frontier (cumulative masks) that is handed
        back to :func:`run_batch` as ``known`` every superstep, so repeated
        rounds neither re-flood earlier work nor pay any conversion; the
        gathered per-bit answer sets come from the owned accepting facts.

        The loop is a classic bulk-synchronous superstep: the independent
        per-shard :meth:`_local_fixpoint` steps (scheduled concurrently when
        a :attr:`scheduler` is installed), then a barrier that routes every
        exported ghost fact to its owner as the next round's seed frontier.

        ``answer_sink(source_oid, answers)``, when given, streams *owned*
        accepting facts out of the supersteps as they land: each shard's
        executor reports newly accepting ``(node, bits)`` facts mid-round,
        ghost nodes are filtered (their owner streams them), and each
        ``(source, answer)`` pair is delivered at most once per evaluation
        (the executors never re-report facts a continued frontier already
        held).  The sink runs on scheduler worker threads — it must be
        cheap and thread-safe.
        """
        self.refresh()
        compiled = self._compiled_everywhere(self._prepared(query))
        # The per-evaluation view accumulates in a *local* object and is
        # published into ``stats.last_run`` in one reference assignment at
        # the end: a concurrent ``summary()``/gauge read never sees the
        # half-reset, half-accumulated state the old in-place ``reset()``
        # exposed mid-flight (it always reads the last finished evaluation).
        counters = SuperstepCounters()
        tele = self.metrics
        bit_of: dict = {}
        for oid in sources:
            if oid not in bit_of:
                bit_of[oid] = len(bit_of)
        count = self._map.num_shards
        frontiers: list = [None] * count
        pending: "list[dict[tuple[int, int], int]]" = [
            defaultdict(int) for _ in range(count)
        ]
        # DFA state numbering is graph-independent (states are sorted before
        # indexing, and the shared label universe rules out cross-shard
        # liveness differences), so shard 0's automaton speaks for all.
        initial = compiled[0].initial
        num_bits = len(bit_of)
        for oid, bit in bit_of.items():
            shard = self._map.shard_of(oid)
            node = self._shards[shard].graph.node_id(oid)
            pending[shard][(initial, node)] |= 1 << bit

        bit_to_oid = list(bit_of)  # insertion order: position == bit

        def make_shard_sink(shard: int):
            """Adapt the executor's (node, bits) facts to (source oid, answer)."""
            graph = self._shards[shard].graph
            ghosts = self._ghost_nodes(shard)
            oid_of = graph.nodes.backing_list()

            def sink(bit, nodes):
                # The executor hands a whole round's facts for one source
                # bit at a time; this runs inside the local fixpoint, so
                # the ghost filter plus node→oid mapping is the only
                # per-fact work left on the evaluation thread.
                answers = [
                    oid_of[node] for node in nodes if node not in ghosts
                ]
                if answers:
                    answer_sink(bit_to_oid[bit], answers)

            return sink

        evaluation_backend: "str | None" = None
        while any(pending):
            self.stats.supersteps += 1
            counters.supersteps += 1
            active = [shard for shard in range(count) if pending[shard]]
            # The superstep span parents the per-shard fixpoint spans, which
            # run on scheduler worker threads — the contextvar does not
            # follow them there, so parentage is explicit (span_under).
            superstep_span = tele.span(
                "sharded.superstep", round=counters.supersteps, shards=len(active)
            )
            # Chunked, work-stealing supersteps: when the packed width spans
            # several words and the numpy kernel serves, each shard's local
            # fixpoint splits into word-column chunks pooled in one steal
            # queue — populated *before* any step runs, so a worker going
            # idle immediately relieves the slowest shard.
            sink_factory = make_shard_sink if answer_sink is not None else None
            pool = (
                self._build_steal_pool(
                    active, pending, frontiers, compiled, num_bits, sink_factory
                )
                if self._scheduler is not None and len(active) > 1
                else None
            )
            durations: "list[float]" = []

            if pool is not None:
                queue = pool.queue

                def make_steal_step(shard: int):
                    def step():
                        local_span = tele.span_under(
                            superstep_span, "sharded.local_fixpoint", shard=shard
                        )
                        try:
                            own, stolen = queue.drain(shard)
                        finally:
                            local_span.end()
                        local_span.set(chunks=own, stolen=stolen, backend="numpy")
                        self._hist_local.observe(local_span.duration)
                        durations.append(local_span.duration)

                    return step

                self._scheduler.run([make_steal_step(shard) for shard in active])
                results = [
                    self._finalize_steal_shard(pool, shard, frontiers[shard])
                    for shard in active
                ]
                stolen_chunks = queue.steals
                if stolen_chunks:
                    self.stats.steal_events += stolen_chunks
                    counters.steal_events += stolen_chunks
            else:

                def make_step(shard: int):
                    def step():
                        local_span = tele.span_under(
                            superstep_span, "sharded.local_fixpoint", shard=shard
                        )
                        try:
                            frontier, exports, backend = self._local_fixpoint(
                                shard,
                                pending[shard],
                                frontiers[shard],
                                compiled[shard],
                                num_bits,
                                answer_sink=(
                                    sink_factory(shard)
                                    if sink_factory is not None
                                    else None
                                ),
                            )
                        finally:
                            local_span.end()
                        local_span.set(
                            exports=len(exports), backend=backend or "absorbed"
                        )
                        self._hist_local.observe(local_span.duration)
                        durations.append(local_span.duration)
                        return frontier, exports, backend

                    return step

                steps = [make_step(shard) for shard in active]
                if self._scheduler is not None and len(steps) > 1:
                    results = self._scheduler.run(steps)
                else:
                    results = [step() for step in steps]
            # Superstep balance: max/mean per-step wall time (1.0 = even).
            if len(durations) > 1:
                total = sum(durations)
                if total > 0.0:
                    self.stats.superstep_skew_ratio = (
                        max(durations) * len(durations) / total
                    )
            # Barrier, part 1: adopt every shard's new frontier before any
            # absorbed-bit check reads one.
            all_exports: "list[tuple[Oid, int, int]]" = []
            for shard, (frontier, exports, backend) in zip(active, results):
                frontiers[shard] = frontier
                if backend is not None:
                    self.stats.record_local_run(backend)
                    counters.local_runs += 1
                    evaluation_backend = backend
                all_exports.extend(exports)
            # Barrier, part 2: scatter — route each exported ghost fact to
            # its owner, shipping only bits the owner has not absorbed yet
            # (it may have derived the same fact itself this round).
            next_pending: "list[dict[tuple[int, int], int]]" = [
                defaultdict(int) for _ in range(count)
            ]
            for oid, state, mask in all_exports:
                home = self._map.shard_of(oid)
                home_node = self._shards[home].graph.node_id(oid)
                home_frontier = frontiers[home]
                absorbed = (
                    home_frontier.mask_at(state, home_node)
                    if home_frontier
                    else 0
                )
                new_bits = mask & ~absorbed
                if new_bits:
                    next_pending[home][(state, home_node)] |= new_bits
                    self.stats.exchanged_facts += 1
                    counters.exchanged_facts += 1
            pending = next_pending
            superstep_span.end(exchanged=counters.exchanged_facts)
            self._hist_superstep.observe(superstep_span.duration)
        self.stats.last_run = counters  # atomic publish (see above)
        if evaluation_backend is not None:
            self.stats.record_evaluation(evaluation_backend)

        # Gather: accepting-state facts of each shard's owned nodes.
        accepting = compiled[0].accepting
        per_bit: "list[set]" = [set() for _ in range(num_bits)]
        visited_pairs = 0
        visited_objects = 0
        for shard in range(count):
            frontier = frontiers[shard]
            if frontier is None:
                continue
            graph = self._shards[shard].graph
            ghosts = self._ghost_nodes(shard)
            oid_of = graph.nodes.backing_list()
            pairs, objects = frontier.counts(skip_nodes=ghosts)
            visited_pairs += pairs
            visited_objects += objects
            for bit, nodes in enumerate(
                frontier.per_bit_answers(accepting, num_bits, skip_nodes=ghosts)
            ):
                if nodes:
                    per_bit[bit].update({oid_of[node] for node in nodes})
        self.stats.visited_pairs += visited_pairs
        self.stats.visited_objects += visited_objects
        return _GlobalRun(
            bit_of=bit_of,
            compiled=compiled,
            frontiers=frontiers,
            per_bit=per_bit,
            visited_pairs=visited_pairs,
            visited_objects=visited_objects,
        )

    def degree_stats(self) -> DegreeStats:
        """Per-label live edge counts summed across shard CSRs.

        Each edge lives on the shard owning its source, so summing the
        per-shard :meth:`~repro.engine.csr.CompiledGraph.label_edge_counts`
        counts every edge exactly once; ``num_nodes`` comes from the global
        instance (shard graphs also intern ghost frontier nodes, which must
        not inflate the domain size the planner divides by).
        """
        with self._lock:
            self.refresh()
            counts: "dict[str, int]" = {}
            for engine in self._shards:
                for label, count in engine.graph.label_edge_counts().items():
                    counts[label] = counts.get(label, 0) + count
            return DegreeStats(
                num_nodes=len(self._instance.objects), label_counts=counts
            )

    def query_batch(
        self,
        query,
        sources: "Sequence[Oid] | Iterable[Oid] | None" = None,
    ) -> "dict[Oid, set[Oid]]":
        """Evaluate one query from many sources across all shards.

        Like :meth:`Engine.query_batch`, also accepts a scalar
        :class:`~repro.engine.request.QueryRequest` in place of the pair.
        """
        query, sources = _lower_batch_request(query, sources)
        with self.metrics.span("sharded.query", mode="batch") as query_span:
            results = self._query_batch(query, sources)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def query_batch_streaming(
        self,
        query,
        sources: "Sequence[Oid] | Iterable[Oid]",
        emit,
    ) -> "dict[Oid, set[Oid]]":
        """Batched evaluation that also streams answers as they land.

        The sharded twin of :meth:`Engine.query_batch_streaming`:
        ``emit(source, answers)`` receives each ``(source, answer)`` pair at
        most once, as the owning shard's local fixpoint derives it —
        mid-superstep, from scheduler worker threads — and the union of
        everything emitted equals the returned dict, which is exactly what
        :meth:`query_batch` returns.  ``emit`` must be cheap and
        thread-safe.
        """
        with self.metrics.span("sharded.query", mode="batch_streaming") as query_span:
            results = self._query_batch(query, sources, emit=emit)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def _query_batch(
        self,
        query,
        sources: "Sequence[Oid] | Iterable[Oid]",
        emit=None,
    ) -> "dict[Oid, set[Oid]]":
        with self._lock:
            source_list = list(sources)
            self.stats.batch_evaluations += 1
            self.stats.batched_sources += len(source_list)
            self.refresh()
            known = [oid for oid in source_list if oid in self._instance]
            run = self._evaluate(query, known, answer_sink=emit)
            results: "dict[Oid, set[Oid]]" = {}
            accepts_empty = run.compiled[0].accepts_empty_word()
            for oid in source_list:
                bit = run.bit_of.get(oid)
                if bit is not None:
                    results[oid] = run.per_bit[bit]
                else:
                    # Unknown sources have an empty description; they answer
                    # themselves exactly when the query accepts the empty word.
                    results[oid] = {oid} if accepts_empty else set()
                    if emit is not None and results[oid]:
                        emit(oid, (oid,))
            return results

    def query_batch_results(
        self,
        query,
        sources: "Sequence[Oid] | Iterable[Oid]",
    ) -> "dict[Oid, EvaluationResult]":
        """Batched evaluation that also reconstructs cross-shard witnesses.

        Mirrors :meth:`Engine.query_batch_results`: one scatter-gather
        fixpoint answers every source, then each source's answers get one
        witness label word apiece from the ``(state, oid)`` BFS stitched
        across shards — the same reconstruction single-source :meth:`query`
        uses, restricted per source to its own bit of the owned fact masks
        (computed once for the whole batch).  The traversal statistics are
        those of the whole batch, mirrored into every per-source result.
        """
        with self.metrics.span("sharded.query", mode="batch_results") as query_span:
            results = self._query_batch_results(query, sources)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def _query_batch_results(
        self,
        query,
        sources: "Sequence[Oid] | Iterable[Oid]",
    ) -> "dict[Oid, EvaluationResult]":
        with self._lock:
            source_list = list(sources)
            self.stats.batch_evaluations += 1
            self.stats.batched_sources += len(source_list)
            self.refresh()
            known = [oid for oid in source_list if oid in self._instance]
            run = self._evaluate(query, known)
            facts = self._fact_masks(run)
            accepts_empty = run.compiled[0].accepts_empty_word()
            results: "dict[Oid, EvaluationResult]" = {}
            for oid in source_list:
                bit = run.bit_of.get(oid)
                if bit is None:
                    result = EvaluationResult(visited_pairs=1, visited_objects=1)
                    if accepts_empty:
                        result.answers.add(oid)
                        result.witness_paths[oid] = ()
                    results[oid] = result
                    continue
                result = EvaluationResult(
                    answers=set(run.per_bit[bit]),
                    visited_pairs=run.visited_pairs,
                    visited_objects=run.visited_objects,
                )
                result.witness_paths.update(
                    self._witness_words(run, oid, bit, facts)
                )
                results[oid] = result
            return results

    def query_all(self, query) -> "dict[Oid, set[Oid]]":
        """All-pairs evaluation: the answer set of every object of the graph."""
        return self.query_batch(query, sorted(self._instance.objects, key=repr))

    def query(self, query, source: Oid) -> EvaluationResult:
        """Single-source evaluation with witnesses, as an ``EvaluationResult``."""
        with self.metrics.span("sharded.query", mode="single") as query_span:
            result = self._query_single(query, source)
            query_span.set(answers=len(result.answers))
        self._hist_query.observe(query_span.duration)
        return result

    def _query_single(self, query, source: Oid) -> EvaluationResult:
        with self._lock:
            self.stats.single_evaluations += 1
            self.refresh()
            if source not in self._instance:
                compiled = self._shards[0].compiled(self._prepared(query))
                result = EvaluationResult(visited_pairs=1, visited_objects=1)
                if compiled.accepts_empty_word():
                    result.answers.add(source)
                    result.witness_paths[source] = ()
                return result
            run = self._evaluate(query, [source])
            result = EvaluationResult(
                answers=set(run.per_bit[0]),
                visited_pairs=run.visited_pairs,
                visited_objects=run.visited_objects,
            )
            result.witness_paths.update(self._witness_words(run, source))
            return result

    def answer_set(self, query, source: Oid) -> "set[Oid]":
        return self.query(query, source).answers

    # admission / admission_key / as_server come from ServingSurface: the
    # session-central ``_prepared`` is what keys coalescing, so the key
    # matches what every shard compiles.

    def _fact_masks(self, run: _GlobalRun) -> "dict[tuple[int, Oid], int]":
        """Every owned ``(state, oid)`` fact of a run with its source bitmask.

        Computed once per run and shared across the per-source witness
        walks of a batch (each restricts to its own bit of the masks).
        """
        facts: "dict[tuple[int, Oid], int]" = {}
        for shard, frontier in enumerate(run.frontiers):
            if frontier is None:
                continue
            graph = self._shards[shard].graph
            ghosts = self._ghost_nodes(shard)
            oid_of = graph.nodes.backing_list()
            for state, node, mask in frontier.items():
                if node not in ghosts:
                    facts[(state, oid_of[node])] = mask
        return facts

    def _witness_words(
        self,
        run: _GlobalRun,
        source: Oid,
        bit: int = 0,
        facts: "dict[tuple[int, Oid], int] | None" = None,
    ) -> "dict[Oid, tuple[str, ...]]":
        """Rebuild one witness label word per answer of one source's bit.

        A BFS over ``(state, oid)`` pairs stitched across shards: adjacency
        comes from the owning shard's sub-instance (an owned node's full
        description lives there), transitions from that shard's compiled
        table, and expansion is restricted to the facts the fixpoint proved
        reachable for the source's bit — so the walk is bounded by work the
        supersteps already did, and the first accepting visit per target is
        a shortest witness.  ``facts`` lets a batched caller compute the
        owned fact masks once and share them across all its sources.
        """
        if facts is None:
            facts = self._fact_masks(run)
        flag = 1 << bit
        compiled0 = run.compiled[0]
        accepting = compiled0.accepting
        start = (compiled0.initial, source)
        parents: "dict[tuple[int, Oid], tuple[tuple[int, Oid], str] | None]" = {
            start: None
        }
        first_accept: "dict[Oid, tuple[int, Oid]]" = {}
        if accepting[compiled0.initial]:
            first_accept[source] = start
        queue: "deque[tuple[int, Oid]]" = deque([start])
        while queue:
            state, oid = queue.popleft()
            shard = self._map.shard_of(oid)
            table = run.compiled[shard].table
            label_id = self._shards[shard].graph.label_id
            for label, destination in self._subs[shard].out_edges(oid):
                lid = label_id(label)
                if lid is None:
                    continue
                next_state = table[state][lid]
                if next_state < 0:
                    continue
                key = (next_state, destination)
                if key in parents or not facts.get(key, 0) & flag:
                    continue
                parents[key] = ((state, oid), label)
                if accepting[next_state] and destination not in first_accept:
                    first_accept[destination] = key
                queue.append(key)
        words: "dict[Oid, tuple[str, ...]]" = {}
        for answer, key in first_accept.items():
            labels: list[str] = []
            while True:
                parent = parents[key]
                if parent is None:
                    break
                key, label = parent
                labels.append(label)
            labels.reverse()
            words[answer] = tuple(labels)
        return words

    # -- persistence ----------------------------------------------------------
    def save(self, directory: "str | os.PathLike", *, codec: str = "auto") -> None:
        """Persist one snapshot per shard plus a manifest into ``directory``.

        Each shard file is an ordinary engine snapshot of that shard's
        compiled graph and warm query cache; the manifest records the shard
        map spec, the shared label order, and per-shard sub-instance
        fingerprints so :meth:`open` can warm-start shards independently.
        """
        from .snapshot import resolve_codec

        with self._lock:
            self.refresh()
            resolved = resolve_codec(codec)
            os.makedirs(directory, exist_ok=True)
            shard_entries = []
            for shard, engine in enumerate(self._shards):
                filename = f"shard-{shard:04d}.snap"
                engine.save(os.path.join(directory, filename), codec=codec)
                sub = self._subs[shard]
                shard_entries.append(
                    {
                        "file": filename,
                        "fingerprint": sub.content_fingerprint(),
                        "objects": len(sub),
                        "edges": sub.edge_count(),
                    }
                )
            manifest = {
                "format_version": MANIFEST_FORMAT_VERSION,
                "codec": resolved,
                "shard_map": self._map.spec(),
                "shard_map_fingerprint": self._map.fingerprint(),
                "labels": list(self._labels),
                "instance_fingerprint": self._instance.content_fingerprint(),
                "shards": shard_entries,
            }
            manifest_path = os.path.join(directory, MANIFEST_NAME)
            staging = manifest_path + ".tmp"
            with open(staging, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)
                handle.write("\n")
            os.replace(staging, manifest_path)

    @classmethod
    def open(
        cls,
        source: "Instance | str | os.PathLike",
        *,
        instance: "Instance | None" = None,
        shards: "int | None" = None,
        shard_map: "ShardMap | None" = None,
        constraints: "ConstraintSet | None" = None,
        cost_model: "CostModel | None" = None,
        cache_capacity: int = 128,
        backend: str = "auto",
        concurrency: "int | None" = None,
        steal_threshold: "int | None" = 2,
    ) -> "ShardedEngine":
        """Return a ready-to-serve sharded session.

        ``source`` is either an :class:`Instance` — partitioned and compiled
        from scratch — or a snapshot *directory* written by :meth:`save`.
        When opening a directory, ``instance`` optionally supplies the live
        instance: it is re-partitioned with the manifest's shard map and each
        shard's stored stamp is validated against its sub-instance, so **only
        stale shards recompile** while warm shards load from disk.  Without
        ``instance``, the global instance is reconstructed by merging the
        shard snapshots.
        """
        if isinstance(source, (str, os.PathLike)):
            return cls._open_directory(
                source,
                instance=instance,
                shards=shards,
                shard_map=shard_map,
                constraints=constraints,
                cost_model=cost_model,
                cache_capacity=cache_capacity,
                backend=backend,
                concurrency=concurrency,
                steal_threshold=steal_threshold,
            )
        if instance is not None:
            raise ReproError(
                "instance= is only meaningful when opening a snapshot directory"
            )
        return cls(
            source,
            shards=shards,
            shard_map=shard_map,
            constraints=constraints,
            cost_model=cost_model,
            cache_capacity=cache_capacity,
            backend=backend,
            concurrency=concurrency,
            steal_threshold=steal_threshold,
        )

    @classmethod
    def _open_directory(
        cls,
        directory: "str | os.PathLike",
        *,
        instance: "Instance | None",
        shards: "int | None",
        shard_map: "ShardMap | None",
        constraints: "ConstraintSet | None",
        cost_model: "CostModel | None",
        cache_capacity: int,
        backend: str,
        concurrency: "int | None",
        steal_threshold: "int | None",
    ) -> "ShardedEngine":
        manifest_path = os.path.join(os.fspath(directory), MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise ReproError(
                f"{os.fspath(directory)!r} is not a sharded snapshot "
                f"(no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as error:
            raise ReproError(
                f"{manifest_path!r} is a corrupt sharded manifest: {error}"
            ) from error
        version = manifest.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ReproError(
                f"unsupported sharded manifest version {version} "
                f"(this build reads version {MANIFEST_FORMAT_VERSION})"
            )
        if shard_map is not None:
            if shard_map.fingerprint() != manifest.get("shard_map_fingerprint"):
                # A different partitioning makes every shard file meaningless;
                # rebuild from the live instance when we have one.
                if instance is None:
                    raise ReproError(
                        "the supplied shard map does not match the snapshot "
                        "manifest, and no instance= was given to rebuild from"
                    )
                return cls(
                    instance,
                    shard_map=shard_map,
                    constraints=constraints,
                    cost_model=cost_model,
                    cache_capacity=cache_capacity,
                    backend=backend,
                    concurrency=concurrency,
                    steal_threshold=steal_threshold,
                )
            resolved_map = shard_map
        else:
            resolved_map = ShardMap.from_spec(manifest.get("shard_map", {}))
        if shards is not None and shards != resolved_map.num_shards:
            raise ReproError(
                f"snapshot directory holds {resolved_map.num_shards} shards; "
                f"shards={shards} contradicts it (omit shards= to reuse the "
                f"manifest, or rebuild from an instance)"
            )
        labels = [str(label) for label in manifest.get("labels", [])]
        files = [entry["file"] for entry in manifest.get("shards", [])]
        if len(files) != resolved_map.num_shards:
            raise ReproError(
                f"manifest lists {len(files)} shard files for "
                f"{resolved_map.num_shards} shards"
            )
        # Shard engines are always constraint-free: the sharded session owns
        # the single pre-rewrite (see ``_prepared``).
        if instance is None:
            engines = [
                Engine.open(
                    os.path.join(os.fspath(directory), filename),
                    cache_capacity=cache_capacity,
                    backend=backend,
                    labels=labels,
                )
                for filename in files
            ]
            subs = [engine.instance for engine in engines]
            merged = Instance()
            for sub in subs:
                for oid in sub.objects:
                    merged.add_object(oid)
                for source, label, destination in sub.edges():
                    merged.add_edge(source, label, destination)
            live = merged
        else:
            subs = partition_instance(instance, resolved_map)
            engines = [
                Engine.open(
                    os.path.join(os.fspath(directory), filename),
                    instance=sub,
                    cache_capacity=cache_capacity,
                    backend=backend,
                    labels=labels,
                )
                for filename, sub in zip(files, subs)
            ]
            live = instance
        return cls(
            live,
            shard_map=resolved_map,
            constraints=constraints,
            cost_model=cost_model,
            cache_capacity=cache_capacity,
            backend=backend,
            concurrency=concurrency,
            steal_threshold=steal_threshold,
            _restored=(subs, engines, labels),
        )
