"""Versioned on-disk snapshots of a compiled engine session.

The compiled substrate — interned labels/oids, the label-partitioned CSR
(index/targets arrays, overflow adjacency, tombstone sets) and the warm
query cache's DFA transition tables — is expensive to build and cheap to
store, so a serving process should be able to write it once and warm-start
any number of later sessions from disk (``Engine.save(path)`` /
``Engine.open(path, instance=...)``).

Mirroring the dual-executor pattern, two interchangeable codecs write the
same logical payload:

* ``binary`` — a stdlib-only format: a magic header, struct-packed framing,
  zlib-compressed ``int64`` array sections.  Always available.
* ``npz`` — a numpy ``savez_compressed`` archive holding the same arrays,
  used by ``codec="auto"`` whenever the numpy executor is available (the
  ``REPRO_DISABLE_NUMPY`` gate applies here too, so the stdlib codec is
  exercised on the same CI arm as the pure-Python executor).

Either file is self-describing: loading sniffs the header, so a snapshot
written with one codec loads on any machine that can read it.

Staleness is handled with a *stamp*: the instance's version counters plus a
process-stable content fingerprint (the XOR of one ``repr``-based blake2b
digest per object and per edge, maintained incrementally by
:meth:`~repro.graph.instance.Instance.content_fingerprint` and immune to
hash randomization).  ``load_engine`` validates
the stamp against a supplied live instance and silently falls back to a
full rebuild on mismatch — a stale snapshot can cost time, never answers.
Even on fallback, cached transition tables are re-seeded when the rebuilt
graph's label fingerprint matches the stored one (tables depend only on the
label-id assignment, not on the edge set).

Object identifiers are arbitrary hashables; when they are not all strings
they are embedded with :mod:`pickle`, so snapshots — like pickle files —
should only be loaded from trusted sources.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import ReproError
from ..graph.instance import Instance
from .compiled_query import CompiledQuery
from .csr import CompiledGraph
from .executor import numpy_available

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Engine

MAGIC = b"RPQSNAP\x01"
FORMAT_VERSION = 1
CODECS = ("auto", "binary", "npz")


def resolve_codec(codec: str = "auto") -> str:
    """Map a requested codec name to the one that will actually write."""
    if codec not in CODECS:
        raise ReproError(f"unknown snapshot codec {codec!r}; expected one of {CODECS}")
    if codec == "auto":
        return "npz" if numpy_available() else "binary"
    if codec == "npz" and not numpy_available():
        raise ReproError(
            "npz snapshot codec requested but numpy is not available "
            "(not importable, or disabled via REPRO_DISABLE_NUMPY)"
        )
    return codec


@dataclass(frozen=True)
class SnapshotStamp:
    """Staleness stamp: version counters + content digest of the instance.

    The counters are informational (they are lifetime-specific); validation
    against a live instance uses the :meth:`Instance.content_fingerprint`
    digest, which is stable across processes.
    """

    instance_version: int
    edge_version: int
    fingerprint: str


@dataclass(frozen=True)
class CacheEntry:
    """One warm compile-cache entry: the query key and its lowered table."""

    key: str
    expression: str
    initial: int
    dfa_size: int
    label_count: int
    accepting: tuple[bool, ...]
    table: tuple[array, ...]


@dataclass
class SnapshotPayload:
    """The codec-independent logical content of a snapshot file."""

    format_version: int
    stamp: SnapshotStamp
    graph_parts: dict
    cache: list[CacheEntry]


def payload_from_engine(engine: "Engine") -> SnapshotPayload:
    """Collect everything a warm-start needs from a (refreshed) engine."""
    instance = engine.instance
    graph = engine.graph
    stamp = SnapshotStamp(
        instance_version=instance.version,
        edge_version=instance.edge_version,
        fingerprint=instance.content_fingerprint(),
    )
    cache = [
        CacheEntry(
            key=key,
            expression=compiled.expression,
            initial=compiled.initial,
            dfa_size=compiled.dfa_size,
            label_count=compiled.label_count,
            accepting=compiled.accepting,
            table=compiled.table,
        )
        for key, compiled in engine.compiler.warm_entries(graph)
    ]
    return SnapshotPayload(FORMAT_VERSION, stamp, graph.to_parts(), cache)


# -- binary codec (stdlib only) ------------------------------------------------
def _put_bytes(out: bytearray, blob: bytes) -> None:
    out += struct.pack("<Q", len(blob))
    out += blob


def _put_str(out: bytearray, text: str) -> None:
    _put_bytes(out, text.encode("utf-8"))


def _put_i64s(out: bytearray, values: array) -> None:
    _put_bytes(out, zlib.compress(values.tobytes()))


def _flatten_overflow(overflow: dict) -> tuple[array, array]:
    sources = array("q")
    destinations = array("q")
    for source, targets in overflow.items():
        sources.extend([source] * len(targets))
        destinations.extend(targets)
    return sources, destinations


def _encode_binary(payload: SnapshotPayload) -> bytes:
    parts = payload.graph_parts
    labels: list[str] = parts["labels"]
    nodes: list = parts["nodes"]
    out = bytearray(MAGIC)
    out += struct.pack("<I", payload.format_version)
    out += struct.pack(
        "<qq", payload.stamp.instance_version, payload.stamp.edge_version
    )
    _put_str(out, payload.stamp.fingerprint)
    out += struct.pack("<qqq", parts["version"], parts["csr_nodes"], len(labels))
    for label in labels:
        _put_str(out, label)
    if all(isinstance(oid, str) for oid in nodes):
        out += b"\x00"
        out += struct.pack("<Q", len(nodes))
        for oid in nodes:
            _put_str(out, oid)
    else:
        out += b"\x01"
        _put_bytes(out, zlib.compress(pickle.dumps(nodes, protocol=4)))
    for lid in range(len(labels)):
        _put_i64s(out, parts["indptr"][lid])
        _put_i64s(out, parts["targets"][lid])
        _put_i64s(out, array("q", sorted(parts["dead"][lid])))
        overflow_src, overflow_dst = _flatten_overflow(parts["overflow"][lid])
        _put_i64s(out, overflow_src)
        _put_i64s(out, overflow_dst)
    out += struct.pack("<I", len(payload.cache))
    for entry in payload.cache:
        _put_str(out, entry.key)
        _put_str(out, entry.expression)
        out += struct.pack(
            "<qqq", entry.initial, entry.dfa_size, entry.label_count
        )
        _put_bytes(out, bytes(bytearray(int(flag) for flag in entry.accepting)))
        flat = array("q")
        for row in entry.table:
            flat.extend(row)
        _put_i64s(out, flat)
    return bytes(out)


class _Reader:
    """Cursor over an encoded binary snapshot."""

    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    def unpack(self, fmt: str) -> tuple:
        values = struct.unpack_from(fmt, self.blob, self.pos)
        self.pos += struct.calcsize(fmt)
        return values

    def take(self, count: int) -> bytes:
        chunk = self.blob[self.pos : self.pos + count]
        if len(chunk) != count:
            raise ReproError("truncated snapshot file")
        self.pos += count
        return chunk

    def bytes_(self) -> bytes:
        (length,) = self.unpack("<Q")
        return self.take(length)

    def str_(self) -> str:
        return self.bytes_().decode("utf-8")

    def i64s(self) -> array:
        values = array("q")
        values.frombytes(zlib.decompress(self.bytes_()))
        return values


def _decode_binary(blob: bytes) -> SnapshotPayload:
    reader = _Reader(blob)
    if reader.take(len(MAGIC)) != MAGIC:  # pragma: no cover - sniffed upstream
        raise ReproError("not a repro engine snapshot (bad magic)")
    (format_version,) = reader.unpack("<I")
    if format_version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported snapshot format version {format_version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    instance_version, edge_version = reader.unpack("<qq")
    fingerprint = reader.str_()
    graph_version, csr_nodes, label_count = reader.unpack("<qqq")
    labels = [reader.str_() for _ in range(label_count)]
    (node_tag,) = reader.unpack("<B")
    if node_tag == 0:
        (node_count,) = reader.unpack("<Q")
        nodes: list = [reader.str_() for _ in range(node_count)]
    else:
        nodes = pickle.loads(zlib.decompress(reader.bytes_()))
    indptr: list[array] = []
    targets: list[array] = []
    dead: list[set[int]] = []
    overflow: list[dict[int, list[int]]] = []
    for _ in range(label_count):
        indptr.append(reader.i64s())
        targets.append(reader.i64s())
        dead.append(set(reader.i64s()))
        overflow_src = reader.i64s()
        overflow_dst = reader.i64s()
        adjacency: dict[int, list[int]] = {}
        for source, destination in zip(overflow_src, overflow_dst):
            adjacency.setdefault(source, []).append(destination)
        overflow.append(adjacency)
    (entry_count,) = reader.unpack("<I")
    cache: list[CacheEntry] = []
    for _ in range(entry_count):
        key = reader.str_()
        expression = reader.str_()
        initial, dfa_size, entry_labels = reader.unpack("<qqq")
        accepting = tuple(bool(flag) for flag in reader.bytes_())
        flat = reader.i64s()
        table = tuple(
            flat[row * entry_labels : (row + 1) * entry_labels]
            for row in range(len(accepting))
        )
        cache.append(
            CacheEntry(key, expression, initial, dfa_size, entry_labels, accepting, table)
        )
    stamp = SnapshotStamp(instance_version, edge_version, fingerprint)
    graph_parts = {
        "nodes": nodes,
        "labels": labels,
        "csr_nodes": csr_nodes,
        "indptr": indptr,
        "targets": targets,
        "overflow": overflow,
        "dead": dead,
        "version": graph_version,
    }
    return SnapshotPayload(format_version, stamp, graph_parts, cache)


# -- npz codec (numpy fast path) -----------------------------------------------
# All per-label sections are concatenated into a handful of large arrays with
# explicit offset vectors: a .npz member costs a zip entry + header + crc per
# access, so dozens of tiny arrays would make loading slower than the stdlib
# codec instead of faster.


def _encode_npz(payload: SnapshotPayload, path: "str | os.PathLike") -> None:
    import numpy as np

    def concat_with_offsets(chunks: "list[array]") -> "tuple[np.ndarray, np.ndarray]":
        offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum([len(chunk) for chunk in chunks], out=offsets[1:])
        if chunks:
            data = np.concatenate(
                [np.asarray(chunk, dtype=np.int64) for chunk in chunks]
            )
        else:
            data = np.empty(0, dtype=np.int64)
        return data, offsets

    parts = payload.graph_parts
    labels: list[str] = parts["labels"]
    nodes: list = parts["nodes"]
    label_count = len(labels)
    meta = {
        "format_version": payload.format_version,
        "stamp": {
            "instance_version": payload.stamp.instance_version,
            "edge_version": payload.stamp.edge_version,
            "fingerprint": payload.stamp.fingerprint,
        },
        "graph": {
            "version": parts["version"],
            "csr_nodes": parts["csr_nodes"],
            "labels": labels,
        },
        "cache": [
            {
                "key": entry.key,
                "expression": entry.expression,
                "initial": entry.initial,
                "dfa_size": entry.dfa_size,
                "label_count": entry.label_count,
            }
            for entry in payload.cache
        ],
        # numpy '<U' arrays silently drop *trailing* NUL characters on read,
        # so such oids must take the pickle path to round-trip losslessly.
        "nodes_encoding": (
            "str"
            if all(
                isinstance(oid, str) and not oid.endswith("\x00") for oid in nodes
            )
            else "pickle"
        ),
    }
    arrays: dict = {
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    }
    if meta["nodes_encoding"] == "str":
        arrays["nodes"] = np.array(nodes, dtype=np.str_)
    else:
        # A uint8 buffer, NOT an object array: np.load never needs
        # allow_pickle=True — the pickling is explicit and ours.
        arrays["nodes"] = np.frombuffer(
            pickle.dumps(nodes, protocol=4), dtype=np.uint8
        )
    overflow_pairs = [
        _flatten_overflow(parts["overflow"][lid]) for lid in range(label_count)
    ]
    # One flat (data, offsets) pair for all five graph sections: chunk
    # ``section * label_count + lid`` holds section ``section`` of label
    # ``lid``, in the order below.  Likewise one pair for the cache (tables
    # first, then accepting vectors).
    graph_chunks: list[array] = (
        list(parts["indptr"])
        + list(parts["targets"])
        + [array("q", sorted(parts["dead"][lid])) for lid in range(label_count)]
        + [pair[0] for pair in overflow_pairs]
        + [pair[1] for pair in overflow_pairs]
    )
    arrays["graph_data"], arrays["graph_offsets"] = concat_with_offsets(graph_chunks)
    cache_chunks = [
        array("q", (value for row in entry.table for value in row))
        for entry in payload.cache
    ] + [array("q", (int(flag) for flag in entry.accepting)) for entry in payload.cache]
    arrays["cache_data"], arrays["cache_offsets"] = concat_with_offsets(cache_chunks)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def _decode_npz(path: "str | os.PathLike") -> SnapshotPayload:
    import numpy as np

    def split(data: "np.ndarray", offsets: "np.ndarray") -> "list[array]":
        blob = np.ascontiguousarray(data, dtype=np.int64).tobytes()
        chunks: list[array] = []
        for position in range(len(offsets) - 1):
            chunk = array("q")
            chunk.frombytes(blob[8 * int(offsets[position]) : 8 * int(offsets[position + 1])])
            chunks.append(chunk)
        return chunks

    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(data["meta_json"].tobytes().decode("utf-8"))
        format_version = meta["format_version"]
        if format_version != FORMAT_VERSION:
            raise ReproError(
                f"unsupported snapshot format version {format_version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        labels: list[str] = list(meta["graph"]["labels"])
        if meta["nodes_encoding"] == "str":
            nodes: list = data["nodes"].tolist()  # C-speed '<U*' -> list[str]
        else:
            nodes = pickle.loads(data["nodes"].tobytes())
        label_count = len(labels)
        graph_chunks = split(data["graph_data"], data["graph_offsets"])
        cache_chunks = split(data["cache_data"], data["cache_offsets"])
    section = {
        name: graph_chunks[index * label_count : (index + 1) * label_count]
        for index, name in enumerate(
            ("indptr", "targets", "dead", "overflow_src", "overflow_dst")
        )
    }
    dead = [set(chunk) for chunk in section["dead"]]
    overflow: list[dict[int, list[int]]] = []
    for overflow_src, overflow_dst in zip(
        section["overflow_src"], section["overflow_dst"]
    ):
        adjacency: dict[int, list[int]] = {}
        for source, destination in zip(overflow_src, overflow_dst):
            adjacency.setdefault(source, []).append(destination)
        overflow.append(adjacency)
    entry_count = len(meta["cache"])
    tables = cache_chunks[:entry_count]
    accepts = cache_chunks[entry_count:]
    cache: list[CacheEntry] = []
    for entry_meta, flat, accept in zip(meta["cache"], tables, accepts):
        accepting = tuple(bool(flag) for flag in accept)
        width = entry_meta["label_count"]
        table = tuple(
            flat[row * width : (row + 1) * width] for row in range(len(accepting))
        )
        cache.append(
            CacheEntry(
                key=entry_meta["key"],
                expression=entry_meta["expression"],
                initial=entry_meta["initial"],
                dfa_size=entry_meta["dfa_size"],
                label_count=width,
                accepting=accepting,
                table=table,
            )
        )
    stamp = SnapshotStamp(
        instance_version=meta["stamp"]["instance_version"],
        edge_version=meta["stamp"]["edge_version"],
        fingerprint=meta["stamp"]["fingerprint"],
    )
    graph_parts = {
        "nodes": nodes,
        "labels": labels,
        "csr_nodes": meta["graph"]["csr_nodes"],
        "indptr": section["indptr"],
        "targets": section["targets"],
        "overflow": overflow,
        "dead": dead,
        "version": meta["graph"]["version"],
    }
    return SnapshotPayload(format_version, stamp, graph_parts, cache)


# -- top-level save / load -----------------------------------------------------
def save_engine(engine: "Engine", path: "str | os.PathLike", *, codec: str = "auto") -> None:
    """Write ``engine``'s compiled graph + warm query cache to ``path``.

    Callers normally go through :meth:`Engine.save`, which refreshes the
    engine first so the stamp matches the live instance.
    """
    payload = payload_from_engine(engine)
    if resolve_codec(codec) == "npz":
        _encode_npz(payload, path)
    else:
        with open(path, "wb") as handle:
            handle.write(_encode_binary(payload))


def load_payload(path: "str | os.PathLike") -> SnapshotPayload:
    """Read a snapshot file, sniffing which codec wrote it.

    Raises :class:`~repro.exceptions.ReproError` for anything that is not a
    loadable snapshot — wrong magic, unsupported version, or a truncated /
    corrupt file (the underlying ``struct``/``zlib``/zip errors are wrapped
    so CLI callers get a clean diagnostic instead of a traceback).
    """
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    try:
        if head == MAGIC:
            with open(path, "rb") as handle:
                return _decode_binary(handle.read())
        if head[:2] == b"PK":  # npz archives are zip files
            if not numpy_available():
                raise ReproError(
                    "this snapshot was written with the npz codec, which needs "
                    "numpy to read; re-save it with codec='binary' on a numpy "
                    "machine (or unset REPRO_DISABLE_NUMPY)"
                )
            return _decode_npz(path)
    except ReproError:
        raise
    except Exception as error:
        raise ReproError(
            f"{os.fspath(path)!r} is a truncated or corrupt snapshot: {error}"
        ) from error
    raise ReproError(f"{os.fspath(path)!r} is not a repro engine snapshot")


def instance_from_graph(graph: CompiledGraph) -> Instance:
    """Materialize a fresh :class:`Instance` equal to the compiled graph."""
    instance = Instance()
    for oid in graph.nodes.backing_list():
        instance.add_object(oid)
    oid_of = graph.nodes.value_of
    label_of = graph.labels.value_of
    for sid, lid, did in sorted(graph.iter_edges()):
        instance.add_edge(oid_of(sid), label_of(lid), oid_of(did))
    return instance


def load_engine(
    path: "str | os.PathLike",
    *,
    instance: "Instance | None" = None,
    constraints=None,
    cost_model=None,
    cache_capacity: int = 128,
    backend: str = "auto",
    labels=None,
) -> "Engine":
    """Warm-start an :class:`Engine` from a snapshot written by ``save``.

    With ``instance``, the stored content fingerprint is validated against
    it; a mismatch falls back to an ordinary cold build from the supplied
    instance (still re-seeding any cached tables the rebuilt label order
    can serve).  Without ``instance``, one is reconstructed from the
    snapshot, so a snapshot alone is a complete, servable artifact.
    ``labels`` is the label-order seed for any (re)build — the sharded
    engine passes its shared global label list here so that even a
    stale-shard fallback compiles against the full label universe.
    """
    from .session import Engine

    payload = load_payload(path)
    graph = CompiledGraph.from_parts(**payload.graph_parts)
    if instance is None:
        instance = instance_from_graph(graph)
        matches = True
    else:
        matches = instance.content_fingerprint() == payload.stamp.fingerprint
    engine = Engine(
        instance,
        constraints=constraints,
        cost_model=cost_model,
        cache_capacity=cache_capacity,
        backend=backend,
        labels=labels,
        _graph=graph if matches else None,
    )
    fingerprint = engine.graph.labels_fingerprint()
    if matches or fingerprint == tuple(payload.graph_parts["labels"]):
        for entry in payload.cache:
            compiled = CompiledQuery.from_table(
                expression=entry.expression,
                initial=entry.initial,
                accepting=entry.accepting,
                table=entry.table,
                label_count=entry.label_count,
                dfa_size=entry.dfa_size,
            )
            engine.compiler.seed(entry.key, compiled, fingerprint)
    return engine
