"""The engine façade: one compiled graph, one query cache, many evaluations.

``Engine.open(instance)`` compiles the instance once into the label-indexed
CSR form and then serves any number of query evaluations against it —
single-source, multi-source batched, or all-pairs — compiling each distinct
query at most once (LRU).  The façade also owns the two cross-cutting
concerns that individual executors should not:

* **staleness** — the engine snapshots the instance's version counters and
  transparently rebuilds the compiled graph when the instance's *edge set*
  has been mutated behind its back; object-only growth (``add_object`` of
  isolated nodes) just grows the node interner in place, and edges added or
  removed *through* the engine (:meth:`Engine.add_edge` /
  :meth:`Engine.remove_edge`) take the cheap incremental paths (overflow
  adjacency / tombstones) instead;
* **persistence** — :meth:`Engine.save` writes the whole compiled substrate
  (graph + warm query cache + staleness stamp) to disk, and
  ``Engine.open(path, instance=...)`` warm-starts a new session from it,
  falling back to a fresh compile when the stamp does not match (see
  :mod:`repro.engine.snapshot`);
* **backend selection** — every evaluation is dispatched through
  :mod:`repro.engine.executor` with the session's ``backend`` setting
  (``auto``/``python``/``numpy``); which executor actually served each run
  is tallied in :attr:`EngineStats.backend_runs`;
* **constraint pre-rewrite** — when opened with a
  :class:`~repro.constraints.constraint.ConstraintSet`, each query is first
  handed to :func:`repro.optimize.rewriter.rewrite_query` and the provably
  equivalent cheapest form is what gets compiled, so the Section 3.2
  optimization composes with the compiled execution path.

Results mirror :class:`repro.query.evaluation.EvaluationResult`, including
witness paths for single-source calls, so the engine is a drop-in backend
for existing callers (see the delegation hook in ``query.evaluation`` and the
``backend`` parameter of ``optimize.planner.plan_and_evaluate``).
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..exceptions import ReproError
from ..graph.instance import Instance, Oid
from ..optimize.cost import DegreeStats
from ..optimize.planner import choose_batch_strategy
from ..query.evaluation import EvaluationResult
from ..query.path_query import RegularPathQuery
from ..regex import Regex
from .compiled_query import CompiledQuery, QueryCompiler, query_key
from .conjunctive import (
    Atom,
    ConjunctiveQuery,
    ConjunctiveResult,
    JoinPlan,
    PlanExecution,
    is_crpq_text,
    parse_crpq,
    plan_join,
)
from .csr import CompiledGraph
from .request import CRPQRequest, QueryRequest, normalize
from .executor import BACKENDS, resolve_backend, run_all_pairs, run_batch, run_single
from . import telemetry
from .telemetry import MetricsRegistry, Telemetry, witnessed_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..constraints.constraint import ConstraintSet
    from ..optimize.cost import CostModel
    from .serving import QueryServer

_SHARED_ENGINE_ATTR = "_repro_shared_engine"


def _strategy_expression(prepared):
    """The raw path expression of a prepared query (for the shape check)."""
    return getattr(prepared, "expression", prepared)


def _lower_batch_request(query, sources):
    """Lower ``query_batch`` arguments: structured request or classic pair."""
    if isinstance(query, (QueryRequest, CRPQRequest)):
        if sources is not None:
            raise ReproError(
                "pass sources inside the QueryRequest, not alongside it"
            )
        request = normalize(query)
        if request.is_conjunctive:
            raise ReproError(
                "conjunctive requests are answered by query_conjunctive()"
            )
        return request.query, request.sources
    if sources is None:
        raise TypeError("query_batch() missing sources (or pass a QueryRequest)")
    return query, sources


class _ReadWriteLock:
    """A small readers-writer lock for the query/mutation exclusion.

    Executor runs are pure reads of the compiled graph and may overlap
    freely; the *in-place* mutations (``add_edge``/``remove_edge`` touching
    the CSR overflow, tombstones and interners of the live graph object)
    must run alone.  Writers block new readers while waiting (no writer
    starvation under a busy server); readers never block each other.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting", "_name")

    def __init__(self, name: "str | None" = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        # Stable node name for the REPRO_LOCK_WITNESS recorder; read/write
        # tokens report as one logical lock in the acquisition-order graph.
        self._name = name

    def _note_acquire(self) -> None:
        if self._name is not None:
            witness = telemetry.lock_witness()
            if witness is not None:
                witness.note_acquire(self._name)

    def _note_release(self) -> None:
        if self._name is not None:
            witness = telemetry.lock_witness()
            if witness is not None:
                witness.note_release(self._name)

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._note_acquire()

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        self._note_release()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        self._note_acquire()

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()
        self._note_release()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class EngineStats:
    """Counters accumulated across the lifetime of one engine session."""

    graph_builds: int = 0
    snapshot_restores: int = 0
    interner_growths: int = 0
    incremental_edges: int = 0
    incremental_removals: int = 0
    single_evaluations: int = 0
    batch_evaluations: int = 0
    batched_sources: int = 0
    visited_pairs: int = 0
    rewrites_applied: int = 0
    # Which executor actually served each run, e.g. {"numpy": 12, "python": 1}.
    backend_runs: dict[str, int] = field(default_factory=dict)

    def record_backend(self, backend: str) -> None:
        self.backend_runs[backend] = self.backend_runs.get(backend, 0) + 1

    _GAUGES = (
        ("graph_builds", "full compiled-graph builds"),
        ("snapshot_restores", "sessions warm-started from a snapshot"),
        ("interner_growths", "node-interner growths without rebuild"),
        ("incremental_edges", "edges absorbed via the CSR overflow path"),
        ("incremental_removals", "edges removed via the tombstone path"),
        ("single_evaluations", "single-source evaluations"),
        ("batch_evaluations", "batched evaluations"),
        ("batched_sources", "sources answered across batched evaluations"),
        ("visited_pairs", "(node, state) pairs visited by executor runs"),
        ("rewrites_applied", "queries improved by the constraint rewriter"),
    )

    def register(self, registry: MetricsRegistry, prefix: str = "engine") -> None:
        """Expose every counter through ``registry`` as a callback gauge.

        The callbacks close over this stats object (never over the owning
        engine — gauge registration must not extend the engine's lifetime),
        so snapshots always read the live values without a second write
        path.  Metric names (``engine_graph_builds``, ...) are part of the
        documented surface; see README "Observability".
        """
        for attr, help_text in self._GAUGES:
            registry.gauge(
                f"{prefix}_{attr}", help_text, lambda a=attr: getattr(self, a)
            )
        registry.gauge(
            f"{prefix}_backend_runs",
            "evaluations served per executor backend",
            lambda: dict(self.backend_runs),
            labelnames=("backend",),
        )

    def summary(self, engine: "Engine") -> str:
        compiler = engine.compiler
        backends = (
            ", ".join(
                f"{name}={count}" for name, count in sorted(self.backend_runs.items())
            )
            or "none"
        )
        restored = (
            f", {self.snapshot_restores} snapshot warm-start"
            if self.snapshot_restores
            else ""
        )
        return (
            f"graph builds: {self.graph_builds}{restored} "
            f"(+{self.incremental_edges} incremental edges, "
            f"-{self.incremental_removals} incremental removals); "
            f"compiles: {compiler.misses}, cache hits: {compiler.hits}; "
            f"evaluations: {self.single_evaluations} single, "
            f"{self.batch_evaluations} batched "
            f"({self.batched_sources} sources); "
            f"visited pairs: {self.visited_pairs}; "
            f"rewrites applied: {self.rewrites_applied}; "
            f"backend runs: {backends}"
        )


class ServingSurface:
    """Admission + serving-handle surface shared by both session kinds.

    Mixed into :class:`Engine` and
    :class:`repro.engine.sharding.ShardedEngine`, so the serving layer's
    coalescing semantics cannot drift between them; the only host
    host requirements are the constraint/rewrite attributes
    (``constraints``, ``cost_model``, ``_rewrites``, ``_rewrite_lock``,
    ``stats.rewrites_applied``) plus the :attr:`_rewrite_capacity` hook.
    """

    # The rewrite memo lives on the host session; every touch of the
    # OrderedDict goes through the host's dedicated ``_rewrite_lock``.
    GUARDED_BY = {"_rewrites": "_rewrite_lock"}

    @property
    def _rewrite_capacity(self) -> int:
        raise NotImplementedError  # pragma: no cover - hosts override

    def _prepared(self, query):
        """The constraint-rewritten form of ``query``, memoized (LRU).

        The memo lock is held only for the dictionary bookkeeping; a *cold*
        rewrite (the cost-model search) runs outside it, so concurrent
        admissions — including the serving layer's event-loop thread —
        never wait behind another thread's rewrite in progress.  Two
        threads racing on the same fresh query both rewrite it; the results
        are identical and the second insert is a no-op (``rewrites_applied``
        still counts the query once).  The rewritten form is seeded under
        its own key too — a fixed point — so re-preparing an
        already-prepared query (the admission queue evaluates the prepared
        form it got from :meth:`admission`) is a memo hit.
        """
        constraints = self.constraints
        if constraints is None or len(constraints) == 0:
            return query
        key = query_key(query)
        with self._rewrite_lock:
            cached = self._rewrites.get(key)
            if cached is not None:
                self._rewrites.move_to_end(key)
                return cached
        from ..optimize.cost import DEFAULT_COST_MODEL
        from ..optimize.rewriter import rewrite_query

        with self.metrics.span("engine.rewrite") as rewrite_span:
            outcome = rewrite_query(
                query if isinstance(query, (Regex, str)) else query.expression,
                constraints,
                self.cost_model or DEFAULT_COST_MODEL,
            )
            rewrite_span.set(improved=outcome.improved)
        self._hist_rewrite.observe(rewrite_span.duration)
        best_key = query_key(outcome.best)
        with self._rewrite_lock:
            fresh = key not in self._rewrites
            self._rewrites[key] = outcome.best
            if best_key != key:
                self._rewrites[best_key] = outcome.best
            while len(self._rewrites) > self._rewrite_capacity:
                self._rewrites.popitem(last=False)
            if fresh and outcome.improved:
                self.stats.rewrites_applied += 1
        return outcome.best

    def admission(self, query) -> "tuple[str, object]":
        """``(admission key, prepared query)`` for the serving layer.

        The key is the canonical printed form of the *constraint-rewritten*
        expression: two requests with the same key compile to the same DFA
        on this session, so the admission queue
        (:class:`repro.engine.serving.QueryServer`) may evaluate them in
        one shared batch and split the answers afterwards.  The prepared
        form rides along so the eventual batch evaluates it directly (a
        rewrite-memo fixed point) instead of re-deriving the rewrite.

        Accepts the structured shapes of :mod:`repro.engine.request`
        natively: a scalar :class:`~repro.engine.request.QueryRequest`
        lowers to its expression, and a conjunctive body (a
        ``ConjunctiveQuery``, ``CRPQRequest`` or ``MATCH …`` text) gets a
        compound ``crpq:``-prefixed key over its per-atom rewritten forms.
        Coalescing of conjunctive traffic is **per atom**, not per CRPQ:
        the serving layer admits each planned atom back through this same
        method with the atom's scalar expression, whose key equals the key
        an identical scalar request gets — so a CRPQ atom merges into an
        in-flight scalar batch (and vice versa).  The compound key exists
        for cursor digests and cache identity, never as a batch bucket.
        """
        if isinstance(query, (QueryRequest, CRPQRequest)):
            query = normalize(query).query
        if isinstance(query, ConjunctiveQuery) or (
            isinstance(query, str) and is_crpq_text(query)
        ):
            prepared = self.prepare_conjunctive(query)
            return "crpq:" + prepared.to_text(), prepared
        prepared = self._prepared(query)
        return query_key(prepared), prepared

    def admission_key(self, query) -> str:
        """The shared-batch coalescing key of ``query`` (see :meth:`admission`)."""
        return self.admission(query)[0]

    # -- conjunctive queries ---------------------------------------------------

    def degree_stats(self) -> DegreeStats:
        """Per-label live edge counts feeding the CRPQ join planner."""
        raise NotImplementedError  # pragma: no cover - hosts override

    def _conjunctive_domain(self) -> "tuple[Oid, ...]":
        """The active domain unbound-source atoms are seeded from."""
        return tuple(sorted(self.instance.objects, key=repr))

    def prepare_conjunctive(self, query) -> ConjunctiveQuery:
        """Parse + constraint-rewrite a conjunctive query.

        Returns a :class:`~repro.engine.conjunctive.ConjunctiveQuery` whose
        atoms carry the *prepared* (constraint-rewritten) expressions, each
        memoized through the same rewrite memo scalar admission uses — so
        re-preparing an atom later (per-atom admission) is a memo hit.
        """
        if isinstance(query, (QueryRequest, CRPQRequest)):
            query = normalize(query).query
        if isinstance(query, str):
            query = parse_crpq(query)
        if not isinstance(query, ConjunctiveQuery):
            raise ReproError(f"not a conjunctive query: {query!r}")
        constraints = self.constraints
        if constraints is None or len(constraints) == 0:
            return query
        return ConjunctiveQuery(
            atoms=tuple(
                Atom(atom.source, self._prepared(atom.expression), atom.target)
                for atom in query.atoms
            ),
            bindings=query.bindings,
            returns=query.returns,
        )

    def plan_conjunctive(self, query, *, strategy: str = "optimized") -> JoinPlan:
        """The join order :meth:`query_conjunctive` would run, with estimates."""
        crpq = self.prepare_conjunctive(query)
        with self.metrics.span(
            "crpq.plan", atoms=len(crpq.atoms), strategy=strategy
        ) as plan_span:
            stats = self.degree_stats()
            plan = plan_join(
                crpq,
                stats,
                self.cost_model,
                strategy=strategy,
                domain=self._conjunctive_domain(),
            )
            plan_span.set(
                acyclic=plan.acyclic, estimated_cost=plan.estimated_cost
            )
        return plan

    def query_conjunctive(self, query, *, strategy: str = "optimized") -> ConjunctiveResult:
        """Evaluate a conjunctive query (text, ``ConjunctiveQuery`` or
        structured request) as a join over batched atom evaluations.

        Each planned atom runs through :meth:`query_batch` — the same
        shared-traversal machinery scalar requests use — and the pair maps
        are hash-joined by :class:`~repro.engine.conjunctive.PlanExecution`
        in the planner's order.  Emits ``crpq.plan`` / ``crpq.atom`` /
        ``crpq.join`` spans and bumps the ``crpq_*`` join-cardinality
        counters (see README "Observability").
        """
        crpq = self.prepare_conjunctive(query)
        with self.metrics.span("crpq.query", atoms=len(crpq.atoms)) as root:
            plan = self.plan_conjunctive(crpq, strategy=strategy)
            execution = PlanExecution(plan)
            while (request := execution.pending()) is not None:
                with self.metrics.span(
                    "crpq.atom",
                    atom=request.step.atom.text(),
                    sources=len(request.sources),
                ):
                    pairs = self.query_batch(request.expression, request.sources)
                with self.metrics.span("crpq.join") as join_span:
                    report = execution.feed(pairs)
                    join_span.set(
                        atom=report.atom,
                        pairs=report.pairs,
                        rows_out=report.rows_out,
                    )
            rows = execution.result_rows()
            root.set(rows=len(rows))
        registry = self.metrics.registry
        registry.counter("crpq_queries", "conjunctive queries evaluated").inc()
        registry.counter(
            "crpq_atom_batches", "per-atom batch evaluations run for CRPQs"
        ).inc(len(execution.steps))
        registry.counter(
            "crpq_join_rows", "rows produced across CRPQ join steps"
        ).inc(sum(step.rows_out for step in execution.steps))
        return ConjunctiveResult(
            variables=crpq.returns,
            rows=rows,
            plan=plan,
            steps=tuple(execution.steps),
        )

    def telemetry(self) -> dict:
        """One JSON-ready snapshot of the session's metrics registry.

        Covers everything registered into it — the session's own stats
        gauges and histograms, plus whatever a :class:`QueryServer` over
        this session registered (see
        :meth:`repro.engine.telemetry.MetricsRegistry.snapshot` for the key
        conventions).
        """
        return self.metrics.snapshot()

    def as_server(
        self,
        *,
        max_batch: int = 64,
        max_delay: float = 0.002,
        concurrency: "int | None" = None,
    ) -> "QueryServer":
        """An asyncio serving handle over this session.

        See :class:`repro.engine.serving.QueryServer`: requests admitted
        through the handle are coalesced per :meth:`admission` into shared
        batched evaluations under a max-batch-size / max-delay policy,
        executed on a ``concurrency``-wide thread pool so the event loop
        never blocks on an engine round-trip.  (For the *sharded* engine,
        ``concurrency`` here sizes only the flush pool; the superstep
        scheduler is the engine's own — pass ``concurrency=`` to its
        ``open`` for that.)
        """
        from .serving import QueryServer

        return QueryServer(
            self, max_batch=max_batch, max_delay=max_delay, concurrency=concurrency
        )


class Engine(ServingSurface):
    """A compiled-evaluation session bound to one :class:`Instance`.

    Thread-safety: concurrent *queries* against one engine are safe — the
    serving layer (:mod:`repro.engine.serving`) runs admission-queue flushes
    on a thread pool, so the mutable session state (staleness refresh, the
    rewrite memo, the statistics counters; the compile cache and the lazy
    numpy edge arrays carry their own locks) is guarded by an internal
    re-entrant lock, while the executor runs themselves — read-only on the
    compiled graph — proceed outside it and overlap freely.  Concurrent
    *mutation* (``add_edge``/``remove_edge``/``save``) takes the same lock
    and additionally drains in-flight executor runs (a readers-writer
    exclusion) before touching the live CSR structures in place, so a query
    racing an edit answers consistently against the edge set before or
    after it — which one is the caller's ordering to decide.
    """

    # The machine-checked half of the docstring above (``python -m
    # repro.analysis``).  ``_graph`` is ``:mutate``: the reference is
    # atomically *published* under ``_lock`` (refresh/rebuild) while point
    # reads — the ``graph`` property, compile capture — are lock-free by
    # design.  The version stamps are read and written under ``_lock`` only.
    GUARDED_BY = {
        "_graph": "_lock:mutate",
        "_instance_version": "_lock",
        "_edge_version": "_lock",
        "_rewrites": "_rewrite_lock",
    }

    def __init__(
        self,
        instance: Instance,
        *,
        constraints: "ConstraintSet | None" = None,
        cost_model: "CostModel | None" = None,
        cache_capacity: int = 128,
        backend: str = "auto",
        labels: "Sequence[str] | None" = None,
        auto_compact_ratio: "int | None" = 4,
        _graph: "CompiledGraph | None" = None,
    ) -> None:
        self._instance: "Instance | weakref.ref[Instance]" = instance
        self.constraints = constraints
        self.cost_model = cost_model
        # Validate the name eagerly ("numpy" on a numpy-less machine still
        # fails lazily, at first evaluation, so sessions stay constructible
        # before the availability question is settled).
        if backend not in BACKENDS:
            resolve_backend(backend)  # raises with the canonical message
        self.backend = backend
        self.compiler = QueryCompiler(cache_capacity)
        self.stats = EngineStats()
        # One telemetry bundle (metrics registry + trace ring) per session.
        # The serving layer registers into this same registry, so one
        # snapshot covers admission, compile and evaluation.  Gauge
        # callbacks close over the stats/compiler objects, never over the
        # engine: ``shared_engine`` relies on plain refcounting to free the
        # session, so no registry callback may point back at ``self``.
        self.metrics = Telemetry()
        registry = self.metrics.registry
        self.stats.register(registry)
        compiler = self.compiler
        registry.gauge(
            "engine_compile_hits", "query-cache hits", lambda: compiler.hits
        )
        registry.gauge(
            "engine_compile_misses", "query lowerings (cache misses)",
            lambda: compiler.misses,
        )
        registry.gauge(
            "engine_cached_queries", "compiled tables resident in the LRU",
            lambda: len(compiler),
        )
        self._hist_query = registry.histogram(
            "engine_query_seconds", "end-to-end evaluation latency per call"
        )
        self._hist_run = registry.histogram(
            "engine_run_seconds", "executor run latency (traversal only)"
        )
        self._hist_compile = registry.histogram(
            "engine_compile_seconds", "DFA lookup/lowering latency per query"
        )
        self._hist_rewrite = registry.histogram(
            "engine_rewrite_seconds", "cold constraint-rewrite search latency"
        )
        # Label-order seed for every graph build of this session.  The
        # sharded engine passes one *shared, live* list to all its shard
        # engines, so even a full rebuild interns the global label universe
        # (in the shared order) before the shard's own edge labels — which is
        # what keeps DFA liveness pruning correct across shard boundaries.
        self._label_seed = labels
        # Rewrite memo, LRU-bounded like the compile cache so a long-lived
        # constrained session does not grow without limit.
        self._rewrites: "OrderedDict[str, Regex]" = OrderedDict()
        # Guards refresh and the stats counters against concurrent server
        # threads (see the class docstring).
        self._lock = witnessed_lock("Engine._lock", threading.RLock)
        # The rewrite memo gets its own short-lived lock: the serving
        # layer's admission path (admission_key) runs on the event loop and
        # must never wait behind an evaluation holding the session lock.
        self._rewrite_lock = witnessed_lock("Engine._rewrite_lock")
        # Executor runs (shared) vs in-place graph mutation (exclusive):
        # add_edge/remove_edge mutate the live CSR overflow/tombstones/
        # interners that a concurrently running executor is reading, so
        # they drain in-flight runs first.  Never acquire ``_lock`` while
        # holding a read token (writers hold ``_lock`` when they wait).
        self._run_lock = _ReadWriteLock("Engine._run_lock")
        # Auto-compaction tuning, re-applied to every graph this session
        # builds or restores (the knob lives on the session, the live value
        # on the graph).
        self._auto_compact_ratio = auto_compact_ratio
        if _graph is None:
            self._graph = CompiledGraph.from_instance(instance, labels=labels)
            self.stats.graph_builds += 1
        else:
            # Snapshot warm-start: the caller restored a compiled graph that
            # is already consistent with ``instance`` — no build to pay.
            self._graph = _graph
            self.stats.snapshot_restores += 1
        self._graph.auto_compact_ratio = auto_compact_ratio
        self._instance_version = instance.version
        self._edge_version = instance.edge_version

    @property
    def instance(self) -> Instance:
        """The live instance; resolves the weakref held by shared engines.

        Raises :class:`~repro.exceptions.ReproError` when a weakly-bound
        engine outlived its instance.  Read paths never hit this — they
        only consult the instance for staleness detection, and a dead
        instance can no longer mutate, so :meth:`refresh` treats it as
        final and queries keep serving the frozen compiled graph.  Only
        operations that genuinely need the instance (``add_edge`` /
        ``remove_edge`` / ``save``) surface the error.
        """
        instance = self._instance_or_none()
        if instance is None:
            raise ReproError(
                "the engine's instance has been garbage-collected; the "
                "compiled graph is frozen (queries still work, mutation "
                "and save do not)"
            )
        return instance

    def _instance_or_none(self) -> "Instance | None":
        held = self._instance
        if type(held) is weakref.ref:
            return held()
        return held

    def _hold_instance_weakly(self) -> None:
        """Swap the instance back-edge for a weakref.

        :func:`shared_engine` stores the engine *on* the instance, so a
        strong ``Engine -> Instance`` edge would close a reference cycle
        that keeps large compiled graphs alive until a gc cycle pass.  With
        the weak back-edge the instance's refcount alone decides both
        lifetimes: dropping the instance frees the engine immediately.
        """
        held = self._instance
        if type(held) is not weakref.ref:
            self._instance = weakref.ref(held)

    @classmethod
    def open(
        cls,
        source: "Instance | str | os.PathLike",
        *,
        instance: "Instance | None" = None,
        constraints: "ConstraintSet | None" = None,
        cost_model: "CostModel | None" = None,
        cache_capacity: int = 128,
        backend: str = "auto",
        labels: "Sequence[str] | None" = None,
        shards: "int | None" = None,
        shard_map=None,
    ) -> "Engine":
        """Return a ready-to-serve engine session.

        ``source`` is either an :class:`Instance` — compiled from scratch,
        exactly as before — or a path to a snapshot written by :meth:`save`,
        which warm-starts the session with the persisted compiled graph and
        query cache.  When loading a snapshot, ``instance`` optionally
        supplies the live instance to serve: the stored stamp (version
        counters + content fingerprint) is validated against it, and on any
        mismatch the engine silently falls back to a full rebuild from the
        supplied instance.  Without ``instance``, the instance is
        reconstructed from the snapshot itself.

        With ``shards=N`` (or an explicit ``shard_map``) the call is
        delegated to :class:`repro.engine.sharding.ShardedEngine` — ``source``
        must then be an instance or a snapshot *directory* — and the return
        value is a sharded session with the same ``query`` / ``query_batch``
        / ``stats`` surface.
        """
        if shards is not None or shard_map is not None:
            from .sharding import ShardedEngine

            if labels is not None:
                raise ReproError(
                    "labels= cannot be combined with shards=/shard_map=; the "
                    "sharded engine manages its own shared label universe"
                )
            return ShardedEngine.open(  # type: ignore[return-value]
                source,
                instance=instance,
                shards=shards,
                shard_map=shard_map,
                constraints=constraints,
                cost_model=cost_model,
                cache_capacity=cache_capacity,
                backend=backend,
            )
        if isinstance(source, (str, os.PathLike)):
            from .snapshot import load_engine

            return load_engine(
                source,
                instance=instance,
                constraints=constraints,
                cost_model=cost_model,
                cache_capacity=cache_capacity,
                backend=backend,
                labels=labels,
            )
        if instance is not None:
            raise ReproError(
                "instance= is only meaningful when opening a snapshot path"
            )
        return cls(
            source,
            constraints=constraints,
            cost_model=cost_model,
            cache_capacity=cache_capacity,
            backend=backend,
            labels=labels,
        )

    def save(self, path: "str | os.PathLike", *, codec: str = "auto") -> None:
        """Persist the compiled graph and warm query cache to ``path``.

        The engine refreshes first, so the snapshot always reflects the live
        instance; see :mod:`repro.engine.snapshot` for the format and codecs
        (``auto`` picks the numpy ``.npz`` fast path when available, else
        the stdlib binary writer).
        """
        from .snapshot import save_engine

        with self._lock:
            self.refresh()
            save_engine(self, path, codec=codec)

    # -- graph lifecycle ------------------------------------------------------
    @property
    def graph(self) -> CompiledGraph:
        return self._graph

    @property
    def resolved_backend(self) -> str:
        """The executor ``backend="auto"`` resolves to right now."""
        return resolve_backend(self.backend)

    def refresh(self) -> bool:
        """Rebuild the compiled graph if the instance mutated behind our back.

        Returns ``True`` when a rebuild happened.  Mutations routed through
        :meth:`add_edge` keep the versions in sync and never trigger this.

        Out-of-band mutations that cannot invalidate the CSR — the instance's
        *edge* version is unchanged, so only isolated objects were added via
        ``Instance.add_object`` — take a cheap path instead: the node
        interner grows in place (ids are append-only) and both the compiled
        graph and the warm query cache survive untouched.

        Stale transition tables cannot outlive a rebuild either way: the
        compile cache is keyed by the label interner's fingerprint, so a
        rebuild that permutes label ids misses the cache structurally
        instead of relying on an explicit clear here.  A rebuild that
        happens to preserve the interning order keeps the cache warm.

        A weakly-bound engine (see :func:`shared_engine`) whose instance
        has been collected serves its last compiled state forever: a dead
        instance cannot mutate, so there is nothing to be stale against.
        """
        instance = self._instance_or_none()
        if instance is None:
            return False
        with self._lock:
            if instance.version == self._instance_version:
                return False
            if instance.edge_version == self._edge_version:
                grown = self._graph.ensure_nodes(instance.objects)
                if grown:
                    self.stats.interner_growths += grown
                self._instance_version = instance.version
                return False
            self._graph = CompiledGraph.from_instance(
                instance, labels=self._label_seed
            )
            self._graph.auto_compact_ratio = self._auto_compact_ratio
            self._instance_version = instance.version
            self._edge_version = instance.edge_version
            self.stats.graph_builds += 1
            return True

    def add_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Add one edge to both the instance and the compiled graph.

        This is the incremental path: the CSR structure absorbs the edge via
        its overflow adjacency instead of recompiling the whole graph.
        """
        with self._lock:
            self.refresh()
            instance = self.instance
            if instance.has_edge(source, label, destination):
                return
            with self._run_lock.write():
                instance.add_edge(source, label, destination)
                self._graph.add_edge(source, label, destination)
            self._instance_version = instance.version
            self._edge_version = instance.edge_version
            self.stats.incremental_edges += 1

    def remove_edge(self, source: Oid, label: str, destination: Oid) -> None:
        """Remove one edge from both the instance and the compiled graph.

        Symmetric to :meth:`add_edge`: the CSR structure tombstones the edge
        instead of recompiling, so cached query tables stay valid (label ids
        never change on the incremental path).
        """
        with self._lock:
            self.refresh()
            instance = self.instance
            with self._run_lock.write():
                instance.remove_edge(source, label, destination)
                self._graph.remove_edge(source, label, destination)
            self._instance_version = instance.version
            self._edge_version = instance.edge_version
            self.stats.incremental_removals += 1

    def compact_now(self) -> bool:
        """Compact the compiled graph immediately: fold overflow edges into
        the dense CSR arrays and drop tombstones, leaving every per-label
        target run sorted (the cache-tuned layout both executors and the
        numpy lowering are fastest on).  Equivalent to what auto-compaction
        does when overflow or tombstones outgrow the
        :attr:`auto_compact_ratio` threshold, but on demand — e.g. after a
        bulk edit burst, before a latency-sensitive serving window.
        Returns ``True`` when the layout actually changed.
        """
        with self._lock:
            self.refresh()
            with self._run_lock.write():
                before = self._graph.version
                self._graph.compact()
                return self._graph.version != before

    @property
    def auto_compact_ratio(self) -> "int | None":
        """The graph's auto-compaction threshold divisor (``None`` = off).

        Compaction triggers when pending overflow edges (on add) or
        tombstones (on remove) exceed ``max(64, edges // ratio)``.  The
        setter applies to the live graph and is remembered across rebuilds.
        """
        with self._lock:
            return self._graph.auto_compact_ratio

    @auto_compact_ratio.setter
    def auto_compact_ratio(self, ratio: "int | None") -> None:
        if ratio is not None and ratio < 1:
            raise ReproError("auto_compact_ratio must be a positive int or None")
        with self._lock:
            self._auto_compact_ratio = ratio
            self._graph.auto_compact_ratio = ratio

    # -- query compilation ----------------------------------------------------
    @property
    def _rewrite_capacity(self) -> int:
        return self.compiler.capacity

    def compiled(self, query: "RegularPathQuery | Regex | str") -> CompiledQuery:
        """The integer transition table for ``query`` on the current graph."""
        return self._compiled_on(query)[0]

    def _compiled_on(
        self, query: "RegularPathQuery | Regex | str"
    ) -> "tuple[CompiledQuery, CompiledGraph]":
        """``(compiled table, graph it was lowered against)`` — one pair.

        Query paths must traverse the *same* graph object their table was
        compiled on: a concurrent server thread whose :meth:`refresh` swaps
        ``self._graph`` mid-query would otherwise hand this thread a table
        lowered on the old label order and a graph interned in the new one.
        Capturing the pair under the lock (and never re-reading
        ``self._graph`` afterwards) makes every evaluation a consistent —
        possibly one-rebuild stale — snapshot.
        """
        with self._lock:
            self.refresh()
            graph = self._graph
        prepared = self._prepared(query)
        misses_before = self.compiler.misses
        with self.metrics.span("engine.compile") as compile_span:
            compiled = self.compiler.compile(prepared, graph)
            compile_span.set(
                cached=self.compiler.misses == misses_before,
                dfa_size=compiled.dfa_size,
            )
        self._hist_compile.observe(compile_span.duration)
        return compiled, graph

    # -- evaluation -----------------------------------------------------------
    def query(
        self, query: "RegularPathQuery | Regex | str", source: Oid
    ) -> EvaluationResult:
        """Single-source evaluation with witnesses, as an ``EvaluationResult``."""
        with self.metrics.span("engine.query", mode="single") as query_span:
            result = self._query_single(query, source)
            query_span.set(answers=len(result.answers))
        self._hist_query.observe(query_span.duration)
        return result

    def _query_single(
        self, query: "RegularPathQuery | Regex | str", source: Oid
    ) -> EvaluationResult:
        compiled, graph = self._compiled_on(query)
        with self._lock:
            self.stats.single_evaluations += 1
        node = graph.node_id(source)
        if node is None:
            # Unknown sources have an empty description; they answer
            # themselves exactly when the query accepts the empty word.
            result = EvaluationResult(visited_pairs=1, visited_objects=1)
            if compiled.accepts_empty_word():
                result.answers.add(source)
                result.witness_paths[source] = ()
            return result
        with self._run_lock.read():
            with self.metrics.span("engine.run", mode="single") as run_span:
                run = run_single(graph, compiled, node, backend=self.backend)
                run_span.set(backend=run.backend, visited=run.visited_pairs)
        self._hist_run.observe(run.elapsed)
        with self._lock:
            self.stats.visited_pairs += run.visited_pairs
            self.stats.record_backend(run.backend)
        label_of = graph.labels.value_of
        result = EvaluationResult(
            answers=graph.oids_of(run.answers),
            visited_pairs=run.visited_pairs,
            visited_objects=run.visited_objects,
        )
        for node_id, labels in run.witness_paths.items():
            result.witness_paths[graph.oid_of(node_id)] = tuple(
                label_of(label_id) for label_id in labels
            )
        return result

    def answer_set(
        self, query: "RegularPathQuery | Regex | str", source: Oid
    ) -> set[Oid]:
        return self.query(query, source).answers

    def _partition_batch_sources(
        self, graph: CompiledGraph, sources: "Sequence[Oid] | Iterable[Oid]"
    ) -> "tuple[list[int], list[Oid], list[Oid]]":
        """Split batch sources into (known node ids, their oids, unknown oids)
        against the query's captured ``graph`` snapshot, bumping the shared
        batch statistics once for the whole call."""
        source_list = list(sources)
        with self._lock:
            self.stats.batch_evaluations += 1
            self.stats.batched_sources += len(source_list)
        known: list[int] = []
        known_oids: list[Oid] = []
        unknown: list[Oid] = []
        for source in source_list:
            node = graph.node_id(source)
            if node is None:
                unknown.append(source)
            else:
                known.append(node)
                known_oids.append(source)
        return known, known_oids, unknown

    def degree_stats(self) -> DegreeStats:
        """Per-label live edge counts from the CSR arrays (planner input).

        Derived from the compiled graph (CSR − tombstones + overflow), so
        incremental edits are reflected without a recount of the instance.
        """
        with self._lock:
            self.refresh()
            graph = self._graph
        return DegreeStats(
            num_nodes=graph.num_nodes, label_counts=graph.label_edge_counts()
        )

    def query_batch(
        self,
        query: "QueryRequest | RegularPathQuery | Regex | str",
        sources: "Sequence[Oid] | Iterable[Oid] | None" = None,
    ) -> dict[Oid, set[Oid]]:
        """Evaluate one query from many sources in one shared traversal.

        Accepts either the classic ``(expression, sources)`` pair or a
        scalar :class:`~repro.engine.request.QueryRequest` (whose
        ``sources`` field supplies the roots); conjunctive requests belong
        to :meth:`query_conjunctive`.
        """
        query, sources = _lower_batch_request(query, sources)
        with self.metrics.span("engine.query", mode="batch") as query_span:
            results = self._query_batch(query, sources)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def query_batch_streaming(
        self,
        query: "RegularPathQuery | Regex | str",
        sources: "Sequence[Oid] | Iterable[Oid]",
        emit: "Callable[[Oid, Iterable[Oid]], None]",
    ) -> dict[Oid, set[Oid]]:
        """Batched evaluation that also streams answers as they land.

        ``emit(source, answers)`` is called *during* the evaluation — from
        the thread running it, once per newly accepting fact (per fixpoint
        round on the numpy backend) — and each ``(source, answer)`` pair is
        emitted at most once; the union of everything emitted for a source
        equals its entry of the returned dict, which is exactly what
        :meth:`query_batch` returns.  ``emit`` must be cheap and
        thread-safe (the serving layer hops it back onto its event loop);
        exceptions it raises abort the run.
        """
        with self.metrics.span("engine.query", mode="batch_streaming") as query_span:
            results = self._query_batch(query, sources, emit=emit)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def _query_batch(
        self,
        query: "RegularPathQuery | Regex | str",
        sources: "Sequence[Oid] | Iterable[Oid]",
        emit: "Callable[[Oid, Iterable[Oid]], None] | None" = None,
    ) -> dict[Oid, set[Oid]]:
        compiled, graph = self._compiled_on(query)
        known, known_oids, unknown = self._partition_batch_sources(graph, sources)
        results: dict[Oid, set[Oid]] = {}
        for source in unknown:
            # Unknown sources have an empty description; they answer
            # themselves exactly when the query accepts the empty word.
            results[source] = {source} if compiled.accepts_empty_word() else set()
            if emit is not None and results[source]:
                emit(source, (source,))
        answer_sink = None
        if emit is not None and known:
            # The executor assigns mask bits by first occurrence of each
            # source node; rebuild that order so streamed bits map back to
            # the oids the caller asked about (duplicate oids share a bit).
            order: "list[Oid]" = []
            seen_nodes: set[int] = set()
            for node, oid in zip(known, known_oids):
                if node not in seen_nodes:
                    seen_nodes.add(node)
                    order.append(oid)
            oid_of = graph.nodes.backing_list()

            def answer_sink(bit, nodes):
                # The executor hands a whole round's facts for one source
                # bit at a time; mapping node ids to oids is the only
                # per-fact work left on the evaluation thread.
                emit(order[bit], [oid_of[node] for node in nodes])

        if known:
            # Constant-time trichotomy check (Bagan et al.): wide batches of
            # easy-shaped queries run the whole-graph kernel — node ids
            # double as mask bits, so one all-pairs fixpoint replaces
            # seeding most of the graph source by source.  Streaming stays
            # per-source (its bit->oid mapping follows the request order).
            strategy = choose_batch_strategy(
                _strategy_expression(self._prepared(query)),
                len(set(known)),
                graph.num_nodes,
            )
            all_pairs = strategy.strategy == "all-pairs" and answer_sink is None
            with self._run_lock.read():
                with self.metrics.span("engine.run", mode="batch") as run_span:
                    if all_pairs:
                        run = run_all_pairs(graph, compiled, backend=self.backend)
                    else:
                        run = run_batch(
                            graph, compiled, known, backend=self.backend,
                            answer_sink=answer_sink,
                        )
                    run_span.set(
                        backend=run.backend,
                        visited=run.visited_pairs,
                        strategy=strategy.strategy,
                        shape=strategy.shape,
                    )
            self._hist_run.observe(run.elapsed)
            with self._lock:
                self.stats.visited_pairs += run.visited_pairs
                self.stats.record_backend(run.backend)
            if all_pairs:
                # ``run_all_pairs`` answers are positioned by node id.
                for oid, node in zip(known_oids, known):
                    results[oid] = graph.oids_of(run.answers[node])
            else:
                for oid, answer_nodes in zip(known_oids, run.answers):
                    results[oid] = graph.oids_of(answer_nodes)
        return results

    def query_batch_results(
        self,
        query: "RegularPathQuery | Regex | str",
        sources: "Sequence[Oid] | Iterable[Oid]",
    ) -> dict[Oid, EvaluationResult]:
        """Batched evaluation that also reconstructs witness paths.

        One shared traversal answers every source (exactly like
        :meth:`query_batch`); the executor additionally keeps enough of the
        per-source reachability to rebuild, on demand, one witness label
        word per ``(source, answer)`` pair.  The traversal statistics are
        those of the whole batch, mirrored into every per-source result.
        """
        with self.metrics.span("engine.query", mode="batch_results") as query_span:
            results = self._query_batch_results(query, sources)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def _query_batch_results(
        self,
        query: "RegularPathQuery | Regex | str",
        sources: "Sequence[Oid] | Iterable[Oid]",
    ) -> dict[Oid, EvaluationResult]:
        compiled, graph = self._compiled_on(query)
        known, known_oids, unknown = self._partition_batch_sources(graph, sources)
        results: dict[Oid, EvaluationResult] = {}
        for source in unknown:
            result = EvaluationResult(visited_pairs=1, visited_objects=1)
            if compiled.accepts_empty_word():
                result.answers.add(source)
                result.witness_paths[source] = ()
            results[source] = result
        if not known:
            return results
        label_of = graph.labels.value_of
        # One read section across the run AND the witness replay: the replay
        # walks the live adjacency against the run's version stamp, so a
        # mutation admitted between the two would turn this very call's
        # resolver stale (the stamp check is for callers who stash the run,
        # not for the engine's own replay).
        with self._run_lock.read():
            with self.metrics.span("engine.run", mode="batch_results") as run_span:
                run = run_batch(
                    graph, compiled, known, witnesses=True, backend=self.backend
                )
                run_span.set(backend=run.backend, visited=run.visited_pairs)
            self._hist_run.observe(run.elapsed)
            for oid, node, answer_nodes in zip(known_oids, known, run.answers):
                result = EvaluationResult(
                    answers=graph.oids_of(answer_nodes),
                    visited_pairs=run.visited_pairs,
                    visited_objects=run.visited_objects,
                )
                for answer_node in answer_nodes:
                    word = run.witness(node, answer_node)
                    if word is not None:
                        result.witness_paths[graph.oid_of(answer_node)] = tuple(
                            label_of(label_id) for label_id in word
                        )
                results[oid] = result
        with self._lock:
            self.stats.visited_pairs += run.visited_pairs
            self.stats.record_backend(run.backend)
        return results

    def query_all(
        self, query: "RegularPathQuery | Regex | str"
    ) -> dict[Oid, set[Oid]]:
        """All-pairs evaluation: the answer set of every object of the graph."""
        with self.metrics.span("engine.query", mode="all_pairs") as query_span:
            results = self._query_all(query)
            query_span.set(sources=len(results))
        self._hist_query.observe(query_span.duration)
        return results

    def _query_all(
        self, query: "RegularPathQuery | Regex | str"
    ) -> dict[Oid, set[Oid]]:
        compiled, graph = self._compiled_on(query)  # one consistent snapshot
        with self._run_lock.read():
            with self.metrics.span("engine.run", mode="all_pairs") as run_span:
                run = run_all_pairs(graph, compiled, backend=self.backend)
                run_span.set(backend=run.backend, visited=run.visited_pairs)
        self._hist_run.observe(run.elapsed)
        with self._lock:
            self.stats.batch_evaluations += 1
            self.stats.batched_sources += graph.num_nodes
            self.stats.visited_pairs += run.visited_pairs
            self.stats.record_backend(run.backend)
        return {
            graph.oid_of(node): graph.oids_of(answers)
            for node, answers in zip(run.sources, run.answers)
        }

    def describe(self) -> str:
        return self.stats.summary(self)

    def __repr__(self) -> str:
        return f"Engine({self._graph!r}, cached_queries={len(self.compiler)})"


def shared_engine(instance: Instance) -> Engine:
    """A per-instance engine memoized on the instance object itself.

    Used by the delegation hook in :func:`repro.query.evaluation.evaluate`
    so that repeated baseline-API calls against the same instance share one
    compiled graph and one warm query cache.  The engine lives exactly as
    long as the instance does — and no longer: the instance holds the engine
    strongly (the ``setattr`` below) while the engine holds the instance
    through a *weakref*, so no ``Instance -> Engine -> Instance`` cycle
    forms and dropping the last instance reference frees the compiled graph
    immediately, without waiting for a gc cycle pass.
    """
    engine = getattr(instance, _SHARED_ENGINE_ATTR, None)
    if engine is None or engine.instance is not instance:
        engine = Engine.open(instance)
        engine._hold_instance_weakly()
        setattr(instance, _SHARED_ENGINE_ATTR, engine)
    return engine
