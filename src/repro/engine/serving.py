"""Async serving layer: shared-batch query admission + concurrent supersteps.

Production RPQ evaluators decouple the evaluation loop from request arrival:
"Answering Constraint Path Queries over Graphs" serves constraint path
queries through an evaluation loop that batches work against the graph, and
the enumeration literature (Martens & Trautner) motivates streaming answers
with bounded delay rather than blocking every caller on a private full
evaluation.  This module is that layer for the compiled engine, in two
independent halves:

* :class:`QueryServer` — an **admission queue** in front of an
  :class:`~repro.engine.session.Engine` or
  :class:`~repro.engine.sharding.ShardedEngine`.  Requests arrive as
  ``await server.submit(query, source)``; in-flight requests whose queries
  compile to the *same DFA* (same
  :meth:`~repro.engine.session.Engine.admission_key` — the canonical
  constraint-rewritten expression) are coalesced into one shared
  ``query_batch`` evaluation under a **max-batch-size / max-delay** policy:
  a bucket flushes as soon as it holds ``max_batch`` distinct sources, or
  ``max_delay`` seconds after its first request, whichever comes first.
  Flushes execute on a small thread pool so the event loop never blocks on
  an engine round-trip, and the per-source answer sets are fanned back out
  to the waiting futures.  The batched bitmask executor makes the shared
  run cost barely more than a single-source one, so a gateway serving many
  concurrent clients pays one traversal where naive serving pays dozens;

* :class:`SuperstepScheduler` — a thread-pool **superstep scheduler** for
  the sharded engine's scatter-gather fixpoint.  The per-shard local
  fixpoints of one superstep are independent by construction (each touches
  only its own shard's compiled graph and frontier; cross-shard facts
  exchange at the barrier), so the scheduler runs them concurrently and
  joins at the barrier.  The numpy executor releases the GIL inside its
  ``bitwise_or.reduceat`` hot loops, so shard steps genuinely overlap on
  cores; the pure-Python backend still wins when steps interleave with I/O.
  Installed via ``ShardedEngine.open(..., concurrency=N)``; the observed
  peak of simultaneously in-flight shard steps is exported as
  :attr:`SuperstepScheduler.concurrent_steps`.

A thin line protocol (:func:`serve_connection` / :func:`serve_tcp` /
:func:`serve_stream` / :func:`serve_request_lines`) adapts the server to
stdin and TCP front-ends
for the CLI's ``serve`` subcommand: one request per line,
``id<TAB>source<TAB>query``, answered as ``id<TAB>answer answer ...``
(answers sorted, space-separated; errors as ``id<TAB>error: ...``).
Responses are written as they complete, so slow queries never head-of-line
block fast ones — the ``id`` is what correlates them.

Thread-safety contracts this module relies on (and PR 5 audited): the
engines' compile caches and rewrite memos are lock-guarded, statistics
counters mutate under the session lock, and the lazy numpy edge-array
lowering is race-free — see the ``Engine`` / ``ShardedEngine`` docstrings.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from ..exceptions import ReproError
from .telemetry import (
    DEFAULT_SIZE_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    Telemetry,
    slow_log_json,
    trace_to_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.instance import Oid
    from .session import Engine
    from .sharding import ShardedEngine

T = TypeVar("T")


class SuperstepScheduler:
    """Runs the independent per-shard steps of one superstep on threads.

    :meth:`run` is a fork-join barrier: every step of the superstep is
    submitted to the pool, and the call returns only when all of them have
    finished — which is exactly the bulk-synchronous contract the sharded
    engine's frontier exchange needs.  The scheduler never reorders results
    (``results[i]`` belongs to ``steps[i]``) and re-raises the first step
    exception after the barrier, so a failing shard cannot leave a
    half-joined superstep behind.

    Statistics: ``steps`` counts every step ever run, ``barriers`` every
    :meth:`run` call, and ``concurrent_steps`` is the *peak* number of steps
    observed simultaneously in flight — the observable proof that per-shard
    supersteps really overlap (> 1 whenever two shards' fixpoints ran at the
    same time).
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ReproError("a superstep scheduler needs at least one worker")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-superstep"
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._closed = False
        self.steps = 0
        self.barriers = 0
        self.concurrent_steps = 0

    def run(self, steps: "Sequence[Callable[[], T]]") -> "list[T]":
        """Execute every thunk, in parallel, and join: the superstep barrier."""
        if self._closed:
            raise ReproError("the superstep scheduler has been closed")
        self.barriers += 1
        if len(steps) <= 1:
            # One active shard: no parallelism to be had, skip the pool hop.
            return [self._tracked(step) for step in steps]
        futures = [self._pool.submit(self._tracked, step) for step in steps]
        results: "list[T]" = []
        error: "BaseException | None" = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # join every step before raising
                if error is None:
                    error = exc
                results.append(None)  # type: ignore[arg-type]
        if error is not None:
            raise error
        return results

    def _tracked(self, step: "Callable[[], T]") -> T:
        with self._lock:
            self._in_flight += 1
            self.steps += 1
            if self._in_flight > self.concurrent_steps:
                self.concurrent_steps = self._in_flight
        try:
            return step()
        finally:
            with self._lock:
                self._in_flight -= 1

    def close(self) -> None:
        """Release the worker threads (idempotent)."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SuperstepScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SuperstepScheduler(max_workers={self.max_workers}, "
            f"steps={self.steps}, barriers={self.barriers}, "
            f"concurrent_steps={self.concurrent_steps})"
        )


@dataclass
class ServingStats:
    """Counters of one :class:`QueryServer`'s lifetime."""

    submitted: int = 0
    served: int = 0
    failed: int = 0
    batches: int = 0
    # Requests that shared their batch with at least one other request.
    coalesced: int = 0
    # Widest admitted batch (distinct sources of one flush).
    max_batch_size: int = 0
    size_flushes: int = 0
    delay_flushes: int = 0
    # Flushes forced by max_delay == 0 (coalescing disabled).
    immediate_flushes: int = 0
    close_flushes: int = 0

    def summary(self) -> str:
        return (
            f"requests: {self.submitted} submitted, {self.served} served, "
            f"{self.failed} failed; batches: {self.batches} "
            f"({self.coalesced} requests coalesced, widest {self.max_batch_size}); "
            f"flushes: {self.size_flushes} size, {self.delay_flushes} delay, "
            f"{self.immediate_flushes} immediate, {self.close_flushes} close"
        )

    _GAUGES = (
        ("submitted", "requests admitted (or rejected at admission)"),
        ("served", "requests resolved with an answer set"),
        ("failed", "requests resolved with an error"),
        ("batches", "shared-batch flushes"),
        ("coalesced", "requests that shared their batch with another"),
        ("max_batch_size", "widest admitted batch (distinct sources)"),
        ("size_flushes", "flushes forced by max_batch"),
        ("delay_flushes", "flushes forced by max_delay"),
        ("immediate_flushes", "flushes with coalescing disabled (max_delay=0)"),
        ("close_flushes", "flushes forced by close()"),
    )

    def register(self, registry: MetricsRegistry, prefix: str = "serving") -> None:
        """Expose every counter through ``registry`` as a callback gauge.

        The server registers into its *engine's* registry (see
        :class:`QueryServer`), so one session snapshot covers admission and
        evaluation together.  Gauge registration is last-wins: a second
        server over the same engine re-points the serving gauges at its own
        stats, which is the useful reading for the common
        one-server-at-a-time lifecycle.
        """
        for attr, help_text in self._GAUGES:
            registry.gauge(
                f"{prefix}_{attr}", help_text, lambda a=attr: getattr(self, a)
            )


class _Bucket:
    """One admission bucket: every in-flight request sharing a DFA key."""

    __slots__ = ("query", "waiters", "timer", "span", "created_at")

    def __init__(self, query, span=NULL_SPAN, created_at: float = 0.0) -> None:
        self.query = query  # the prepared (rewritten) query, compiled once
        self.waiters: "dict[Oid, list[asyncio.Future]]" = {}
        self.timer: "asyncio.TimerHandle | None" = None
        # Telemetry: the batch's root span ("serve.batch"), opened at bucket
        # creation so the admission wait is on the trace; NULL_SPAN when
        # capture is disabled.
        self.span = span
        self.created_at = created_at


class QueryServer:
    """Admission queue that coalesces compatible requests into shared batches.

    Construct via ``engine.as_server(...)`` (both session kinds) or directly;
    the engine's ``query_batch`` must be thread-safe (both are — see their
    docstrings).  Usage::

        async with engine.as_server(max_batch=64, max_delay=0.002) as server:
            answers = await server.submit("a (b + c)*", "p0")

    ``submit`` admits the request into the bucket of its
    :meth:`~repro.engine.session.Engine.admission_key`; the bucket flushes
    into one shared ``query_batch`` when it reaches ``max_batch`` distinct
    sources or ``max_delay`` seconds after its first request.  Flushes run
    on a ``concurrency``-wide thread pool (default 1), so distinct-DFA
    batches can evaluate in parallel while the event loop keeps admitting.

    The answer ``set`` a request resolves to may be shared with other
    coalesced requests of the same ``(query, source)`` — treat it as
    read-only.  :meth:`close` flushes every pending bucket and drains
    in-flight batches; it is what ``async with`` calls on exit.
    """

    def __init__(
        self,
        engine: "Engine | ShardedEngine",
        *,
        max_batch: int = 64,
        max_delay: float = 0.002,
        concurrency: "int | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ReproError("max_batch must admit at least one request")
        if max_delay < 0:
            raise ReproError("max_delay cannot be negative")
        if concurrency is not None and concurrency < 1:
            raise ReproError("concurrency must be a positive worker count")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = ServingStats()
        # The serving layer shares the *engine's* telemetry bundle: one
        # registry snapshot (and one trace tree per batch) covers admission,
        # compile and evaluation.  A bare test double without a ``metrics``
        # attribute gets a private bundle so the server still works.
        self.metrics: Telemetry = getattr(engine, "metrics", None) or Telemetry()
        registry = self.metrics.registry
        self.stats.register(registry)
        self._hist_request = registry.histogram(
            "serving_request_seconds", "submit-to-resolve latency per request"
        )
        self._hist_flush = registry.histogram(
            "serving_flush_seconds",
            "bucket lifetime: first admission to answer fan-out",
        )
        self._hist_wait = registry.histogram(
            "serving_admission_wait_seconds",
            "bucket wait between first admission and flush",
        )
        self._hist_batch_sources = registry.histogram(
            "serving_batch_sources", "distinct sources per flushed batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._control_requests = registry.counter(
            "serving_control_requests", "line-protocol control verbs handled"
        )
        self._buckets: "dict[str, _Bucket]" = {}
        self._inflight: "set[asyncio.Task]" = set()
        self._pool = ThreadPoolExecutor(
            max_workers=concurrency or 1, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # -- admission ------------------------------------------------------------
    def submit_nowait(self, query, source: "Oid") -> "asyncio.Future":
        """Admit one request; returns the future its answers will resolve on.

        Must be called from a running event loop (the flush timer and the
        result fan-out live on it).  Admission computes the request's
        coalescing key inline: a memo hit for every query seen before, and
        one constraint-rewrite pass the first time a constrained session
        sees a new query — the rewrite memo's lock is never held across
        that search, so admissions don't stall behind each other.
        """
        if self._closed:
            raise ReproError("the query server has been closed")
        loop = asyncio.get_running_loop()
        self.stats.submitted += 1
        # The bucket holds the *prepared* (constraint-rewritten) form, so
        # the eventual flush evaluates it directly instead of re-preparing.
        try:
            key, prepared = self.engine.admission(query)
        except BaseException:
            # Admission-time failures (e.g. query syntax errors) never form
            # a batch; count them so submitted == served + failed holds.
            self.stats.failed += 1
            raise
        return self._admit(key, prepared, source)

    def _admit(self, key: str, prepared, source: "Oid") -> "asyncio.Future":
        """Insert one admitted request into its bucket (event-loop only)."""
        loop = asyncio.get_running_loop()
        traced = self.metrics.enabled  # one flag read per admission
        bucket = self._buckets.get(key)
        if bucket is None:
            if traced:
                bucket = _Bucket(
                    prepared,
                    span=self.metrics.span("serve.batch", key=key),
                    created_at=perf_counter(),
                )
            else:
                bucket = _Bucket(prepared)
            self._buckets[key] = bucket
            if self.max_delay > 0:
                bucket.timer = loop.call_later(
                    self.max_delay, self._flush, key, "delay"
                )
        future: "asyncio.Future" = loop.create_future()
        bucket.waiters.setdefault(source, []).append(future)
        if traced:
            # Per-request submit-to-resolve latency, stamped at admission and
            # observed when the future settles (success or failure alike).
            admitted_at = perf_counter()
            future.add_done_callback(
                lambda _f, _t=admitted_at: self._hist_request.observe(
                    perf_counter() - _t
                )
            )
        if len(bucket.waiters) >= self.max_batch:
            self._flush(key, "size")
        elif self.max_delay == 0:
            # Coalescing disabled: every request is its own batch, tallied
            # separately so the stats cannot read as size-cap pressure.
            self._flush(key, "immediate")
        return future

    async def _admitted(self, query, count: int):
        """``(key, prepared)`` with stats accounting for ``count`` requests.

        On a *constrained* session the admission step (which may run a full
        cost-model rewrite the first time a query is seen) is dispatched to
        the thread pool, so the event loop never runs the search.
        """
        if self._closed:
            raise ReproError("the query server has been closed")
        self.stats.submitted += count
        constraints = getattr(self.engine, "constraints", None)
        try:
            if constraints is None or len(constraints) == 0:
                return self.engine.admission(query)
            key_prepared = await asyncio.get_running_loop().run_in_executor(
                self._pool, self.engine.admission, query
            )
        except BaseException:
            # Admission-time failures (e.g. query syntax errors) never form
            # a batch; count them so submitted == served + failed holds.
            self.stats.failed += count
            raise
        if self._closed:  # closed while the admission hop was in flight
            self.stats.failed += count
            raise ReproError("the query server has been closed")
        return key_prepared

    async def submit(self, query, source: "Oid") -> "set[Oid]":
        """Admit one request and await its answer set.

        Unlike :meth:`submit_nowait` (synchronous contract, admission
        inline), a cold constrained admission here runs off the event loop
        — see :meth:`_admitted`.
        """
        key, prepared = await self._admitted(query, 1)
        return await self._admit(key, prepared, source)

    async def submit_many(
        self, query, sources: "Iterable[Oid]"
    ) -> "dict[Oid, set[Oid]]":
        """Admit one request per source (all coalescible) and await them all.

        The admission key is computed once for the whole group (off the
        event loop on a constrained session, like :meth:`submit`).
        """
        source_list = list(sources)
        if not source_list:
            return {}
        key, prepared = await self._admitted(query, len(source_list))
        answers = await asyncio.gather(
            *(self._admit(key, prepared, source) for source in source_list)
        )
        return dict(zip(source_list, answers))

    # -- flushing -------------------------------------------------------------
    def _flush(self, key: str, reason: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:  # raced with another flush path; nothing to do
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        self.stats.batches += 1
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "delay":
            self.stats.delay_flushes += 1
        elif reason == "immediate":
            self.stats.immediate_flushes += 1
        else:
            self.stats.close_flushes += 1
        requests = sum(len(waiting) for waiting in bucket.waiters.values())
        if requests > 1:
            self.stats.coalesced += requests
        if len(bucket.waiters) > self.stats.max_batch_size:
            self.stats.max_batch_size = len(bucket.waiters)
        if bucket.span is not NULL_SPAN:
            # The wait between the bucket's first admission and this flush,
            # as a pre-timed child span — the interval was measured by the
            # admission path, not re-clocked here.
            wait = perf_counter() - bucket.created_at
            bucket.span.event(
                "admission_wait", bucket.created_at, wait, reason=reason
            )
            bucket.span.set(
                reason=reason, sources=len(bucket.waiters), requests=requests
            )
            self._hist_wait.observe(wait)
            self._hist_batch_sources.observe(len(bucket.waiters))
        task = asyncio.get_running_loop().create_task(self._serve(bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _serve(self, bucket: _Bucket) -> None:
        sources = list(bucket.waiters)
        loop = asyncio.get_running_loop()
        tele = self.metrics
        # The evaluation runs on a pool thread, where the event loop's
        # contextvars do not follow; the closure re-activates the batch's
        # evaluate span there so the engine's own spans nest beneath it.
        eval_span = tele.span_under(bucket.span, "evaluate")

        def evaluate():
            with tele.under(eval_span):
                try:
                    return self.engine.query_batch(bucket.query, sources)
                finally:
                    eval_span.end()

        try:
            results = await loop.run_in_executor(self._pool, evaluate)
        except BaseException as error:
            for waiting in bucket.waiters.values():
                for future in waiting:
                    self.stats.failed += 1
                    if not future.done():
                        future.set_exception(error)
            bucket.span.end(error=repr(error))
            self._hist_flush.observe(bucket.span.duration)
            return
        fanout_span = tele.span_under(bucket.span, "fanout")
        for source, waiting in bucket.waiters.items():
            answers = results[source]
            for future in waiting:
                self.stats.served += 1
                if not future.done():
                    future.set_result(answers)
        fanout_span.end()
        bucket.span.end()
        self._hist_flush.observe(bucket.span.duration)

    # -- lifecycle ------------------------------------------------------------
    async def close(self) -> None:
        """Flush pending buckets, drain in-flight batches, release the pool."""
        self._closed = True
        for key in list(self._buckets):
            self._flush(key, "close")
        while self._inflight:
            pending = list(self._inflight)
            await asyncio.gather(*pending, return_exceptions=True)
            self._inflight.difference_update(pending)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "QueryServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def describe(self) -> str:
        return self.stats.summary()

    def __repr__(self) -> str:
        return (
            f"QueryServer({self.engine!r}, max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, pending={len(self._buckets)})"
        )


# -- line protocol -------------------------------------------------------------
# Per-connection (and per-stdin-window) backpressure: a pipelining client may
# stream lines faster than the engine evaluates; beyond this many in-flight
# responses the read loop stops consuming input until one completes, so
# tasks, admission buckets and waiter futures stay bounded.
MAX_INFLIGHT_PER_CONNECTION = 1024


def format_answers(answers: "set[Oid]") -> str:
    """The wire form of one answer set: sorted, space-separated."""
    return " ".join(sorted(map(str, answers)))


def handle_control(server: QueryServer, line: str) -> str:
    """Answer one ``!``-prefixed control line against the live telemetry.

    Verbs (all answered as ``!verb<TAB>one-line-json``, errors as
    ``!verb<TAB>error: ...``):

    * ``!stats`` — the session's full registry snapshot (the same dict
      ``engine.telemetry()`` / ``--stats`` render);
    * ``!trace <id>`` — one recorded trace with its span breakdown;
    * ``!slow [N]`` — the N (default 5) slowest traces, worst first.
    """
    server._control_requests.inc()
    parts = line.split()
    verb, args = parts[0], parts[1:]
    if verb == "!stats":
        snapshot = server.metrics.snapshot()
        return f"!stats\t{json.dumps(snapshot, separators=(',', ':'), default=str)}"
    if verb == "!trace":
        if len(args) != 1:
            return "!trace\terror: usage: !trace <id>"
        trace = server.metrics.tracer.get(args[0])
        if trace is None:
            return f"!trace\terror: unknown trace id {args[0]!r}"
        return f"!trace\t{trace_to_json(trace)}"
    if verb == "!slow":
        count = 5
        if args:
            try:
                count = int(args[0])
            except ValueError:
                return "!slow\terror: usage: !slow [N]"
        return f"!slow\t{slow_log_json(server.metrics.tracer, count)}"
    return f"{verb}\terror: unknown control verb (try !stats, !trace <id>, !slow N)"


async def respond_line(server: QueryServer, line: str) -> str:
    """Serve one ``id<TAB>source<TAB>query`` request line; never raises.

    Malformed lines and evaluation errors come back as ``id<TAB>error: ...``
    so one bad request cannot take down a connection.  Lines starting with
    ``!`` are control verbs answered from live telemetry instead of the
    engine — see :func:`handle_control`.
    """
    if line.startswith("!"):
        return handle_control(server, line)
    parts = line.split("\t", 2)
    if len(parts) != 3 or not parts[0]:
        ident = parts[0] if parts and parts[0] else "?"
        return f"{ident}\terror: malformed request (want id<TAB>source<TAB>query)"
    ident, source, query = parts
    try:
        answers = await server.submit(query, source)
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    except Exception as error:
        return f"{ident}\terror: {error}"
    return f"{ident}\t{format_answers(answers)}"


async def serve_request_lines(
    server: QueryServer,
    lines: "Iterable[str]",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
    emit: "Callable[[str], None] | None" = None,
) -> "list[str]":
    """Serve a *batch* of request lines concurrently, in input order.

    For interactive request/response streams use :func:`serve_stream`
    (responses as they complete); this helper is for pre-collected batches
    where input-order responses matter.  Lines are admitted in windows of
    ``max_inflight``: within a window every
    request is in flight before any is awaited, so requests sharing a DFA
    coalesce into shared batches exactly as they would over TCP, while an
    arbitrarily long input stream never materializes more than one window of
    futures/buckets at a time (the same bound the TCP front-end applies per
    connection).  Responses come back in input order (correlation is
    positional *and* by id).

    With ``emit``, each window's responses are delivered through the
    callback as soon as the window drains — and *not* accumulated, so an
    endless producer gets incremental answers in bounded memory; the return
    value is then an empty list.
    """
    responses: "list[str]" = []

    async def drain(window: "list[str]") -> None:
        answered = await asyncio.gather(
            *(respond_line(server, pending) for pending in window)
        )
        if emit is None:
            responses.extend(answered)
        else:
            for response in answered:
                emit(response)

    window: "list[str]" = []
    for line in lines:
        if not line.strip():
            continue
        window.append(line)
        if len(window) >= max_inflight:
            await drain(window)
            window = []
    if window:
        await drain(window)
    return responses


async def serve_stream(
    server: QueryServer,
    readline,
    emit: "Callable[[str], None]",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> None:
    """Serve an *interactive* line stream: responses emitted as they land.

    ``readline`` is an async callable returning the next raw line (an empty
    string at end of input); ``emit`` receives each response line.  Every
    request runs as its own task — exactly the TCP front-end's behavior, so
    a request/response client that waits for an answer before sending the
    next line never deadlocks, and concurrent requests still coalesce
    through the admission queue.  Responses arrive in *completion* order;
    the ``id`` is what correlates them.  In-flight responses are bounded by
    ``max_inflight`` (the read loop stops consuming input until one
    completes).
    """
    tasks: "set[asyncio.Task]" = set()
    loop = asyncio.get_running_loop()

    async def respond(line: str) -> None:
        emit(await respond_line(server, line))

    while True:
        raw = await readline()
        if not raw:
            break
        line = raw.rstrip("\r\n")
        if not line.strip():
            continue
        if len(tasks) >= max_inflight:
            await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
        task = loop.create_task(respond(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*list(tasks))


async def serve_connection(
    server: QueryServer,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> None:
    """Serve one TCP client: a task per request line, responses as they land."""
    tasks: "set[asyncio.Task]" = set()
    # One drain at a time per connection: concurrent waiters on one
    # StreamWriter's drain() were only supported from CPython 3.10.5's
    # FlowControlMixin; serializing write+drain keeps the oldest supported
    # patch levels correct (whole lines stay atomic either way).
    write_lock = asyncio.Lock()

    async def respond(line: str) -> None:
        response = await respond_line(server, line)
        async with write_lock:
            writer.write(response.encode("utf-8") + b"\n")
            try:
                await writer.drain()
            except ConnectionError:  # pragma: no cover - client went away
                pass

    try:
        while True:
            try:
                raw = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # A request line exceeded the stream limit.  The buffered
                # bytes hold no separator, so framing is lost for good:
                # answer with one error line, finish the in-flight
                # responses, and close — without taking them down with it.
                writer.write(b"?\terror: request line too long\n")
                break
            except (ConnectionError, OSError):
                # Abrupt disconnect (reset while blocked in readline): no
                # peer left to answer, but the in-flight responses still
                # drain below so their tasks end cleanly instead of racing
                # the close and logging as unhandled task errors.
                break
            if not raw:
                break
            line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
            if not line:
                continue
            if len(tasks) >= max_inflight:
                await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
            task = asyncio.get_running_loop().create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - client went away
            pass


async def serve_tcp(
    server: QueryServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> "asyncio.AbstractServer":
    """Open a TCP front-end for ``server``; returns the listening socket.

    ``port=0`` binds an ephemeral port — read the real one off
    ``result.sockets[0].getsockname()``.  ``max_inflight`` bounds each
    connection's outstanding responses (see
    :data:`MAX_INFLIGHT_PER_CONNECTION`).  The caller owns both lifetimes:
    close the returned socket server first, then ``await server.close()``.
    """
    return await asyncio.start_server(
        lambda reader, writer: serve_connection(
            server, reader, writer, max_inflight=max_inflight
        ),
        host=host,
        port=port,
        # Generous per-line budget: queries are expressions, not documents,
        # but the default 64 KiB would tear down a connection mid-stream.
        limit=1 << 20,
    )
