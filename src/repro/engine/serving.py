"""Async serving layer: shared-batch query admission + concurrent supersteps.

Production RPQ evaluators decouple the evaluation loop from request arrival:
"Answering Constraint Path Queries over Graphs" serves constraint path
queries through an evaluation loop that batches work against the graph, and
the enumeration literature (Martens & Trautner) motivates streaming answers
with bounded delay rather than blocking every caller on a private full
evaluation.  This module is that layer for the compiled engine, in two
independent halves:

* :class:`QueryServer` — an **admission queue** in front of an
  :class:`~repro.engine.session.Engine` or
  :class:`~repro.engine.sharding.ShardedEngine`.  Requests arrive as
  ``await server.submit(QueryRequest(query=..., sources=(source,)))`` (one
  structured :class:`~repro.engine.request.QueryRequest`; the legacy
  positional pair remains a one-release ``DeprecationWarning`` shim);
  in-flight requests whose queries
  compile to the *same DFA* (same
  :meth:`~repro.engine.session.Engine.admission_key` — the canonical
  constraint-rewritten expression) are coalesced into one shared
  ``query_batch`` evaluation under a **max-batch-size / max-delay** policy:
  a bucket flushes as soon as it holds ``max_batch`` requests (futures —
  duplicate sources count, matching the stats; see :class:`ServingStats`),
  or ``max_delay`` seconds after its first request, whichever comes first.
  Flushes execute on a small thread pool so the event loop never blocks on
  an engine round-trip, and the per-source answer sets are fanned back out
  to the waiting futures.  The batched bitmask executor makes the shared
  run cost barely more than a single-source one, so a gateway serving many
  concurrent clients pays one traversal where naive serving pays dozens;

* :class:`SuperstepScheduler` — a thread-pool **superstep scheduler** for
  the sharded engine's scatter-gather fixpoint.  The per-shard local
  fixpoints of one superstep are independent by construction (each touches
  only its own shard's compiled graph and frontier; cross-shard facts
  exchange at the barrier), so the scheduler runs them concurrently and
  joins at the barrier.  The numpy executor releases the GIL inside its
  ``bitwise_or.reduceat`` hot loops, so shard steps genuinely overlap on
  cores; the pure-Python backend still wins when steps interleave with I/O.
  Installed via ``ShardedEngine.open(..., concurrency=N)``; the observed
  peak of simultaneously in-flight shard steps is exported as
  :attr:`SuperstepScheduler.concurrent_steps`.

On top of the shared-batch core, answers also *stream*:
:meth:`QueryServer.submit_stream` admits like ``submit`` but returns an
:class:`AnswerStream` — an async iterator that yields each answer the
moment the engine derives the accepting fact (per fixpoint round / per
shard-local superstep round, through the engines'
``query_batch_streaming``), instead of blocking on the whole batch
fixpoint.  Time-to-first-answer is the interactive latency story
(``serving_first_answer_seconds``); the full answer set still resolves at
batch completion and is identical to ``submit``'s.  Requests whose source
is already covered by an *in-flight* batch of the same key merge into it
(overlapping source sets share one evaluation — see :meth:`_admit`).

A thin line protocol (:func:`serve_connection` / :func:`serve_tcp` /
:func:`serve_stream` / :func:`serve_request_lines`) adapts the server to
stdin and TCP front-ends
for the CLI's ``serve`` subcommand: one request per line,
``id<TAB>source<TAB>query``, answered as ``id<TAB>answer answer ...``
(answers sorted, space-separated; errors as ``id<TAB>error: ...``).
An optional fourth request field selects a delivery mode: ``LIMIT n
[CURSOR c]`` answers one sorted page at a time behind opaque resume
cursors, and ``STREAM`` emits ``id<TAB>+<TAB>answer`` chunk lines as
answers land before the standard full response closes the request — see
:func:`respond_line` for the grammar.
Responses are written as they complete, so slow queries never head-of-line
block fast ones — the ``id`` is what correlates them.

Thread-safety contracts this module relies on (and PR 5 audited): the
engines' compile caches and rewrite memos are lock-guarded, statistics
counters mutate under the session lock, and the lazy numpy edge-array
lowering is race-free — see the ``Engine`` / ``ShardedEngine`` docstrings.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import threading
import warnings
from bisect import bisect_right
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from ..exceptions import ReproError
from .conjunctive import (
    ConjunctiveQuery,
    ConjunctiveResult,
    PlanExecution,
    is_crpq_text,
)
from .request import CRPQRequest, QueryRequest, normalize
from .telemetry import (
    DEFAULT_SIZE_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    Telemetry,
    slow_log_json,
    trace_to_json,
    witnessed_lock,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.instance import Oid
    from .session import Engine
    from .sharding import ShardedEngine

T = TypeVar("T")

# Engine threads wake the event loop for incremental answer delivery at
# most once per interval (plus a final flush at completion): delivery stays
# prompt — the interval is a small fraction of any real first-answer
# latency — without a per-fixpoint-round cross-thread wake-up storm taxing
# the evaluations still running.
DRAIN_WAKE_INTERVAL_S = 0.002


class SuperstepScheduler:
    """Runs the independent per-shard steps of one superstep on threads.

    :meth:`run` is a fork-join barrier: every step of the superstep is
    submitted to the pool, and the call returns only when all of them have
    finished — which is exactly the bulk-synchronous contract the sharded
    engine's frontier exchange needs.  The scheduler never reorders results
    (``results[i]`` belongs to ``steps[i]``) and re-raises the first step
    exception after the barrier, so a failing shard cannot leave a
    half-joined superstep behind.

    Statistics: ``steps`` counts every step ever run, ``barriers`` every
    :meth:`run` call, and ``concurrent_steps`` is the *peak* number of steps
    observed simultaneously in flight — the observable proof that per-shard
    supersteps really overlap (> 1 whenever two shards' fixpoints ran at the
    same time).
    """

    # The counters are ``:mutate`` — written under the lock, point-read by
    # registry gauges and ``__repr__`` without it (one int read each).
    GUARDED_BY = {
        "_in_flight": "_lock",
        "steps": "_lock:mutate",
        "barriers": "_lock:mutate",
        "concurrent_steps": "_lock:mutate",
    }

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ReproError("a superstep scheduler needs at least one worker")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-superstep"
        )
        # Spawn every worker now, not lazily at the first contended
        # superstep (thread creation under a busy GIL stalls for
        # milliseconds).
        ready = threading.Barrier(max_workers + 1)
        for _ in range(max_workers):
            self._pool.submit(ready.wait)
        ready.wait()
        self._lock = witnessed_lock("SuperstepScheduler._lock")
        self._in_flight = 0
        self._closed = False
        self.steps = 0
        self.barriers = 0
        self.concurrent_steps = 0

    def run(self, steps: "Sequence[Callable[[], T]]") -> "list[T]":
        """Execute every thunk, in parallel, and join: the superstep barrier."""
        if self._closed:
            raise ReproError("the superstep scheduler has been closed")
        with self._lock:
            self.barriers += 1
        if len(steps) <= 1:
            # One active shard: no parallelism to be had, skip the pool hop.
            return [self._tracked(step) for step in steps]
        futures = [self._pool.submit(self._tracked, step) for step in steps]
        results: "list[T]" = []
        error: "BaseException | None" = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # join every step before raising
                if error is None:
                    error = exc
                results.append(None)  # type: ignore[arg-type]
        if error is not None:
            raise error
        return results

    def _tracked(self, step: "Callable[[], T]") -> T:
        with self._lock:
            self._in_flight += 1
            self.steps += 1
            if self._in_flight > self.concurrent_steps:
                self.concurrent_steps = self._in_flight
        try:
            return step()
        finally:
            with self._lock:
                self._in_flight -= 1

    def close(self) -> None:
        """Release the worker threads (idempotent)."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SuperstepScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SuperstepScheduler(max_workers={self.max_workers}, "
            f"steps={self.steps}, barriers={self.barriers}, "
            f"concurrent_steps={self.concurrent_steps})"
        )


class StealQueue:
    """A work-stealing pool of chunk tasks for one superstep.

    The sharded engine splits an oversized shard-local fixpoint into
    word-aligned bit-range chunks (disjoint word columns of the packed mask
    tensor, so chunks of the same shard never write the same memory) and
    tags each task with the shard that owns it.  Every superstep step drains
    the queue through :meth:`drain`: a claimant takes its *own* oldest task
    first (FIFO — owners work through their chunks in seeding order), and
    only once its own work is gone does it **steal** the newest foreign task
    from the tail — the classic deque discipline, which keeps thieves away
    from the cache lines the owner is about to touch.  A claim whose owner
    differs from the claimant counts as one steal event
    (``sharded_steal_events``); that is the observable proof that an idle
    worker relieved the slowest shard instead of waiting at the barrier.

    Tasks run *outside* the queue lock (claims are O(queue) pointer moves),
    so the pool never serializes the fixpoints it exists to parallelize.
    """

    # ``puts``/``steals`` are written under the lock and point-read by the
    # superstep barrier and gauges after the pool has drained.
    GUARDED_BY = {
        "_tasks": "_lock",
        "puts": "_lock:mutate",
        "steals": "_lock:mutate",
    }

    def __init__(self) -> None:
        self._lock = witnessed_lock("StealQueue._lock")
        self._tasks: "deque[tuple[int, Callable[[], None]]]" = deque()
        self.puts = 0
        self.steals = 0

    def put(self, owner: int, task: "Callable[[], None]") -> None:
        """Enqueue one chunk task on behalf of ``owner``."""
        with self._lock:
            self._tasks.append((owner, task))
            self.puts += 1

    def claim(self, claimant: int) -> "tuple[int, Callable[[], None]] | None":
        """Pop one task: the claimant's own oldest, else steal the newest.

        Returns ``(owner, task)`` or ``None`` when the pool is empty; a
        foreign claim increments :attr:`steals`.
        """
        with self._lock:
            if not self._tasks:
                return None
            for index, (owner, task) in enumerate(self._tasks):
                if owner == claimant:
                    del self._tasks[index]
                    return owner, task
            owner, task = self._tasks.pop()
            self.steals += 1
            return owner, task

    def drain(self, claimant: int) -> "tuple[int, int]":
        """Run tasks until the pool is empty; returns ``(own, stolen)``.

        Tasks execute outside the lock; an exception aborts this claimant's
        drain (the raising task's superstep step re-raises at the barrier)
        while other steps keep draining what remains.
        """
        own = stolen = 0
        while True:
            claimed = self.claim(claimant)
            if claimed is None:
                return own, stolen
            owner, task = claimed
            if owner == claimant:
                own += 1
            else:
                stolen += 1
            task()


@dataclass
class ServingStats:
    """Counters of one :class:`QueryServer`'s lifetime.

    The size policy and every stat derived from it count **requests**
    (waiter futures), not distinct sources: a bucket flushes once it holds
    ``max_batch`` requests, ``max_batch_size`` records the widest flush in
    requests, and ``coalesced`` counts requests that shared a flush with at
    least one other.  Duplicate sources therefore fill a bucket exactly
    like distinct ones — the trigger and the counters can no longer
    disagree about what a "full" batch means (the trigger used to count
    distinct sources while the stats counted futures, so duplicate-heavy
    traffic never size-flushed yet reported oversized batches).  Distinct
    sources per flush remain observable through the
    ``serving_batch_sources`` histogram, which is the evaluation-cost view.
    """

    submitted: int = 0
    served: int = 0
    failed: int = 0
    batches: int = 0
    # Requests that shared their batch with at least one other request.
    coalesced: int = 0
    # Widest admitted batch (requests of one flush; see the class docstring).
    max_batch_size: int = 0
    size_flushes: int = 0
    delay_flushes: int = 0
    # Flushes forced by max_delay == 0 (coalescing disabled).
    immediate_flushes: int = 0
    close_flushes: int = 0
    # Requests that attached to an already-evaluating batch of their key
    # (overlapping source sets; resolved by that batch's fan-out).
    merged: int = 0
    # Requests admitted through submit_stream (a subset of submitted).
    streamed: int = 0
    # Conjunctive queries served end to end.  Their per-atom batches flow
    # through the ordinary admission counters (each atom source is one
    # submitted/served request), so these two count whole CRPQs on top.
    crpq_submitted: int = 0
    crpq_served: int = 0

    def summary(self) -> str:
        return (
            f"requests: {self.submitted} submitted, {self.served} served, "
            f"{self.failed} failed ({self.streamed} streamed, "
            f"{self.merged} merged in-flight); batches: {self.batches} "
            f"({self.coalesced} requests coalesced, widest {self.max_batch_size}); "
            f"flushes: {self.size_flushes} size, {self.delay_flushes} delay, "
            f"{self.immediate_flushes} immediate, {self.close_flushes} close"
        )

    _GAUGES = (
        ("submitted", "requests admitted (or rejected at admission)"),
        ("served", "requests resolved with an answer set"),
        ("failed", "requests resolved with an error"),
        ("batches", "shared-batch flushes"),
        ("coalesced", "requests that shared their batch with another"),
        ("max_batch_size", "widest admitted batch (requests)"),
        ("size_flushes", "flushes forced by max_batch"),
        ("delay_flushes", "flushes forced by max_delay"),
        ("immediate_flushes", "flushes with coalescing disabled (max_delay=0)"),
        ("close_flushes", "flushes forced by close()"),
        ("merged", "requests attached to an in-flight batch of their key"),
        ("streamed", "requests admitted via submit_stream"),
        ("crpq_submitted", "conjunctive queries admitted"),
        ("crpq_served", "conjunctive queries answered end to end"),
    )

    def register(self, registry: MetricsRegistry, prefix: str = "serving") -> None:
        """Expose every counter through ``registry`` as a callback gauge.

        The server registers into its *engine's* registry (see
        :class:`QueryServer`), so one session snapshot covers admission and
        evaluation together.  Gauge registration is last-wins: a second
        server over the same engine re-points the serving gauges at its own
        stats, which is the useful reading for the common
        one-server-at-a-time lifecycle.
        """
        for attr, help_text in self._GAUGES:
            registry.gauge(
                f"{prefix}_{attr}", help_text, lambda a=attr: getattr(self, a)
            )


class _Bucket:
    """One admission bucket: every in-flight request sharing a DFA key."""

    __slots__ = (
        "query", "waiters", "streams", "requests", "timer", "span", "created_at"
    )

    def __init__(self, query, span=NULL_SPAN, created_at: float = 0.0) -> None:
        self.query = query  # the prepared (rewritten) query, compiled once
        self.waiters: "dict[Oid, list[asyncio.Future]]" = {}
        # Streaming requests, keyed like waiters; every stream's ``future``
        # is *also* in waiters, so fan-out/error accounting sees one kind.
        self.streams: "dict[Oid, list[AnswerStream]]" = {}
        # Size-policy unit: admitted requests (futures), incremented on every
        # admission including duplicate sources — see ServingStats.
        self.requests = 0
        self.timer: "asyncio.TimerHandle | None" = None
        # Telemetry: the batch's root span ("serve.batch"), opened at bucket
        # creation so the admission wait is on the trace; NULL_SPAN when
        # capture is disabled.
        self.span = span
        self.created_at = created_at


class AnswerStream:
    """Incrementally delivered answers of one streamed request.

    Returned by :meth:`QueryServer.submit_stream`.  Iterate asynchronously to
    receive each answer the moment the engine derives its accepting fact::

        stream = server.submit_stream(QueryRequest(query=..., sources=(source,)))
        async for answer in stream:
            ...                      # answers land per fixpoint round
        answers = await stream.result()   # the complete set, == submit()'s

    Each answer is yielded exactly once, in derivation order; iteration ends
    when the batch evaluation completes.  :meth:`result` awaits the full
    answer set (identical to what ``await server.submit(...)`` returns) and
    re-raises the batch's error if evaluation failed — the same error the
    iterator raises mid-loop.  All methods are event-loop-only, matching the
    rest of the serving layer.
    """

    __slots__ = ("future", "_pending", "_streamed", "_waiter", "_done",
                 "_error", "_on_first")

    def __init__(self, loop: "asyncio.AbstractEventLoop", on_first=None) -> None:
        # Resolves to the full answer set at batch completion; registered in
        # the bucket's waiters, so served/failed accounting is uniform.
        self.future: "asyncio.Future" = loop.create_future()
        self._pending: "deque" = deque()
        self._streamed: list = []
        self._waiter: "asyncio.Future | None" = None
        self._done = False
        self._error: "BaseException | None" = None
        # Fired once, when the first answer arrives (or at completion for an
        # empty answer set) — the serving_first_answer_seconds hook.
        self._on_first = on_first

    def _wake(self) -> None:
        waiter, self._waiter = self._waiter, None
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    def _first(self) -> None:
        on_first, self._on_first = self._on_first, None
        if on_first is not None:
            on_first()

    def _push(self, answers: "Iterable[Oid]") -> None:
        """Deliver newly derived answers (event-loop only).

        The executor contract already guarantees each accepting fact lands
        at most once per evaluation, so delivery is a plain extend; the
        wire-space reconciliation against the full answer set is deferred
        to :meth:`_finish`, keeping this per-round path cheap while the
        evaluation threads are still computing.  A straggler push after
        completion is dropped — the finish path already reconciled the
        full set.
        """
        if self._done or not answers:
            return
        self._streamed.extend(answers)
        self._first()
        self._pending.extend(answers)
        self._wake()

    def _finish(self, answers: "set[Oid]") -> None:
        """Complete the stream with the full answer set (event-loop only)."""
        # Anything the incremental path missed (e.g. the engine cannot
        # stream) still reaches the iterator, in sorted order for stability.
        # Reconciliation happens in wire (``str``) space while raw answers
        # are what the iterator yields — so an engine that emits an answer
        # raw and a completion path that re-walks the full set cannot
        # deliver the same logical answer twice under two types.
        seen = {str(a) for a in self._streamed}
        remainder = sorted((a for a in answers if str(a) not in seen), key=str)
        self._pending.extend(remainder)
        self._done = True
        # An empty answer set's "first answer" is its completion: the
        # histogram then measures time-to-certainty, never goes unobserved.
        self._first()
        if not self.future.done():
            self.future.set_result(answers)
        self._wake()

    def _fail(self, error: BaseException) -> None:
        self._done = True
        self._error = error
        self._first()
        if not self.future.done():
            self.future.set_exception(error)
            # The batch error is surfaced via result()/iteration; stop the
            # loop's unretrieved-exception warning if the caller only
            # iterates.
            self.future.exception()
        self._wake()

    async def result(self) -> "set[Oid]":
        """Await the complete answer set (identical to ``submit``'s)."""
        return await self.future

    def __aiter__(self) -> "AnswerStream":
        return self

    async def __anext__(self) -> "Oid":
        while True:
            if self._pending:
                return self._pending.popleft()
            if self._error is not None:
                raise self._error
            if self._done:
                raise StopAsyncIteration
            assert self._waiter is None, "one consumer per AnswerStream"
            self._waiter = asyncio.get_running_loop().create_future()
            await self._waiter


class QueryServer:
    """Admission queue that coalesces compatible requests into shared batches.

    Construct via ``engine.as_server(...)`` (both session kinds) or directly;
    the engine's ``query_batch`` must be thread-safe (both are — see their
    docstrings).  Usage::

        async with engine.as_server(max_batch=64, max_delay=0.002) as server:
            request = QueryRequest(query="a (b + c)*", sources=("p0",))
            answers = await server.submit(request)

    ``submit`` admits the request into the bucket of its
    :meth:`~repro.engine.session.Engine.admission_key`; the bucket flushes
    into one shared ``query_batch`` when it holds ``max_batch`` requests
    (futures — duplicate sources count; see :class:`ServingStats`) or
    ``max_delay`` seconds after its first request.  Flushes run
    on a ``concurrency``-wide thread pool (default 1), so distinct-DFA
    batches can evaluate in parallel while the event loop keeps admitting.
    :meth:`submit_stream` admits identically but returns an
    :class:`AnswerStream` that yields answers as the engine derives them.
    A request whose source is already covered by an *in-flight* batch of
    its key merges into that batch instead of opening a new bucket —
    overlapping source sets across requests share one evaluation.

    The answer ``set`` a request resolves to may be shared with other
    coalesced requests of the same ``(query, source)`` — treat it as
    read-only.  :meth:`close` flushes every pending bucket and drains
    in-flight batches; it is what ``async with`` calls on exit.
    """

    def __init__(
        self,
        engine: "Engine | ShardedEngine",
        *,
        max_batch: int = 64,
        max_delay: float = 0.002,
        concurrency: "int | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ReproError("max_batch must admit at least one request")
        if max_delay < 0:
            raise ReproError("max_delay cannot be negative")
        if concurrency is not None and concurrency < 1:
            raise ReproError("concurrency must be a positive worker count")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = ServingStats()
        # The serving layer shares the *engine's* telemetry bundle: one
        # registry snapshot (and one trace tree per batch) covers admission,
        # compile and evaluation.  A bare test double without a ``metrics``
        # attribute gets a private bundle so the server still works.
        self.metrics: Telemetry = getattr(engine, "metrics", None) or Telemetry()
        registry = self.metrics.registry
        self.stats.register(registry)
        self._hist_request = registry.histogram(
            "serving_request_seconds", "submit-to-resolve latency per request"
        )
        self._hist_flush = registry.histogram(
            "serving_flush_seconds",
            "bucket lifetime: first admission to answer fan-out",
        )
        self._hist_wait = registry.histogram(
            "serving_admission_wait_seconds",
            "bucket wait between first admission and flush",
        )
        self._hist_batch_sources = registry.histogram(
            "serving_batch_sources", "distinct sources per flushed batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._hist_first_answer = registry.histogram(
            "serving_first_answer_seconds",
            "submit-to-first-streamed-answer latency per streamed request",
        )
        self._control_requests = registry.counter(
            "serving_control_requests", "line-protocol control verbs handled"
        )
        self._buckets: "dict[str, _Bucket]" = {}
        # Flushed-but-unresolved buckets by key, newest last: the merge
        # target for requests whose source an in-flight batch already covers.
        self._serving: "dict[str, list[_Bucket]]" = {}
        self._inflight: "set[asyncio.Task]" = set()
        self._pool = ThreadPoolExecutor(
            max_workers=concurrency or 1, thread_name_prefix="repro-serve"
        )
        # Spawn every evaluation worker up front: lazy per-submit thread
        # creation otherwise lands mid-load, where starting a thread while
        # evaluations hold the GIL stalls the event loop for milliseconds
        # per flush.
        ready = threading.Barrier((concurrency or 1) + 1)
        for _ in range(concurrency or 1):
            self._pool.submit(ready.wait)
        ready.wait()
        self._closed = False

    # -- admission ------------------------------------------------------------
    def _lower(self, query, source, signature: str) -> QueryRequest:
        """Lower a ``submit*`` argument pair to a canonical request.

        Structured shapes (:class:`~repro.engine.request.QueryRequest`,
        ``CRPQRequest``, ``ConjunctiveQuery``) pass through
        :func:`~repro.engine.request.normalize` untouched; the legacy
        positional ``(query string, source)`` form still works but emits a
        :class:`DeprecationWarning` naming ``signature`` — it remains a
        thin shim over the structured path for one release.
        """
        if isinstance(query, (QueryRequest, CRPQRequest, ConjunctiveQuery)):
            return normalize(query) if source is None else normalize(query, source)
        warnings.warn(
            f"{signature} with a positional query is deprecated; pass a "
            "repro.engine.request.QueryRequest (the shim lasts one release)",
            DeprecationWarning,
            stacklevel=3,
        )
        return normalize(query, source)

    @staticmethod
    def _single_source(request: QueryRequest, method: str) -> "Oid":
        if len(request.sources) != 1:
            raise ReproError(
                f"{method} takes exactly one source "
                f"(got {len(request.sources)}); use submit_many for fan-out"
            )
        return request.sources[0]

    def submit_nowait(self, query, source: "Oid | None" = None) -> "asyncio.Future":
        """Admit one scalar request; returns the future of its answer set.

        Accepts a scalar :class:`~repro.engine.request.QueryRequest` (the
        structured form) or the deprecated positional ``(query, source)``
        pair.  Conjunctive requests need the awaitable paths
        (:meth:`submit` / :meth:`submit_conjunctive`) — their joins cannot
        resolve synchronously.

        Must be called from a running event loop (the flush timer and the
        result fan-out live on it).  Admission computes the request's
        coalescing key inline: a memo hit for every query seen before, and
        one constraint-rewrite pass the first time a constrained session
        sees a new query — the rewrite memo's lock is never held across
        that search, so admissions don't stall behind each other.
        """
        request = self._lower(query, source, "QueryServer.submit_nowait(query, source)")
        if request.is_conjunctive:
            raise ReproError(
                "conjunctive requests resolve through submit()/submit_conjunctive()"
            )
        query = request.query
        source = self._single_source(request, "submit_nowait")
        if self._closed:
            raise ReproError("the query server has been closed")
        loop = asyncio.get_running_loop()
        self.stats.submitted += 1
        # The bucket holds the *prepared* (constraint-rewritten) form, so
        # the eventual flush evaluates it directly instead of re-preparing.
        try:
            key, prepared = self.engine.admission(query)
        except BaseException:
            # Admission-time failures (e.g. query syntax errors) never form
            # a batch; count them so submitted == served + failed holds.
            self.stats.failed += 1
            raise
        return self._admit(key, prepared, source)

    def _admit(self, key: str, prepared, source: "Oid") -> "asyncio.Future":
        """Insert one admitted request into its bucket (event-loop only).

        Merge-in-flight: when no bucket is *pending* for ``key`` but an
        already-flushed batch of the same key is still evaluating and its
        source set covers ``source``, the request attaches to that batch's
        waiters instead of opening a fresh bucket — its answers are already
        being computed, so the overlapping request rides the in-flight
        evaluation for free (``stats.merged``).  Merged requests do not
        count toward any size trigger (the batch's shape is already fixed),
        and streaming requests never merge (the rounds they would stream
        already happened).
        """
        loop = asyncio.get_running_loop()
        traced = self.metrics.enabled  # one flag read per admission
        bucket = self._buckets.get(key)
        if bucket is None:
            for serving in self._serving.get(key, ()):
                if serving.waiters.get(source):
                    future = loop.create_future()
                    serving.waiters[source].append(future)
                    self.stats.merged += 1
                    if traced:
                        self._observe_request_latency(future)
                    return future
            bucket = self._bucket(key, prepared, loop, traced)
        future: "asyncio.Future" = loop.create_future()
        bucket.waiters.setdefault(source, []).append(future)
        bucket.requests += 1
        if traced:
            self._observe_request_latency(future)
        self._maybe_flush(key, bucket)
        return future

    def _bucket(self, key: str, prepared, loop, traced: bool) -> _Bucket:
        """Open (and register) a fresh pending bucket for ``key``."""
        if traced:
            bucket = _Bucket(
                prepared,
                span=self.metrics.span("serve.batch", key=key),
                created_at=perf_counter(),
            )
        else:
            bucket = _Bucket(prepared)
        self._buckets[key] = bucket
        if self.max_delay > 0:
            bucket.timer = loop.call_later(
                self.max_delay, self._flush, key, "delay"
            )
        return bucket

    def _observe_request_latency(self, future: "asyncio.Future") -> None:
        # Per-request submit-to-resolve latency, stamped at admission and
        # observed when the future settles (success or failure alike).
        admitted_at = perf_counter()
        future.add_done_callback(
            lambda _f, _t=admitted_at: self._hist_request.observe(
                perf_counter() - _t
            )
        )

    def _maybe_flush(self, key: str, bucket: _Bucket) -> None:
        # Size policy counts requests (futures), matching the stats — see
        # ServingStats for why duplicates must advance the trigger.
        if bucket.requests >= self.max_batch:
            self._flush(key, "size")
        elif self.max_delay == 0:
            # Coalescing disabled: every request is its own batch, tallied
            # separately so the stats cannot read as size-cap pressure.
            self._flush(key, "immediate")

    async def _admitted(self, query, count: int):
        """``(key, prepared)`` with stats accounting for ``count`` requests.

        On a *constrained* session the admission step (which may run a full
        cost-model rewrite the first time a query is seen) is dispatched to
        the thread pool, so the event loop never runs the search.
        """
        if self._closed:
            raise ReproError("the query server has been closed")
        self.stats.submitted += count
        constraints = getattr(self.engine, "constraints", None)
        try:
            if constraints is None or len(constraints) == 0:
                # repro: allow(LoopNeverBlocks) unconstrained admission is parse+memo only (no rewrite search); the cold constrained path below hops to the pool
                return self.engine.admission(query)
            key_prepared = await asyncio.get_running_loop().run_in_executor(
                self._pool, self.engine.admission, query
            )
        except BaseException:
            # Admission-time failures (e.g. query syntax errors) never form
            # a batch; count them so submitted == served + failed holds.
            self.stats.failed += count
            raise
        if self._closed:  # closed while the admission hop was in flight
            self.stats.failed += count
            raise ReproError("the query server has been closed")
        return key_prepared

    async def submit(self, query, source: "Oid | None" = None):
        """Admit one request and await its result.

        Takes a :class:`~repro.engine.request.QueryRequest` (or the
        deprecated positional pair).  A scalar request resolves to its
        answer set; a conjunctive request is delegated to
        :meth:`submit_conjunctive` and resolves to a
        :class:`~repro.engine.conjunctive.ConjunctiveResult`.  Unlike
        :meth:`submit_nowait` (synchronous contract, admission inline), a
        cold constrained admission here runs off the event loop — see
        :meth:`_admitted`.
        """
        request = self._lower(query, source, "QueryServer.submit(query, source)")
        if request.is_conjunctive:
            return await self.submit_conjunctive(request.query)
        key, prepared = await self._admitted(request.query, 1)
        return await self._admit(key, prepared, self._single_source(request, "submit"))

    def submit_stream(self, query, source: "Oid | None" = None) -> AnswerStream:
        """Admit one request; answers stream out as the engine derives them.

        Synchronous like :meth:`submit_nowait` (event-loop only, admission
        inline); returns an :class:`AnswerStream` immediately.  The request
        coalesces with plain ``submit`` requests into the same shared
        batches — the whole bucket is then evaluated through the engine's
        ``query_batch_streaming``, so coalesced non-streaming requests cost
        nothing extra and streamed requests see per-round answers.  On an
        engine without ``query_batch_streaming`` the stream degrades
        gracefully: all answers arrive at completion.  Streaming requests
        never merge into an in-flight batch (its early rounds — and their
        answers — already happened); they always join or open a pending
        bucket.

        Accepts a scalar :class:`~repro.engine.request.QueryRequest` (its
        ``stream`` flag is implied) or the deprecated positional pair.
        Conjunctive requests cannot stream — a join's rows are not known
        until its last atom resolves.
        """
        request = self._lower(query, source, "QueryServer.submit_stream(query, source)")
        if request.is_conjunctive:
            raise ReproError("conjunctive requests cannot stream (rows land at join completion)")
        query = request.query
        source = self._single_source(request, "submit_stream")
        if self._closed:
            raise ReproError("the query server has been closed")
        loop = asyncio.get_running_loop()
        self.stats.submitted += 1
        self.stats.streamed += 1
        try:
            key, prepared = self.engine.admission(query)
        except BaseException:
            self.stats.failed += 1
            raise
        admitted_at = perf_counter()
        stream = AnswerStream(
            loop,
            on_first=lambda _t=admitted_at: self._hist_first_answer.observe(
                perf_counter() - _t
            ),
        )
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._bucket(key, prepared, loop, self.metrics.enabled)
        bucket.waiters.setdefault(source, []).append(stream.future)
        bucket.streams.setdefault(source, []).append(stream)
        bucket.requests += 1
        if self.metrics.enabled:
            self._observe_request_latency(stream.future)
        self._maybe_flush(key, bucket)
        return stream

    async def submit_many(
        self, query, sources: "Iterable[Oid] | None" = None
    ) -> "dict[Oid, set[Oid]]":
        """Admit one request per *distinct* source and await them all.

        Takes a scalar :class:`~repro.engine.request.QueryRequest` whose
        ``sources`` field carries the fan-out (or the deprecated positional
        ``(query, sources)`` pair).  The admission key is computed once for
        the whole group (off the event loop on a constrained session, like
        :meth:`submit`).  Sources are deduplicated first
        (order-preserving): the returned mapping has one entry per distinct
        source either way, so admitting a request per duplicate only
        inflated ``submitted``/``served`` with phantom requests no caller
        could observe — deduplicating keeps ``submitted == served + failed``
        an exact invariant under repeated sources.
        """
        if isinstance(query, (QueryRequest, CRPQRequest, ConjunctiveQuery)):
            if sources is not None:
                raise ReproError(
                    "pass sources inside the QueryRequest, not alongside it"
                )
            request = normalize(query)
        else:
            warnings.warn(
                "QueryServer.submit_many(query, sources) with a positional "
                "query is deprecated; pass a repro.engine.request."
                "QueryRequest (the shim lasts one release)",
                DeprecationWarning,
                stacklevel=2,
            )
            request = normalize(query, sources=tuple(sources or ()))
        if request.is_conjunctive:
            raise ReproError(
                "a conjunctive request answers one relation, not a per-source "
                "mapping; use submit()/submit_conjunctive()"
            )
        source_list = list(dict.fromkeys(request.sources))
        if not source_list:
            return {}
        key, prepared = await self._admitted(request.query, len(source_list))
        answers = await asyncio.gather(
            *(self._admit(key, prepared, source) for source in source_list)
        )
        return dict(zip(source_list, answers))

    async def submit_conjunctive(
        self, query, *, strategy: str = "optimized"
    ) -> ConjunctiveResult:
        """Evaluate a conjunctive query through the admission queue.

        The CRPQ is planned on the thread pool (``crpq.plan`` span inside
        the engine), then each planned atom fans out through
        :meth:`_admitted`/:meth:`_admit` — one admitted request per source,
        exactly like :meth:`submit_many`.  **Atoms get per-atom admission
        keys** (the canonical rewritten form of the atom's expression, the
        same key an identical scalar request gets — see
        ``ServingSurface.admission``), so an atom's batch coalesces with
        concurrent scalar traffic of that key, merges into covering
        in-flight batches, and shares flushes with other CRPQs.  Hash
        joins between atoms run on the thread pool, never on the event
        loop.  Accepts ``MATCH …`` text, a ``ConjunctiveQuery``, or a
        conjunctive :class:`~repro.engine.request.QueryRequest` /
        ``CRPQRequest``.
        """
        if self._closed:
            raise ReproError("the query server has been closed")
        loop = asyncio.get_running_loop()
        if isinstance(query, (QueryRequest, CRPQRequest)):
            query = normalize(query).query
        self.stats.crpq_submitted += 1
        traced = self.metrics.enabled
        root = (
            self.metrics.span("serve.crpq", strategy=strategy)
            if traced
            else NULL_SPAN
        )
        try:
            plan = await loop.run_in_executor(
                self._pool,
                lambda: self.engine.plan_conjunctive(query, strategy=strategy),
            )
            root.set(atoms=len(plan.order), acyclic=plan.acyclic)
            execution = PlanExecution(plan)
            while True:
                # pending() scans/sorts the intermediate relation and feed()
                # hash-joins it — both off the event loop, like every other
                # engine round-trip on this server.
                pending = await loop.run_in_executor(self._pool, execution.pending)
                if pending is None:
                    break
                sources = list(pending.sources)
                key, prepared = await self._admitted(
                    pending.expression, len(sources)
                )
                atom_span = self.metrics.span_under(
                    root,
                    "crpq.atom",
                    atom=pending.step.atom.text(),
                    sources=len(sources),
                )
                answers = await asyncio.gather(
                    *(self._admit(key, prepared, source) for source in sources)
                )
                atom_span.end()
                pairs = dict(zip(sources, answers))
                join_span = self.metrics.span_under(root, "crpq.join")
                report = await loop.run_in_executor(
                    self._pool, execution.feed, pairs
                )
                join_span.end(
                    atom=report.atom, pairs=report.pairs, rows_out=report.rows_out
                )
            rows = await loop.run_in_executor(self._pool, execution.result_rows)
            root.set(rows=len(rows))
            self.stats.crpq_served += 1
            registry = self.metrics.registry
            registry.counter("crpq_queries", "conjunctive queries evaluated").inc()
            registry.counter(
                "crpq_atom_batches", "per-atom batch evaluations run for CRPQs"
            ).inc(len(execution.steps))
            registry.counter(
                "crpq_join_rows", "rows produced across CRPQ join steps"
            ).inc(sum(step.rows_out for step in execution.steps))
            return ConjunctiveResult(
                variables=plan.query.returns,
                rows=rows,
                plan=plan,
                steps=tuple(execution.steps),
            )
        finally:
            root.end()

    # -- flushing -------------------------------------------------------------
    def _flush(self, key: str, reason: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:  # raced with another flush path; nothing to do
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        self.stats.batches += 1
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "delay":
            self.stats.delay_flushes += 1
        elif reason == "immediate":
            self.stats.immediate_flushes += 1
        else:
            self.stats.close_flushes += 1
        # Requests is the size-policy unit (see ServingStats): the same count
        # the trigger in _maybe_flush compared against max_batch.
        requests = bucket.requests
        if requests > 1:
            self.stats.coalesced += requests
        if requests > self.stats.max_batch_size:
            self.stats.max_batch_size = requests
        if bucket.span is not NULL_SPAN:
            # The wait between the bucket's first admission and this flush,
            # as a pre-timed child span — the interval was measured by the
            # admission path, not re-clocked here.
            wait = perf_counter() - bucket.created_at
            bucket.span.event(
                "admission_wait", bucket.created_at, wait, reason=reason
            )
            bucket.span.set(
                reason=reason, sources=len(bucket.waiters), requests=requests
            )
            self._hist_wait.observe(wait)
            self._hist_batch_sources.observe(len(bucket.waiters))
        # From flush to fan-out the batch is a merge target for overlapping
        # requests of its key — see _admit.
        self._serving.setdefault(key, []).append(bucket)
        task = asyncio.get_running_loop().create_task(self._serve(key, bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _unserve(self, key: str, bucket: _Bucket) -> None:
        """Withdraw a batch from the merge-target index (event-loop only).

        Called at the top of the fan-out / error path, *before* any await:
        once answers start settling, a would-be merger must open a fresh
        bucket instead, so no request can attach after its futures resolved.
        """
        serving = self._serving.get(key)
        if serving is not None:
            try:
                serving.remove(bucket)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not serving:
                del self._serving[key]

    async def _serve(self, key: str, bucket: _Bucket) -> None:
        sources = list(bucket.waiters)
        loop = asyncio.get_running_loop()
        tele = self.metrics
        # The evaluation runs on a pool thread, where the event loop's
        # contextvars do not follow; the closure re-activates the batch's
        # evaluate span there so the engine's own spans nest beneath it.
        eval_span = tele.span_under(bucket.span, "evaluate")
        streaming = bool(bucket.streams) and hasattr(
            self.engine, "query_batch_streaming"
        )
        if streaming:
            stream_span = tele.span_under(
                bucket.span, "serve.stream",
                streams=sum(len(s) for s in bucket.streams.values()),
            )
            facts = 0

            # Cross-thread micro-batching: engine threads append to a
            # lock-guarded queue and at most ONE drain callback is in
            # flight on the loop at a time, scheduled at most once per
            # DRAIN_WAKE_INTERVAL_S — a fixpoint emitting thousands of
            # facts over hundreds of rounds costs a handful of loop
            # wake-ups, not one per fact or per round.  Facts an interval
            # holds back are flushed by the next due wake-up or by the
            # completion drain before fan-out.
            pending_facts: "deque" = deque()
            pending_lock = threading.Lock()
            drain_scheduled = False
            last_wake = 0.0

            def drain() -> None:
                # Event-loop side: push to every stream of each source.
                nonlocal drain_scheduled, facts
                with pending_lock:
                    batch = list(pending_facts)
                    pending_facts.clear()
                    drain_scheduled = False
                for source, answers in batch:
                    facts += len(answers)
                    for stream in bucket.streams.get(source, ()):
                        stream._push(answers)

            final_drain = drain

            def emitted(source: "Oid", answers: "Iterable[Oid]") -> None:
                # Engine side: called from evaluation / scheduler threads.
                nonlocal drain_scheduled, last_wake
                # Ownership transfer: emit callers hand a freshly built
                # sequence per call (the executor sinks do), so no
                # defensive copy on the evaluation thread.
                now = perf_counter()
                with pending_lock:
                    pending_facts.append((source, answers))
                    schedule = (
                        not drain_scheduled
                        and now - last_wake >= DRAIN_WAKE_INTERVAL_S
                    )
                    if schedule:
                        drain_scheduled = True
                        last_wake = now
                if schedule:
                    loop.call_soon_threadsafe(drain)

            def evaluate():
                with tele.under(eval_span):
                    try:
                        return self.engine.query_batch_streaming(
                            bucket.query, sources, emitted
                        )
                    finally:
                        eval_span.end()
        else:
            stream_span = NULL_SPAN
            final_drain = None

            def evaluate():
                with tele.under(eval_span):
                    try:
                        return self.engine.query_batch(bucket.query, sources)
                    finally:
                        eval_span.end()

        try:
            results = await loop.run_in_executor(self._pool, evaluate)
        except BaseException as error:
            self._unserve(key, bucket)
            for waiting in bucket.waiters.values():
                for future in waiting:
                    self.stats.failed += 1
                    if not future.done():
                        future.set_exception(error)
            for streams in bucket.streams.values():
                for stream in streams:
                    stream._fail(error)
            stream_span.end(error=repr(error))
            bucket.span.end(error=repr(error))
            self._hist_flush.observe(bucket.span.duration)
            return
        self._unserve(key, bucket)
        if final_drain is not None:
            # Flush facts the wake-interval gate held back: the engine has
            # stopped emitting (evaluation returned), so this clears the
            # queue for good and any still-queued drain callback no-ops.
            final_drain()
        fanout_span = tele.span_under(bucket.span, "fanout")
        # Streams finish first: _finish resolves stream.future (also in
        # waiters), flushes any un-streamed remainder into the iterator and
        # fires the first-answer hook for empty answer sets.
        for source, streams in bucket.streams.items():
            for stream in streams:
                stream._finish(results[source])
        for source, waiting in bucket.waiters.items():
            answers = results[source]
            for future in waiting:
                self.stats.served += 1
                if not future.done():
                    future.set_result(answers)
        fanout_span.end()
        if stream_span is not NULL_SPAN:
            stream_span.set(facts=facts)
            stream_span.end()
        bucket.span.end()
        self._hist_flush.observe(bucket.span.duration)

    # -- lifecycle ------------------------------------------------------------
    async def close(self) -> None:
        """Flush pending buckets, drain in-flight batches, release the pool."""
        self._closed = True
        for key in list(self._buckets):
            self._flush(key, "close")
        while self._inflight:
            pending = list(self._inflight)
            await asyncio.gather(*pending, return_exceptions=True)
            self._inflight.difference_update(pending)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "QueryServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def describe(self) -> str:
        return self.stats.summary()

    def __repr__(self) -> str:
        return (
            f"QueryServer({self.engine!r}, max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, pending={len(self._buckets)})"
        )


# -- line protocol -------------------------------------------------------------
# Per-connection (and per-stdin-window) backpressure: a pipelining client may
# stream lines faster than the engine evaluates; beyond this many in-flight
# responses the read loop stops consuming input until one completes, so
# tasks, admission buckets and waiter futures stay bounded.
MAX_INFLIGHT_PER_CONNECTION = 1024


def format_answers(answers: "set[Oid]") -> str:
    """The wire form of one answer set: sorted, space-separated."""
    return " ".join(sorted(map(str, answers)))


def format_result(result: "set[Oid] | ConjunctiveResult") -> str:
    """The wire form of any submit() result.

    Scalar answer sets render as sorted space-separated answers; a
    conjunctive relation renders one comma-joined row per item (``RETURN``
    column order), rows sorted — so a one-variable CRPQ's wire form is
    indistinguishable from a scalar answer set.
    """
    if isinstance(result, ConjunctiveResult):
        return " ".join(_wire_rows(result))
    return format_answers(result)


def _wire_rows(result: ConjunctiveResult) -> "list[str]":
    return sorted(",".join(map(str, row)) for row in result.rows)


def handle_control(server: QueryServer, line: str) -> str:
    """Answer one ``!``-prefixed control line against the live telemetry.

    Verbs (all answered as ``!verb<TAB>one-line-json``, errors as
    ``!verb<TAB>error: ...``):

    * ``!stats`` — the session's full registry snapshot (the same dict
      ``engine.telemetry()`` / ``--stats`` render);
    * ``!trace <id>`` — one recorded trace with its span breakdown;
    * ``!slow [N]`` — the N (default 5) slowest traces, worst first.
    """
    server._control_requests.inc()
    parts = line.split()
    verb, args = parts[0], parts[1:]
    if verb == "!stats":
        snapshot = server.metrics.snapshot()
        return f"!stats\t{json.dumps(snapshot, separators=(',', ':'), default=str)}"
    if verb == "!trace":
        if len(args) != 1:
            return "!trace\terror: usage: !trace <id>"
        trace = server.metrics.tracer.get(args[0])
        if trace is None:
            return f"!trace\terror: unknown trace id {args[0]!r}"
        return f"!trace\t{trace_to_json(trace)}"
    if verb == "!slow":
        count = 5
        if args:
            try:
                count = int(args[0])
            except ValueError:
                return "!slow\terror: usage: !slow [N]"
        return f"!slow\t{slow_log_json(server.metrics.tracer, count)}"
    return f"{verb}\terror: unknown control verb (try !stats, !trace <id>, !slow N)"


def _page_digest(server: QueryServer, query, source: "Oid") -> str:
    """Short fingerprint binding a cursor to its ``(query, source)`` pair.

    Built from the *admission key* (the canonical rewritten form), so two
    spellings of the same query share cursors — exactly the requests that
    share batches.  A conjunctive query's key is its compound ``crpq:``
    form, which already folds every ``WHERE`` binding in, so its cursors
    are bound to the whole query (``source`` is empty for those).
    """
    key = server.engine.admission_key(query)
    material = f"{key}\x00{source}".encode("utf-8")
    return hashlib.blake2b(material, digest_size=8).hexdigest()


def encode_cursor(digest: str, last_answer: str) -> str:
    """The opaque wire form of a resume point: base64url, no padding."""
    payload = json.dumps(
        {"h": digest, "a": last_answer}, separators=(",", ":")
    ).encode("utf-8")
    return base64.urlsafe_b64encode(payload).decode("ascii").rstrip("=")


def decode_cursor(token: str, digest: str) -> str:
    """Validate ``token`` against ``digest``; returns the resume answer.

    Raises :class:`~repro.exceptions.ReproError` on any defect — garbage
    base64, non-JSON payload, wrong shape, or a cursor minted for a
    different ``(query, source)`` pair.
    """
    try:
        padded = token + "=" * (-len(token) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
        if not isinstance(payload, dict):
            raise ValueError("not an object")
        if payload.get("h") != digest:
            raise ValueError("cursor/query mismatch")
        last = payload["a"]
        if not isinstance(last, str):
            raise ValueError("resume point is not a string")
    except ReproError:
        raise
    except Exception:
        raise ReproError(
            "invalid cursor (not one this server issued for this query/source)"
        ) from None
    return last


async def _respond_page(
    server: QueryServer, ident: str, request: QueryRequest
) -> str:
    """One ``LIMIT n [CURSOR c]`` page: a sorted slice plus a resume cursor."""
    digest_source = (
        request.sources[0]
        if (request.sources and not request.is_conjunctive)
        else ""
    )
    try:
        result = await server.submit(
            QueryRequest(query=request.query, sources=request.sources)
        )
        digest = _page_digest(server, request.query, digest_source)
        last = (
            decode_cursor(request.cursor, digest)
            if request.cursor is not None
            else None
        )
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    except Exception as error:
        return f"{ident}\terror: {error}"
    # Pages slice the *sorted* wire order (the order format_result emits),
    # resuming strictly after the cursor's item — so pagination stays
    # correct even when the answer set grows between pages: new answers
    # after the resume point appear, and concatenated pages with a fixed
    # snapshot equal the full set.  Conjunctive pages slice wire *rows*.
    if isinstance(result, ConjunctiveResult):
        ordered = _wire_rows(result)
    else:
        ordered = sorted(map(str, result))
    limit = request.limit or 0
    start = bisect_right(ordered, last) if last is not None else 0
    page = ordered[start:start + limit]
    body = " ".join(page)
    if start + limit < len(ordered):
        token = encode_cursor(digest, page[-1])
        return f"{ident}\t{body}\tCURSOR {token}"
    return f"{ident}\t{body}"


async def _respond_streaming(
    server: QueryServer,
    ident: str,
    request: QueryRequest,
    emit: "Callable[[str], None] | None",
) -> str:
    """One ``STREAM`` request: chunk lines as answers land, then the close.

    Each answer is emitted as ``id<TAB>+<TAB>answer`` the moment it arrives;
    the standard full response line closes the request (its answer set is
    the union of the chunks).  Without an ``emit`` channel (ordered batch
    fronts) the request degrades to a plain full response.
    """
    try:
        stream = server.submit_stream(
            QueryRequest(query=request.query, sources=request.sources)
        )
    except Exception as error:
        return f"{ident}\terror: {error}"
    try:
        if emit is not None:
            async for answer in stream:
                emit(f"{ident}\t+\t{answer}")
        answers = await stream.result()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    except Exception as error:
        return f"{ident}\terror: {error}"
    return f"{ident}\t{format_answers(answers)}"


async def _respond_request(
    server: QueryServer,
    ident: str,
    request: QueryRequest,
    emit: "Callable[[str], None] | None",
) -> str:
    """Serve one structured request — the trunk both line grammars lower to."""
    if request.stream:
        return await _respond_streaming(server, ident, request, emit)
    if request.limit is not None:
        return await _respond_page(server, ident, request)
    try:
        result = await server.submit(request)
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    except Exception as error:
        return f"{ident}\terror: {error}"
    return f"{ident}\t{format_result(result)}"


def _build_line_request(
    source: str, query: str, limit=None, cursor=None, stream=False
) -> QueryRequest:
    """Lower one v1 line's fields to a :class:`QueryRequest`.

    The v1 grammar always carries a source slot; for a conjunctive body it
    binds the first ``MATCH`` variable, with ``-`` meaning "no source —
    every binding is in the WHERE clause".
    """
    if is_crpq_text(query) and source == "-":
        return normalize(query, limit=limit, cursor=cursor, stream=stream)
    return normalize(query, source, limit=limit, cursor=cursor, stream=stream)


def _parse_v2(line: str) -> "tuple[str, QueryRequest | None, str | None]":
    """Parse one ``V2<TAB>json`` line into ``(id, request, error)``."""
    ident = "?"
    try:
        payload = json.loads(line[3:])
        if not isinstance(payload, dict):
            raise ValueError("payload is not an object")
        ident = str(payload.get("id") or "") or "?"
        if ident == "?":
            raise ValueError("missing request id")
        known = {"id", "query", "crpq", "source", "sources", "limit", "cursor", "stream"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
        if ("query" in payload) == ("crpq" in payload):
            raise ValueError("exactly one of 'query' and 'crpq' is required")
        body = payload.get("query", payload.get("crpq"))
        if not isinstance(body, str):
            raise ValueError("'query'/'crpq' must be a string")
        if "crpq" in payload and not is_crpq_text(body):
            raise ValueError("'crpq' must be MATCH syntax")
        if "source" in payload and "sources" in payload:
            raise ValueError("pass 'source' or 'sources', not both")
        sources = payload.get("sources")
        if sources is not None and not isinstance(sources, list):
            raise ValueError("'sources' must be a list")
        if sources is None and "source" in payload:
            sources = [payload["source"]]
        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise ValueError("'stream' must be a boolean")
        request = normalize(
            body,
            sources=tuple(sources) if sources is not None else None,
            limit=payload.get("limit"),
            cursor=payload.get("cursor"),
            stream=stream,
        )
    except Exception as error:
        return ident, None, f"{ident}\terror: bad v2 request: {error}"
    return ident, request, None


async def respond_line(
    server: QueryServer,
    line: str,
    emit: "Callable[[str], None] | None" = None,
) -> str:
    """Serve one request line; never raises.  The v1 grammar::

        request   = id TAB source TAB query [TAB modifier]
        modifier  = "LIMIT" SP n [SP "CURSOR" SP c]   ; one sorted page
                  | "STREAM"                          ; incremental chunks
        response  = id TAB answers [TAB "CURSOR" SP c]   ; full or page
                  | id TAB "+" TAB answer                ; STREAM chunk
                  | id TAB "error: " message

    ``query`` may be a scalar path expression or conjunctive ``MATCH …``
    syntax; a conjunctive line's source binds the first ``MATCH`` variable
    (``-`` for none), and its answers are comma-joined rows in ``RETURN``
    order.  Unmodified requests answer with the full sorted answer set.
    ``LIMIT`` answers at most ``n`` items (sorted wire order) and, when
    more remain, a trailing ``CURSOR`` field whose opaque token resumes the
    next page — tokens are bound to the ``(query, source)`` pair and
    rejected with an error line otherwise.  ``STREAM`` emits
    ``id<TAB>+<TAB>answer`` chunk lines through ``emit`` as answers land,
    closed by the standard full response line.

    The **v2 grammar** carries the structured request explicitly — one
    ``V2`` tag, then one JSON object::

        request = "V2" TAB json
        json    = {"id": str, "query": expr | "crpq": match-text,
                   "source": oid | "sources": [oid, ...],
                   "limit": n, "cursor": c, "stream": bool}

    modifiers are fields, not positional suffixes; responses are identical
    to v1.  Malformed lines and evaluation errors come back as
    ``id<TAB>error: ...`` so one bad request cannot take down a connection.
    Lines starting with ``!`` are control verbs answered from live
    telemetry instead of the engine — see :func:`handle_control`.
    """
    if line.startswith("!"):
        return handle_control(server, line)
    if line.startswith("V2\t"):
        ident, request, error = _parse_v2(line)
        if error is not None:
            return error
        return await _respond_request(server, ident, request, emit)
    parts = line.split("\t")
    if len(parts) not in (3, 4) or not parts[0]:
        ident = parts[0] if parts and parts[0] else "?"
        return (
            f"{ident}\terror: malformed request "
            "(want id<TAB>source<TAB>query[<TAB>LIMIT n [CURSOR c] | STREAM])"
        )
    ident, source, query = parts[0], parts[1], parts[2]
    limit = cursor = None
    stream = False
    if len(parts) == 4:
        tokens = parts[3].split()
        if tokens and tokens[0] == "STREAM" and len(tokens) == 1:
            stream = True
        elif tokens and tokens[0] == "LIMIT":
            if len(tokens) not in (2, 4) or (
                len(tokens) == 4 and tokens[2] != "CURSOR"
            ):
                return f"{ident}\terror: malformed modifier (want LIMIT n [CURSOR c])"
            try:
                limit = int(tokens[1])
            except ValueError:
                limit = 0
            if limit < 1:
                return f"{ident}\terror: LIMIT must be a positive integer"
            cursor = tokens[3] if len(tokens) == 4 else None
        else:
            return f"{ident}\terror: unknown modifier (want LIMIT n [CURSOR c] or STREAM)"
    try:
        request = _build_line_request(
            source, query, limit=limit, cursor=cursor, stream=stream
        )
    except Exception as error:
        return f"{ident}\terror: {error}"
    return await _respond_request(server, ident, request, emit)


async def serve_request_lines(
    server: QueryServer,
    lines: "Iterable[str]",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
    emit: "Callable[[str], None] | None" = None,
) -> "list[str]":
    """Serve a *batch* of request lines concurrently, in input order.

    For interactive request/response streams use :func:`serve_stream`
    (responses as they complete); this helper is for pre-collected batches
    where input-order responses matter.  Lines are admitted in windows of
    ``max_inflight``: within a window every
    request is in flight before any is awaited, so requests sharing a DFA
    coalesce into shared batches exactly as they would over TCP, while an
    arbitrarily long input stream never materializes more than one window of
    futures/buckets at a time (the same bound the TCP front-end applies per
    connection).  Responses come back in input order (correlation is
    positional *and* by id).

    With ``emit``, each window's responses are delivered through the
    callback as soon as the window drains — and *not* accumulated, so an
    endless producer gets incremental answers in bounded memory; the return
    value is then an empty list.
    """
    responses: "list[str]" = []

    async def drain(window: "list[str]") -> None:
        answered = await asyncio.gather(
            *(respond_line(server, pending) for pending in window)
        )
        if emit is None:
            responses.extend(answered)
        else:
            for response in answered:
                emit(response)

    window: "list[str]" = []
    for line in lines:
        if not line.strip():
            continue
        window.append(line)
        if len(window) >= max_inflight:
            await drain(window)
            window = []
    if window:
        await drain(window)
    return responses


async def serve_stream(
    server: QueryServer,
    readline,
    emit: "Callable[[str], None]",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> None:
    """Serve an *interactive* line stream: responses emitted as they land.

    ``readline`` is an async callable returning the next raw line (an empty
    string at end of input); ``emit`` receives each response line.  Every
    request runs as its own task — exactly the TCP front-end's behavior, so
    a request/response client that waits for an answer before sending the
    next line never deadlocks, and concurrent requests still coalesce
    through the admission queue.  Responses arrive in *completion* order;
    the ``id`` is what correlates them.  In-flight responses are bounded by
    ``max_inflight`` (the read loop stops consuming input until one
    completes).
    """
    tasks: "set[asyncio.Task]" = set()
    loop = asyncio.get_running_loop()

    async def respond(line: str) -> None:
        # STREAM chunk lines ride the same emit channel as full responses.
        emit(await respond_line(server, line, emit))

    while True:
        raw = await readline()
        if not raw:
            break
        line = raw.rstrip("\r\n")
        if not line.strip():
            continue
        if len(tasks) >= max_inflight:
            await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
        task = loop.create_task(respond(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*list(tasks))


async def serve_connection(
    server: QueryServer,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> None:
    """Serve one TCP client: a task per request line, responses as they land."""
    tasks: "set[asyncio.Task]" = set()
    # One drain at a time per connection: concurrent waiters on one
    # StreamWriter's drain() were only supported from CPython 3.10.5's
    # FlowControlMixin; serializing write+drain keeps the oldest supported
    # patch levels correct (whole lines stay atomic either way).
    write_lock = asyncio.Lock()

    def emit_partial(partial: str) -> None:
        # STREAM chunk lines: written without draining (they are small and
        # the closing full response drains under the lock).  A client that
        # disconnected mid-stream must not kill the serving task — the
        # request still completes and accounting stays exact.
        try:
            writer.write(partial.encode("utf-8") + b"\n")
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass

    async def respond(line: str) -> None:
        response = await respond_line(server, line, emit_partial)
        async with write_lock:
            try:
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                # Client went away (or transport already closed) — the
                # answer is computed and counted; delivery is best-effort.
                pass

    try:
        while True:
            try:
                raw = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # A request line exceeded the stream limit.  The buffered
                # bytes hold no separator, so framing is lost for good:
                # answer with one error line, finish the in-flight
                # responses, and close — without taking them down with it.
                writer.write(b"?\terror: request line too long\n")
                break
            except (ConnectionError, OSError):
                # Abrupt disconnect (reset while blocked in readline): no
                # peer left to answer, but the in-flight responses still
                # drain below so their tasks end cleanly instead of racing
                # the close and logging as unhandled task errors.
                break
            if not raw:
                break
            line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
            if not line:
                continue
            if len(tasks) >= max_inflight:
                await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
            task = asyncio.get_running_loop().create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - client went away
            pass


async def serve_tcp(
    server: QueryServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_inflight: int = MAX_INFLIGHT_PER_CONNECTION,
) -> "asyncio.AbstractServer":
    """Open a TCP front-end for ``server``; returns the listening socket.

    ``port=0`` binds an ephemeral port — read the real one off
    ``result.sockets[0].getsockname()``.  ``max_inflight`` bounds each
    connection's outstanding responses (see
    :data:`MAX_INFLIGHT_PER_CONNECTION`).  The caller owns both lifetimes:
    close the returned socket server first, then ``await server.close()``.
    """
    return await asyncio.start_server(
        lambda reader, writer: serve_connection(
            server, reader, writer, max_inflight=max_inflight
        ),
        host=host,
        port=port,
        # Generous per-line budget: queries are expressions, not documents,
        # but the default 64 KiB would tear down a connection mid-stream.
        limit=1 << 20,
    )
